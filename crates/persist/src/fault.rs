//! Fault injection and health tracking for the persistence layer.
//!
//! Recovery correctness (§V of the paper's durability story: REDO only at
//! first appearance, savepoints, merge *event* records) is only worth
//! anything if it holds under *arbitrary* failure points. This module makes
//! that provable by brute force:
//!
//! * A [`FaultInjector`] sits in front of every physical I/O operation the
//!   layer performs — page writes/reads/syncs, log appends/fsyncs, log
//!   rotations — and counts them. A [`FaultPolicy`] armed on the injector
//!   makes the nth matching operation fail with EIO/ENOSPC, write only a
//!   torn prefix, or simulate a process crash (this and every later
//!   operation fails, so nothing past the crash point reaches disk).
//! * [`Health`] tracks I/O failures the *running* system observes. Repeated
//!   consecutive failures flip the database into an explicit **read-only
//!   degraded mode** (writes are rejected with a clear error, reads keep
//!   working) surfaced through [`HealthStats`].
//!
//! The crash-everywhere harness (`tests/crash_matrix.rs`) enumerates every
//! operation of a scripted workload, kills the run at each one, reopens,
//! and asserts the recovery invariants.

use hana_common::{HanaError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// The physical I/O operations of the persistence layer (fault sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// One page written to the page store (image pages, superblock slots).
    PageWrite,
    /// One page read and verified from the page store.
    PageRead,
    /// `fsync` of the page store's data file.
    PageSync,
    /// One record framed into the REDO log buffer.
    LogAppend,
    /// Buffered log bytes written and `fsync`ed.
    LogSync,
    /// The log rotated to a new epoch (savepoint truncation).
    LogRotate,
}

impl IoOp {
    pub(crate) const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            IoOp::PageWrite => 0,
            IoOp::PageRead => 1,
            IoOp::PageSync => 2,
            IoOp::LogAppend => 3,
            IoOp::LogSync => 4,
            IoOp::LogRotate => 5,
        }
    }
}

/// Error class an injected fault reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultErrorKind {
    /// Generic I/O error.
    Eio,
    /// Device out of space.
    Enospc,
}

impl FaultErrorKind {
    fn to_error(self) -> HanaError {
        match self {
            FaultErrorKind::Eio => {
                HanaError::Io(std::io::Error::other("injected EIO (fault injection)"))
            }
            FaultErrorKind::Enospc => HanaError::Io(std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "injected ENOSPC (fault injection)",
            )),
        }
    }
}

/// What happens when an armed fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with an I/O error; nothing is written.
    Error(FaultErrorKind),
    /// Write only the first `keep` bytes of the operation's payload, then
    /// fail. A torn write implies the run is over (it models power loss
    /// mid-write), so the injector also enters the crashed state.
    Torn {
        /// Bytes that reach the file before the "power loss".
        keep: usize,
    },
    /// Simulated process crash: this operation and every later one fails,
    /// so nothing past the crash point reaches disk.
    Crash,
    /// Silent single-bit corruption: the operation *succeeds* but one bit
    /// of its payload is flipped (in the buffer about to be written, or in
    /// the bytes just read). Models bit rot / a misbehaving device; only
    /// checksum verification can catch it later.
    FlipBit {
        /// Bit offset within the operation's payload (wraps modulo size).
        bit: u64,
    },
    /// Stale read: a page read silently returns the contents of a
    /// *different* (valid, checksummed) page — a misdirected or cached-
    /// stale read. Only the envelope's page-id salt can catch this.
    StaleRead,
}

/// When and how a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Restrict the fault to one operation kind (`None` = any operation).
    pub only: Option<IoOp>,
    /// Number of matching operations allowed through before firing (0 =
    /// fire on the first matching operation).
    pub after: u64,
    /// The failure behaviour.
    pub action: FaultAction,
    /// `true`: keep firing on every subsequent matching operation
    /// (a persistent device fault). `false`: fire once, then disarm
    /// (a transient glitch).
    pub persistent: bool,
}

impl FaultPolicy {
    /// Simulated crash at global operation `n` (0-based).
    pub fn crash_at(n: u64) -> Self {
        FaultPolicy {
            only: None,
            after: n,
            action: FaultAction::Crash,
            persistent: true,
        }
    }

    /// Fail the nth (0-based) operation of kind `op` with `kind`, once.
    pub fn fail_nth(op: IoOp, n: u64, kind: FaultErrorKind) -> Self {
        FaultPolicy {
            only: Some(op),
            after: n,
            action: FaultAction::Error(kind),
            persistent: false,
        }
    }

    /// Torn write: the nth operation of kind `op` writes only `keep` bytes.
    pub fn torn(op: IoOp, n: u64, keep: usize) -> Self {
        FaultPolicy {
            only: Some(op),
            after: n,
            action: FaultAction::Torn { keep },
            persistent: false,
        }
    }

    /// Silent bit flip: the nth operation of kind `op` succeeds but flips
    /// payload bit `bit` (see [`FaultAction::FlipBit`]).
    pub fn flip_bit(op: IoOp, n: u64, bit: u64) -> Self {
        FaultPolicy {
            only: Some(op),
            after: n,
            action: FaultAction::FlipBit { bit },
            persistent: false,
        }
    }

    /// Stale read: the nth page read silently returns another page's bytes.
    pub fn stale_read(n: u64) -> Self {
        FaultPolicy {
            only: Some(IoOp::PageRead),
            after: n,
            action: FaultAction::StaleRead,
            persistent: false,
        }
    }

    /// Make the fault persistent (fires on every subsequent match).
    pub fn persistent(mut self) -> Self {
        self.persistent = true;
        self
    }
}

/// Outcome of a fault check for an operation that is about to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Perform the operation normally.
    Proceed,
    /// Write only the first `keep` payload bytes, then report
    /// [`torn_error`] to the caller.
    Torn {
        /// Bytes to write before failing.
        keep: usize,
    },
    /// Perform the operation but flip one payload bit — the operation
    /// reports success (silent corruption).
    FlipBit {
        /// Bit offset within the payload (wraps modulo size).
        bit: u64,
    },
    /// Read a different page's bytes instead (silent stale read). Sites
    /// where a stale read is meaningless treat this as `Proceed`.
    Stale,
}

/// The error a torn write reports after writing its prefix.
pub fn torn_error() -> HanaError {
    HanaError::Io(std::io::Error::other(
        "injected torn write (fault injection)",
    ))
}

fn crash_error() -> HanaError {
    HanaError::Io(std::io::Error::other(
        "simulated crash (fault injection): I/O unavailable",
    ))
}

#[derive(Default)]
struct InjectorInner {
    policy: Option<FaultPolicy>,
    /// Operations that matched the armed policy's filter so far.
    matched: u64,
}

/// Deterministic fault injector shared by every I/O site of one
/// [`Persistence`](crate::Persistence) instance.
///
/// With no policy armed the hot path is two relaxed atomic loads plus a
/// counter increment, so production code can keep the injector threaded
/// through unconditionally.
#[derive(Default)]
pub struct FaultInjector {
    inner: Mutex<InjectorInner>,
    armed: AtomicBool,
    crashed: AtomicBool,
    ops: AtomicU64,
    ops_by_kind: [AtomicU64; IoOp::COUNT],
    fired: AtomicU64,
}

impl FaultInjector {
    /// A fresh injector with no policy armed.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Arm `policy`; replaces any previous policy and clears the crashed
    /// state and match counter (operation counters keep running).
    pub fn arm(&self, policy: FaultPolicy) {
        let mut inner = self.inner.lock();
        inner.policy = Some(policy);
        inner.matched = 0;
        self.crashed.store(false, Ordering::SeqCst);
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarm any policy and clear the crashed state.
    pub fn disarm(&self) {
        let mut inner = self.inner.lock();
        inner.policy = None;
        self.crashed.store(false, Ordering::SeqCst);
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Total operations observed (armed or not) — the enumeration axis of
    /// the crash-everywhere harness.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Operations of one kind observed.
    pub fn ops_of(&self, op: IoOp) -> u64 {
        self.ops_by_kind[op.index()].load(Ordering::SeqCst)
    }

    /// Faults fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }

    /// True once a crash (or torn write) fault has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Consult the injector before performing `op`. Returns
    /// [`FaultOutcome::Proceed`] to run normally, [`FaultOutcome::Torn`]
    /// to write a prefix and then return [`torn_error`], or an error to
    /// fail without touching the file.
    pub fn check(&self, op: IoOp) -> Result<FaultOutcome> {
        self.ops.fetch_add(1, Ordering::SeqCst);
        self.ops_by_kind[op.index()].fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return Err(crash_error());
        }
        if !self.armed.load(Ordering::SeqCst) {
            return Ok(FaultOutcome::Proceed);
        }
        let mut inner = self.inner.lock();
        let Some(policy) = inner.policy else {
            return Ok(FaultOutcome::Proceed);
        };
        if policy.only.is_some_and(|o| o != op) {
            return Ok(FaultOutcome::Proceed);
        }
        let seq = inner.matched;
        inner.matched += 1;
        if seq < policy.after {
            return Ok(FaultOutcome::Proceed);
        }
        // Fire.
        self.fired.fetch_add(1, Ordering::SeqCst);
        if !policy.persistent {
            inner.policy = None;
            self.armed.store(false, Ordering::SeqCst);
        }
        match policy.action {
            FaultAction::Error(kind) => Err(kind.to_error()),
            FaultAction::Torn { keep } => {
                self.crashed.store(true, Ordering::SeqCst);
                Ok(FaultOutcome::Torn { keep })
            }
            FaultAction::Crash => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(crash_error())
            }
            // Silent corruptions: the operation proceeds (and "succeeds"),
            // with the payload damaged. No crashed state — the process
            // keeps running, which is the whole point of bit rot.
            FaultAction::FlipBit { bit } => Ok(FaultOutcome::FlipBit { bit }),
            FaultAction::StaleRead => Ok(FaultOutcome::Stale),
        }
    }
}

/// Point-in-time health report of one persistence instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthStats {
    /// True when the database has degraded to read-only operation.
    pub read_only: bool,
    /// Total I/O failures observed (log + savepoint).
    pub io_failures: u64,
    /// Consecutive I/O failures without an intervening success.
    pub consecutive_failures: u64,
    /// Failures on the commit/log path.
    pub log_failures: u64,
    /// Failed savepoint attempts.
    pub savepoint_failures: u64,
    /// Failures observed on read/recovery paths (page or image reads).
    pub read_failures: u64,
    /// Failures observed by the background scrub daemon.
    pub scrub_failures: u64,
    /// Detected on-disk corruptions ([`HanaError::Corruption`]) among the
    /// failures — these count toward degraded mode exactly like I/O
    /// errors: a device returning wrong bytes is no healthier than one
    /// returning errors.
    pub corruptions: u64,
    /// Consecutive-failure count at which the database flips read-only
    /// (0 = never flips automatically).
    pub degraded_threshold: u64,
    /// Most recent I/O error message, if any.
    pub last_error: Option<String>,
}

/// Default consecutive-failure threshold before degrading to read-only.
pub const DEFAULT_DEGRADED_THRESHOLD: u64 = 3;

/// Failure/degradation tracker owned by a
/// [`Persistence`](crate::Persistence) instance.
pub struct Health {
    io_failures: AtomicU64,
    consecutive: AtomicU64,
    log_failures: AtomicU64,
    savepoint_failures: AtomicU64,
    read_failures: AtomicU64,
    scrub_failures: AtomicU64,
    corruptions: AtomicU64,
    threshold: AtomicU64,
    read_only: AtomicBool,
    last_error: Mutex<Option<String>>,
}

impl Default for Health {
    fn default() -> Self {
        Health {
            io_failures: AtomicU64::new(0),
            consecutive: AtomicU64::new(0),
            log_failures: AtomicU64::new(0),
            savepoint_failures: AtomicU64::new(0),
            read_failures: AtomicU64::new(0),
            scrub_failures: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            threshold: AtomicU64::new(DEFAULT_DEGRADED_THRESHOLD),
            read_only: AtomicBool::new(false),
            last_error: Mutex::new(None),
        }
    }
}

/// Which subsystem observed an I/O failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureSite {
    /// Commit pipeline / REDO appends.
    Log,
    /// Savepoint writing.
    Savepoint,
    /// Page/image read paths (including recovery-time loads).
    Read,
    /// The background scrub daemon's re-verification passes.
    Scrub,
}

impl Health {
    /// True when the instance has degraded to read-only.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::SeqCst)
    }

    /// The error writes are rejected with while degraded.
    pub fn read_only_error() -> HanaError {
        HanaError::Persist(
            "database is in read-only degraded mode after repeated I/O failures \
             (see HealthStats; clear_degraded() re-enables writes)"
                .into(),
        )
    }

    /// Record one I/O failure at `site`; flips read-only once the
    /// consecutive count reaches the threshold. Only genuine I/O class
    /// errors count — callers filter.
    pub fn record_failure(&self, site: FailureSite, e: &HanaError) {
        self.io_failures.fetch_add(1, Ordering::SeqCst);
        match site {
            FailureSite::Log => self.log_failures.fetch_add(1, Ordering::SeqCst),
            FailureSite::Savepoint => self.savepoint_failures.fetch_add(1, Ordering::SeqCst),
            FailureSite::Read => self.read_failures.fetch_add(1, Ordering::SeqCst),
            FailureSite::Scrub => self.scrub_failures.fetch_add(1, Ordering::SeqCst),
        };
        if matches!(e, HanaError::Corruption(_)) {
            self.corruptions.fetch_add(1, Ordering::SeqCst);
        }
        let consec = self.consecutive.fetch_add(1, Ordering::SeqCst) + 1;
        *self.last_error.lock() = Some(e.to_string());
        let threshold = self.threshold.load(Ordering::SeqCst);
        if threshold > 0 && consec >= threshold {
            self.read_only.store(true, Ordering::SeqCst);
        }
    }

    /// Record a successful durability operation (resets the consecutive
    /// failure count; does not clear an established degraded state).
    pub fn record_success(&self) {
        self.consecutive.store(0, Ordering::SeqCst);
    }

    /// Leave degraded mode (operator action after the device recovered).
    pub fn clear_degraded(&self) {
        self.consecutive.store(0, Ordering::SeqCst);
        self.read_only.store(false, Ordering::SeqCst);
    }

    /// Set the consecutive-failure threshold (0 = never auto-degrade).
    pub fn set_degraded_threshold(&self, n: u64) {
        self.threshold.store(n, Ordering::SeqCst);
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> HealthStats {
        HealthStats {
            read_only: self.read_only.load(Ordering::SeqCst),
            io_failures: self.io_failures.load(Ordering::SeqCst),
            consecutive_failures: self.consecutive.load(Ordering::SeqCst),
            log_failures: self.log_failures.load(Ordering::SeqCst),
            savepoint_failures: self.savepoint_failures.load(Ordering::SeqCst),
            read_failures: self.read_failures.load(Ordering::SeqCst),
            scrub_failures: self.scrub_failures.load(Ordering::SeqCst),
            corruptions: self.corruptions.load(Ordering::SeqCst),
            degraded_threshold: self.threshold.load(Ordering::SeqCst),
            last_error: self.last_error.lock().clone(),
        }
    }

    /// True for errors that represent device trouble (as opposed to
    /// semantic failures like write conflicts, which must not degrade the
    /// database). Detected corruption counts: a device serving wrong bytes
    /// is failing just as surely as one serving errors.
    pub fn counts_as_io_failure(e: &HanaError) -> bool {
        matches!(
            e,
            HanaError::Io(_) | HanaError::Persist(_) | HanaError::Corruption(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_injector_counts_but_never_fires() {
        let f = FaultInjector::new();
        for _ in 0..5 {
            assert_eq!(f.check(IoOp::PageWrite).unwrap(), FaultOutcome::Proceed);
        }
        assert_eq!(f.ops(), 5);
        assert_eq!(f.ops_of(IoOp::PageWrite), 5);
        assert_eq!(f.ops_of(IoOp::LogSync), 0);
        assert_eq!(f.faults_fired(), 0);
    }

    #[test]
    fn transient_error_fires_once() {
        let f = FaultInjector::new();
        f.arm(FaultPolicy::fail_nth(IoOp::LogSync, 1, FaultErrorKind::Eio));
        assert!(f.check(IoOp::LogSync).is_ok()); // 0th
        assert!(f.check(IoOp::PageWrite).is_ok()); // filtered out
        assert!(f.check(IoOp::LogSync).is_err()); // 1st fires
        assert!(f.check(IoOp::LogSync).is_ok()); // disarmed
        assert_eq!(f.faults_fired(), 1);
        assert!(!f.crashed());
    }

    #[test]
    fn persistent_enospc_keeps_firing() {
        let f = FaultInjector::new();
        f.arm(FaultPolicy::fail_nth(IoOp::PageWrite, 0, FaultErrorKind::Enospc).persistent());
        for _ in 0..3 {
            let err = f.check(IoOp::PageWrite).unwrap_err();
            assert!(err.to_string().contains("ENOSPC"), "{err}");
        }
        assert_eq!(f.faults_fired(), 3);
    }

    #[test]
    fn crash_blocks_everything_after() {
        let f = FaultInjector::new();
        f.arm(FaultPolicy::crash_at(2));
        assert!(f.check(IoOp::LogAppend).is_ok());
        assert!(f.check(IoOp::LogAppend).is_ok());
        assert!(f.check(IoOp::LogSync).is_err()); // crash fires
        assert!(f.crashed());
        // Every later op of any kind fails too.
        assert!(f.check(IoOp::PageRead).is_err());
        assert!(f.check(IoOp::PageWrite).is_err());
        // Disarm clears the crashed state (harness reuse).
        f.disarm();
        assert!(f.check(IoOp::PageWrite).is_ok());
    }

    #[test]
    fn torn_write_reports_prefix_then_crashes() {
        let f = FaultInjector::new();
        f.arm(FaultPolicy::torn(IoOp::PageWrite, 0, 7));
        assert_eq!(
            f.check(IoOp::PageWrite).unwrap(),
            FaultOutcome::Torn { keep: 7 }
        );
        assert!(f.crashed());
        assert!(f.check(IoOp::PageWrite).is_err());
    }

    #[test]
    fn health_degrades_after_threshold_and_clears() {
        let h = Health::default();
        assert!(!h.is_read_only());
        let e = HanaError::Io(std::io::Error::other("boom"));
        h.record_failure(FailureSite::Log, &e);
        h.record_failure(FailureSite::Log, &e);
        assert!(!h.is_read_only(), "below threshold");
        h.record_success();
        h.record_failure(FailureSite::Savepoint, &e);
        h.record_failure(FailureSite::Log, &e);
        assert!(!h.is_read_only(), "success reset the consecutive count");
        h.record_failure(FailureSite::Log, &e);
        assert!(h.is_read_only(), "three consecutive failures degrade");
        let s = h.stats();
        assert_eq!(s.io_failures, 5);
        assert_eq!(s.log_failures, 4);
        assert_eq!(s.savepoint_failures, 1);
        assert_eq!(s.consecutive_failures, 3);
        assert!(s.last_error.unwrap().contains("boom"));
        h.clear_degraded();
        assert!(!h.is_read_only());
    }

    #[test]
    fn semantic_errors_do_not_count() {
        assert!(!Health::counts_as_io_failure(&HanaError::WriteConflict(
            "x".into()
        )));
        assert!(!Health::counts_as_io_failure(&HanaError::Txn("x".into())));
        assert!(!Health::counts_as_io_failure(&HanaError::Constraint(
            "x".into()
        )));
        assert!(Health::counts_as_io_failure(&HanaError::Io(
            std::io::Error::other("y")
        )));
        assert!(Health::counts_as_io_failure(&HanaError::Persist(
            "z".into()
        )));
    }

    /// Regression (PR 10): corruption detections count toward degraded mode
    /// exactly like I/O errors — while semantic errors still never do.
    #[test]
    fn corruption_counts_toward_degraded_but_semantic_does_not() {
        assert!(Health::counts_as_io_failure(&HanaError::Corruption(
            "bad page".into()
        )));
        assert!(!Health::counts_as_io_failure(&HanaError::WriteConflict(
            "row 3".into()
        )));

        let h = Health::default();
        let e = HanaError::Corruption("page 9: checksum mismatch".into());
        h.record_failure(FailureSite::Read, &e);
        h.record_failure(FailureSite::Scrub, &e);
        assert!(!h.is_read_only(), "below threshold");
        h.record_failure(FailureSite::Scrub, &e);
        assert!(
            h.is_read_only(),
            "three consecutive corruption detections degrade to read-only"
        );
        let s = h.stats();
        assert_eq!(s.corruptions, 3);
        assert_eq!(s.read_failures, 1);
        assert_eq!(s.scrub_failures, 2);
        assert!(s.last_error.unwrap().contains("checksum"));
    }

    #[test]
    fn flip_bit_fires_silently_and_once() {
        let f = FaultInjector::new();
        f.arm(FaultPolicy::flip_bit(IoOp::PageWrite, 0, 17));
        assert_eq!(
            f.check(IoOp::PageWrite).unwrap(),
            FaultOutcome::FlipBit { bit: 17 }
        );
        assert!(!f.crashed(), "bit rot is silent: the process keeps running");
        assert_eq!(f.check(IoOp::PageWrite).unwrap(), FaultOutcome::Proceed);
        assert_eq!(f.faults_fired(), 1);
    }

    #[test]
    fn stale_read_fires_on_page_reads_only() {
        let f = FaultInjector::new();
        f.arm(FaultPolicy::stale_read(0));
        assert_eq!(f.check(IoOp::LogSync).unwrap(), FaultOutcome::Proceed);
        assert_eq!(f.check(IoOp::PageRead).unwrap(), FaultOutcome::Stale);
        assert!(!f.crashed());
    }
}
