//! The L2-delta: column format with unsorted dictionaries.
//!
//! Paper §3: *"the L2-delta employs dictionary encoding to achieve better
//! memory usage. However, for performance reasons, the dictionary is
//! unsorted requiring secondary index structures to optimally support point
//! query access patterns."* Appends never reorganize anything — new values
//! go to the end of the dictionary, new codes to the end of the value
//! vector, new positions to the end of the inverted lists. Readers capture a
//! row-count fence and are never invalidated.
//!
//! NULLs are stored as [`L2_NULL_CODE`] in the value vector and never enter
//! the dictionary or the inverted index.

use hana_column::{GrowableInvertedIndex, Pos};
use hana_common::{HanaError, Result, RowId, Schema, Timestamp, Value};
use hana_dict::{Code, UnsortedDict};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Sentinel code marking a NULL cell in the L2-delta value vector.
pub const L2_NULL_CODE: Code = Code::MAX;

struct L2Column {
    dict: UnsortedDict,
    codes: Vec<Code>,
    invidx: GrowableInvertedIndex,
}

struct Inner {
    columns: Vec<L2Column>,
    row_ids: Vec<RowId>,
    begins: Vec<AtomicU64>,
    ends: Vec<AtomicU64>,
}

/// The second stage of the record life cycle.
pub struct L2Delta {
    schema: Schema,
    /// Monotonic generation tag distinguishing successive L2 instances of
    /// one table across merges.
    generation: u64,
    closed: AtomicBool,
    /// Reader fence: rows below this count are visible to new snapshots.
    /// Appends are physical first and *published* second, which lets the
    /// L1→L2 merge copy rows without any reader observing them twice (the
    /// atomic truncate-L1/publish-L2 switch happens under the table lock).
    published: AtomicU64,
    inner: RwLock<Inner>,
}

impl L2Delta {
    /// An empty, open L2-delta.
    pub fn new(schema: Schema, generation: u64) -> Self {
        let columns = (0..schema.arity())
            .map(|_| L2Column {
                dict: UnsortedDict::new(),
                codes: Vec::new(),
                invidx: GrowableInvertedIndex::new(),
            })
            .collect();
        L2Delta {
            schema,
            generation,
            closed: AtomicBool::new(false),
            published: AtomicU64::new(0),
            inner: RwLock::new(Inner {
                columns,
                row_ids: Vec::new(),
                begins: Vec::new(),
                ends: Vec::new(),
            }),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// This instance's generation tag.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Close for updates (done when a delta-to-main merge starts: "the
    /// current L2-delta is closed for updates and a new empty L2-delta
    /// structure is created").
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Number of rows (versions) physically stored (published or not).
    pub fn len(&self) -> usize {
        self.inner.read().row_ids.len()
    }

    /// Reader fence: number of published rows.
    pub fn published_len(&self) -> Pos {
        self.published.load(Ordering::Acquire) as Pos
    }

    /// Publish all physically appended rows to new readers; returns the new
    /// fence. Called under the owning table's write lock together with the
    /// matching L1 truncation, so the stage switch is atomic per reader.
    pub fn publish_all(&self) -> Pos {
        let n = self.inner.read().row_ids.len() as u64;
        self.published.store(n, Ordering::Release);
        n as Pos
    }

    /// True if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a row version (L1→L2 merge or bulk load). The row must match
    /// the schema; returns the new position.
    pub fn append_row(
        &self,
        row_id: RowId,
        row: &[Value],
        begin: Timestamp,
        end: Timestamp,
    ) -> Result<Pos> {
        if self.is_closed() {
            return Err(HanaError::Merge(format!(
                "L2-delta generation {} is closed for updates",
                self.generation
            )));
        }
        debug_assert_eq!(row.len(), self.schema.arity());
        let mut inner = self.inner.write();
        let pos = inner.row_ids.len() as Pos;
        // Column-by-column insert: dictionary lookup/append, then value
        // vector append (the two pivot steps of Fig 6).
        for (c, v) in row.iter().enumerate() {
            let col = &mut inner.columns[c];
            if v.is_null() {
                col.codes.push(L2_NULL_CODE);
            } else {
                let code = col.dict.get_or_insert(v);
                col.codes.push(code);
                col.invidx.insert(code, pos);
            }
        }
        inner.row_ids.push(row_id);
        inner.begins.push(AtomicU64::new(begin));
        inner.ends.push(AtomicU64::new(end));
        Ok(pos)
    }

    /// Append many rows at once, reserving dictionary codes up front — the
    /// parallel-friendly variant the paper describes ("the number of tuples
    /// to be moved is known in advance enabling the reservation of
    /// encodings"). Returns the first assigned position.
    pub fn append_batch(&self, rows: &[(RowId, Vec<Value>, Timestamp, Timestamp)]) -> Result<Pos> {
        if self.is_closed() {
            return Err(HanaError::Merge(format!(
                "L2-delta generation {} is closed for updates",
                self.generation
            )));
        }
        let mut inner = self.inner.write();
        let first = inner.row_ids.len() as Pos;
        let arity = self.schema.arity();
        // Phase 1: reserve dictionary codes for all values of all columns.
        let mut code_matrix: Vec<Vec<Code>> = Vec::with_capacity(arity);
        for c in 0..arity {
            let col = &mut inner.columns[c];
            let mut codes = Vec::with_capacity(rows.len());
            for (_, row, _, _) in rows {
                if row[c].is_null() {
                    codes.push(L2_NULL_CODE);
                } else {
                    codes.push(col.dict.get_or_insert(&row[c]));
                }
            }
            code_matrix.push(codes);
        }
        // Phase 2: append value vectors and inverted lists (could run
        // column-parallel; positions are pre-known).
        for (c, codes) in code_matrix.into_iter().enumerate() {
            let col = &mut inner.columns[c];
            for (k, code) in codes.into_iter().enumerate() {
                col.codes.push(code);
                if code != L2_NULL_CODE {
                    col.invidx.insert(code, first + k as Pos);
                }
            }
        }
        for (row_id, _, begin, end) in rows {
            inner.row_ids.push(*row_id);
            inner.begins.push(AtomicU64::new(*begin));
            inner.ends.push(AtomicU64::new(*end));
        }
        Ok(first)
    }

    /// The stable record id at `pos`.
    pub fn row_id(&self, pos: Pos) -> RowId {
        self.inner.read().row_ids[pos as usize]
    }

    /// MVCC begin stamp at `pos`.
    pub fn begin(&self, pos: Pos) -> Timestamp {
        self.inner.read().begins[pos as usize].load(Ordering::Acquire)
    }

    /// MVCC end stamp at `pos`.
    pub fn end(&self, pos: Pos) -> Timestamp {
        self.inner.read().ends[pos as usize].load(Ordering::Acquire)
    }

    /// Overwrite the end stamp (delete / supersede / rollback).
    pub fn store_end(&self, pos: Pos, ts: Timestamp) {
        self.inner.read().ends[pos as usize].store(ts, Ordering::Release);
    }

    /// Overwrite the begin stamp (recovery replay).
    pub fn store_begin(&self, pos: Pos, ts: Timestamp) {
        self.inner.read().begins[pos as usize].store(ts, Ordering::Release);
    }

    /// Resolve a begin-stamp mark to its committed value (GC). Races the
    /// (recovery-only) begin writers via compare-exchange.
    pub fn resolve_begin(&self, pos: Pos, old_mark: Timestamp, resolved: Timestamp) -> bool {
        self.inner.read().begins[pos as usize]
            .compare_exchange(old_mark, resolved, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Resolve an end-stamp mark to its settled value (GC). Only lands if
    /// the stamp still holds `old_mark`, so a racing deleter always wins.
    pub fn resolve_end(&self, pos: Pos, old_mark: Timestamp, resolved: Timestamp) -> bool {
        self.inner.read().ends[pos as usize]
            .compare_exchange(old_mark, resolved, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// The value at `(pos, col)`.
    pub fn value(&self, pos: Pos, col: usize) -> Value {
        let inner = self.inner.read();
        let code = inner.columns[col].codes[pos as usize];
        if code == L2_NULL_CODE {
            Value::Null
        } else {
            inner.columns[col].dict.value_of(code).clone()
        }
    }

    /// Materialize the whole row at `pos`.
    pub fn row(&self, pos: Pos) -> Vec<Value> {
        let inner = self.inner.read();
        (0..self.schema.arity())
            .map(|c| {
                let code = inner.columns[c].codes[pos as usize];
                if code == L2_NULL_CODE {
                    Value::Null
                } else {
                    inner.columns[c].dict.value_of(code).clone()
                }
            })
            .collect()
    }

    /// Positions (≤ `fence`) whose `col` equals `v`, via dictionary + inverted
    /// index — the paper's point-query path through the secondary index.
    pub fn positions_eq(&self, col: usize, v: &Value, fence: Pos) -> Vec<Pos> {
        let inner = self.inner.read();
        let Some(code) = inner.columns[col].dict.code_of(v) else {
            return Vec::new();
        };
        inner.columns[col]
            .invidx
            .positions(code)
            .iter()
            .copied()
            .take_while(|&p| p < fence)
            .collect()
    }

    /// Positions (≤ `fence`) whose `col` lies in `[lo, hi]` bounds. The
    /// unsorted dictionary gives no code-order shortcut: resolve matching
    /// codes by value comparison, then use the inverted lists.
    pub fn positions_range(
        &self,
        col: usize,
        lo: std::ops::Bound<&Value>,
        hi: std::ops::Bound<&Value>,
        fence: Pos,
    ) -> Vec<Pos> {
        use std::ops::Bound;
        let inner = self.inner.read();
        let colref = &inner.columns[col];
        let in_range = |v: &Value| {
            (match lo {
                Bound::Unbounded => true,
                Bound::Included(b) => v >= b,
                Bound::Excluded(b) => v > b,
            }) && (match hi {
                Bound::Unbounded => true,
                Bound::Included(b) => v <= b,
                Bound::Excluded(b) => v < b,
            })
        };
        let mut out = Vec::new();
        for (code, v) in colref.dict.values().iter().enumerate() {
            if in_range(v) {
                out.extend(
                    colref
                        .invidx
                        .positions(code as Code)
                        .iter()
                        .copied()
                        .take_while(|&p| p < fence),
                );
            }
        }
        out.sort_unstable();
        out
    }

    /// Run `f` with read access to one column's raw parts
    /// `(dict, codes, fence-truncated)` — the bulk path for scans and merges.
    pub fn with_column<R>(
        &self,
        col: usize,
        fence: Pos,
        f: impl FnOnce(&UnsortedDict, &[Code]) -> R,
    ) -> R {
        let inner = self.inner.read();
        let colref = &inner.columns[col];
        let n = (fence as usize).min(colref.codes.len());
        f(&colref.dict, &colref.codes[..n])
    }

    /// Run `f` with read access to one column **plus the MVCC stamp
    /// vectors**, all under one lock acquisition. The scan kernels need the
    /// stamps for visibility checks; calling [`begin`](Self::begin)/
    /// [`end`](Self::end) from inside a `with_column` closure would
    /// re-acquire the inner lock recursively and deadlock against a queued
    /// writer.
    pub fn with_column_stamped<R>(
        &self,
        col: usize,
        fence: Pos,
        f: impl FnOnce(&UnsortedDict, &[Code], &[AtomicU64], &[AtomicU64]) -> R,
    ) -> R {
        let inner = self.inner.read();
        let c = &inner.columns[col];
        let n = (fence as usize).min(c.codes.len());
        f(&c.dict, &c.codes[..n], &inner.begins[..n], &inner.ends[..n])
    }

    /// Two columns plus the MVCC stamps under one lock acquisition
    /// (columnar group-by aggregation path).
    pub fn with_two_columns_stamped<R>(
        &self,
        col_a: usize,
        col_b: usize,
        fence: Pos,
        f: impl FnOnce(&UnsortedDict, &[Code], &UnsortedDict, &[Code], &[AtomicU64], &[AtomicU64]) -> R,
    ) -> R {
        let inner = self.inner.read();
        let a = &inner.columns[col_a];
        let b = &inner.columns[col_b];
        let na = (fence as usize).min(a.codes.len());
        let nb = (fence as usize).min(b.codes.len());
        f(
            &a.dict,
            &a.codes[..na],
            &b.dict,
            &b.codes[..nb],
            &inner.begins[..na],
            &inner.ends[..na],
        )
    }

    /// Arbitrarily many columns plus the MVCC stamps under one lock
    /// acquisition — the compressed-domain filtered scan needs every filter
    /// column and every projected column together. `views[i]` corresponds to
    /// `cols[i]`; a column may be requested more than once.
    pub fn with_columns_stamped<R>(
        &self,
        cols: &[usize],
        fence: Pos,
        f: impl FnOnce(&[(&UnsortedDict, &[Code])], &[AtomicU64], &[AtomicU64]) -> R,
    ) -> R {
        let inner = self.inner.read();
        let n = (fence as usize).min(inner.row_ids.len());
        let views: Vec<(&UnsortedDict, &[Code])> = cols
            .iter()
            .map(|&c| {
                let col = &inner.columns[c];
                (&col.dict, &col.codes[..n])
            })
            .collect();
        f(&views, &inner.begins[..n], &inner.ends[..n])
    }

    /// Snapshot of all MVCC stamps up to `fence` (used by merges).
    pub fn stamps(&self, fence: Pos) -> Vec<(RowId, Timestamp, Timestamp)> {
        let inner = self.inner.read();
        let n = (fence as usize).min(inner.row_ids.len());
        (0..n)
            .map(|i| {
                (
                    inner.row_ids[i],
                    inner.begins[i].load(Ordering::Acquire),
                    inner.ends[i].load(Ordering::Acquire),
                )
            })
            .collect()
    }

    /// Approximate heap footprint in bytes (dictionaries + value vectors +
    /// inverted indexes + stamps).
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.read();
        let cols: usize = inner
            .columns
            .iter()
            .map(|c| c.dict.heap_size() + c.codes.capacity() * 4 + c.invidx.heap_size())
            .sum();
        cols + inner.row_ids.capacity() * 8 + inner.begins.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, COMMIT_TS_MAX};
    use std::ops::Bound;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("city", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn sample() -> L2Delta {
        let d = L2Delta::new(schema(), 1);
        let cities = ["Los Gatos", "Campbell", "Los Gatos", "Saratoga"];
        for (i, c) in cities.iter().enumerate() {
            d.append_row(
                RowId(i as u64),
                &[Value::Int(i as i64), Value::str(*c)],
                10,
                COMMIT_TS_MAX,
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn append_and_read_back() {
        let d = sample();
        assert_eq!(d.len(), 4);
        assert_eq!(d.value(0, 1), Value::str("Los Gatos"));
        assert_eq!(d.value(2, 1), Value::str("Los Gatos"));
        assert_eq!(d.row(3), vec![Value::Int(3), Value::str("Saratoga")]);
        assert_eq!(d.row_id(2), RowId(2));
        assert_eq!(d.begin(0), 10);
        assert_eq!(d.end(0), COMMIT_TS_MAX);
    }

    #[test]
    fn dictionary_is_unsorted_append_order() {
        let d = sample();
        d.with_column(1, 4, |dict, codes| {
            // Arrival order: Los Gatos=0, Campbell=1, Saratoga=2.
            assert_eq!(dict.value_of(0), &Value::str("Los Gatos"));
            assert_eq!(dict.value_of(1), &Value::str("Campbell"));
            assert_eq!(dict.value_of(2), &Value::str("Saratoga"));
            assert_eq!(codes, &[0, 1, 0, 2]);
        });
    }

    #[test]
    fn point_query_via_inverted_index() {
        let d = sample();
        assert_eq!(d.positions_eq(1, &Value::str("Los Gatos"), 4), vec![0, 2]);
        assert_eq!(d.positions_eq(1, &Value::str("Campbell"), 4), vec![1]);
        assert_eq!(
            d.positions_eq(1, &Value::str("Nowhere"), 4),
            Vec::<Pos>::new()
        );
        // Fence cuts off later rows.
        assert_eq!(d.positions_eq(1, &Value::str("Los Gatos"), 1), vec![0]);
    }

    #[test]
    fn range_query_resolves_through_dictionary() {
        let d = sample();
        // Fig 10 style: between C% and L%.
        let hits = d.positions_range(
            1,
            Bound::Included(&Value::str("C")),
            Bound::Excluded(&Value::str("M")),
            4,
        );
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn nulls_round_trip_and_stay_out_of_index() {
        let d = L2Delta::new(schema(), 1);
        d.append_row(RowId(0), &[Value::Int(1), Value::Null], 1, COMMIT_TS_MAX)
            .unwrap();
        d.append_row(
            RowId(1),
            &[Value::Int(2), Value::str("x")],
            1,
            COMMIT_TS_MAX,
        )
        .unwrap();
        assert_eq!(d.value(0, 1), Value::Null);
        assert_eq!(d.positions_eq(1, &Value::str("x"), 2), vec![1]);
        d.with_column(1, 2, |dict, codes| {
            assert_eq!(dict.len(), 1); // NULL not in dictionary
            assert_eq!(codes[0], L2_NULL_CODE);
        });
    }

    #[test]
    fn closed_delta_rejects_appends() {
        let d = sample();
        d.close();
        assert!(d.is_closed());
        let err = d
            .append_row(
                RowId(9),
                &[Value::Int(9), Value::str("x")],
                1,
                COMMIT_TS_MAX,
            )
            .unwrap_err();
        assert!(matches!(err, HanaError::Merge(_)));
    }

    #[test]
    fn batch_append_matches_row_appends() {
        let d1 = sample();
        let d2 = L2Delta::new(schema(), 2);
        let rows: Vec<(RowId, Vec<Value>, Timestamp, Timestamp)> = (0..4)
            .map(|i| {
                (
                    RowId(i as u64),
                    d1.row(i as Pos),
                    d1.begin(i as Pos),
                    d1.end(i as Pos),
                )
            })
            .collect();
        let first = d2.append_batch(&rows).unwrap();
        assert_eq!(first, 0);
        assert_eq!(d2.len(), 4);
        for p in 0..4 {
            assert_eq!(d1.row(p), d2.row(p));
        }
        d2.with_column(1, 4, |dict, codes| {
            assert_eq!(dict.len(), 3);
            assert_eq!(codes, &[0, 1, 0, 2]);
        });
    }

    #[test]
    fn end_stamp_updates() {
        let d = sample();
        d.store_end(1, 99);
        assert_eq!(d.end(1), 99);
        let stamps = d.stamps(4);
        assert_eq!(stamps[1], (RowId(1), 10, 99));
    }

    #[test]
    fn bytes_accounting() {
        let d = sample();
        assert!(d.approx_bytes() > 0);
    }
}
