//! Zipfian sampling (rejection-inversion free, simple CDF table).
//!
//! OLTP key popularity is skewed in practice; the drivers use a Zipf
//! distribution over the key space so hot rows see repeated updates —
//! exactly the pattern that stresses MVCC version chains and the merge's
//! garbage collection.

use rand::Rng;

/// A Zipf(n, s) sampler over `0..n` built on a precomputed CDF.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` items with exponent `s` (`s = 0` is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample an index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty (constructor asserts).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!((*max as f64) < *min as f64 * 1.3, "{counts:?}");
    }

    #[test]
    fn skewed_when_s_large() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Item 0 dominates item 50 heavily.
        assert!(
            counts[0] > counts[50] * 10,
            "{} vs {}",
            counts[0],
            counts[50]
        );
        // All samples in range (implicitly: no panic) and every index valid.
        assert_eq!(counts.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
