//! Offline shim for the `rand` crate (see `vendor/parking_lot` for why
//! these shims exist).
//!
//! Provides the 0.8-style API subset the workspace uses: the [`Rng`] trait
//! with `gen` / `gen_range`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`] — here an xoshiro256++ generator seeded through
//! SplitMix64. Statistical quality is ample for workload generation; none
//! of this is cryptographic.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

/// Debiased bounded sampling (rejection on the top remainder).
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait.
pub trait Rng: RngCore {
    /// A uniform value of a [`Standard`] type (`f64` lands in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in the given range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministically seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64 (the reference seeding scheme).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(0..100u32);
            assert!(v < 100);
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
