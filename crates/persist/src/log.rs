//! The REDO log.
//!
//! "Logging for the REDO purpose is performed only once when new data is
//! entering the system, either within the L1-delta or for bulk inserts
//! within the L2-delta" (§3.2). Record kinds mirror exactly that protocol:
//! first-appearance data records, commit/abort records, and the data-free
//! merge *event* record. Records are framed `[len][crc][payload]`; replay
//! stops cleanly at a torn tail.
//!
//! ## Durability protocol
//!
//! Data records are *buffered* at first appearance; only transaction
//! outcomes force them to disk. Both **commit and abort** records are
//! retired through the group-commit pipeline ([`crate::group`]): the call
//! returns only once the record — and, because the log is strictly
//! append-ordered, every record sequenced before it — is fsynced. Aborts
//! flush for the same reason commits do: once `abort()` returns, a restart
//! must keep resolving that transaction's marks as rolled back instead of
//! re-deciding its fate from a log that ends mid-transaction. Recovery
//! treats transactions with neither outcome record as aborted, so a torn
//! tail can only ever *shrink* the committed set, never tear one
//! transaction's effects apart.

use crate::codec::{crc32, Decoder, Encoder};
use crate::image::{decode_config, decode_schema, encode_config, encode_schema};
use hana_common::{
    HanaError, Result, RowId, Schema, TableConfig, TableId, Timestamp, TxnId, Value,
};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One REDO record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A row's first appearance via the L1-delta (insert, or the new version
    /// written by an update).
    InsertL1 {
        /// Target table.
        table: TableId,
        /// Stable record id assigned on entry.
        row_id: RowId,
        /// Writing transaction.
        txn: TxnId,
        /// Full row payload.
        row: Vec<Value>,
    },
    /// A batch of rows entering directly through the L2-delta (bulk load,
    /// "bypassing the L1-delta").
    BulkLoadL2 {
        /// Target table.
        table: TableId,
        /// Row id of the first row; the batch occupies consecutive ids.
        first_row_id: RowId,
        /// Loading transaction.
        txn: TxnId,
        /// The loaded rows.
        rows: Vec<Vec<Value>>,
    },
    /// Logical deletion (also logged for the superseded version on update).
    Delete {
        /// Target table.
        table: TableId,
        /// The record whose current version is closed.
        row_id: RowId,
        /// Deleting transaction.
        txn: TxnId,
    },
    /// Transaction commit with its timestamp.
    Commit {
        /// The committing transaction.
        txn: TxnId,
        /// Its commit timestamp.
        ts: Timestamp,
    },
    /// Transaction abort.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// DDL: a table was created (schema + lifecycle config).
    CreateTable {
        /// Assigned catalog id.
        table: TableId,
        /// The table schema.
        schema: Schema,
        /// Lifecycle configuration.
        config: TableConfig,
    },
    /// A merge happened — no data, just the event ("the event of the merge
    /// is written to the log").
    MergeEvent {
        /// Affected table.
        table: TableId,
        /// 0 = L1→L2, 1 = delta-to-main.
        kind: u8,
        /// Generation of the L2-delta involved.
        l2_generation: u64,
    },
}

impl LogRecord {
    fn encode(&self, e: &mut Encoder) {
        match self {
            LogRecord::InsertL1 {
                table,
                row_id,
                txn,
                row,
            } => {
                e.u8(1);
                e.u32(table.0);
                e.u64(row_id.0);
                e.u64(txn.0);
                e.u32(row.len() as u32);
                for v in row {
                    e.value(v);
                }
            }
            LogRecord::BulkLoadL2 {
                table,
                first_row_id,
                txn,
                rows,
            } => {
                e.u8(2);
                e.u32(table.0);
                e.u64(first_row_id.0);
                e.u64(txn.0);
                e.u32(rows.len() as u32);
                for row in rows {
                    e.u32(row.len() as u32);
                    for v in row {
                        e.value(v);
                    }
                }
            }
            LogRecord::Delete { table, row_id, txn } => {
                e.u8(3);
                e.u32(table.0);
                e.u64(row_id.0);
                e.u64(txn.0);
            }
            LogRecord::Commit { txn, ts } => {
                e.u8(4);
                e.u64(txn.0);
                e.u64(*ts);
            }
            LogRecord::Abort { txn } => {
                e.u8(5);
                e.u64(txn.0);
            }
            LogRecord::CreateTable {
                table,
                schema,
                config,
            } => {
                e.u8(7);
                e.u32(table.0);
                encode_schema(e, schema);
                encode_config(e, config);
            }
            LogRecord::MergeEvent {
                table,
                kind,
                l2_generation,
            } => {
                e.u8(6);
                e.u32(table.0);
                e.u8(*kind);
                e.u64(*l2_generation);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<LogRecord> {
        Ok(match d.u8()? {
            1 => {
                let table = TableId(d.u32()?);
                let row_id = RowId(d.u64()?);
                let txn = TxnId(d.u64()?);
                let n = d.u32()? as usize;
                let mut row = Vec::with_capacity(n);
                for _ in 0..n {
                    row.push(d.value()?);
                }
                LogRecord::InsertL1 {
                    table,
                    row_id,
                    txn,
                    row,
                }
            }
            2 => {
                let table = TableId(d.u32()?);
                let first_row_id = RowId(d.u64()?);
                let txn = TxnId(d.u64()?);
                let n = d.u32()? as usize;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = d.u32()? as usize;
                    let mut row = Vec::with_capacity(m);
                    for _ in 0..m {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                LogRecord::BulkLoadL2 {
                    table,
                    first_row_id,
                    txn,
                    rows,
                }
            }
            3 => LogRecord::Delete {
                table: TableId(d.u32()?),
                row_id: RowId(d.u64()?),
                txn: TxnId(d.u64()?),
            },
            4 => LogRecord::Commit {
                txn: TxnId(d.u64()?),
                ts: d.u64()?,
            },
            5 => LogRecord::Abort {
                txn: TxnId(d.u64()?),
            },
            6 => LogRecord::MergeEvent {
                table: TableId(d.u32()?),
                kind: d.u8()?,
                l2_generation: d.u64()?,
            },
            7 => LogRecord::CreateTable {
                table: TableId(d.u32()?),
                schema: decode_schema(d)?,
                config: decode_config(d)?,
            },
            t => return Err(HanaError::Persist(format!("unknown log record tag {t}"))),
        })
    }
}

/// Append-only, checksummed REDO log file.
pub struct RedoLog {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl RedoLog {
    /// Open (append mode) or create the log at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RedoLog {
            path: path.to_path_buf(),
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    /// Append one record (buffered; call [`flush`](Self::flush) to force it
    /// to the OS, as commit does).
    pub fn append(&self, rec: &LogRecord) -> Result<()> {
        let mut e = Encoder::new();
        rec.encode(&mut e);
        let payload = e.into_bytes();
        let mut w = self.writer.lock();
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
        Ok(())
    }

    /// Flush buffered records and fsync.
    pub fn flush(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        w.get_ref().sync_data()?;
        Ok(())
    }

    /// Bytes currently in the log file (after a flush).
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    /// Truncate the log (after a completed savepoint).
    pub fn truncate(&self) -> Result<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        let file = OpenOptions::new().write(true).open(&self.path)?;
        file.set_len(0)?;
        file.sync_data()?;
        *w = BufWriter::new(OpenOptions::new().append(true).open(&self.path)?);
        Ok(())
    }

    /// Read all intact records from a log file, stopping silently at a torn
    /// or corrupt tail (the crash-recovery contract).
    pub fn read_all(path: &Path) -> Result<Vec<LogRecord>> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            if pos + 8 + len > data.len() {
                break; // torn tail
            }
            let payload = &data[pos + 8..pos + 8 + len];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            match LogRecord::decode(&mut Decoder::new(payload)) {
                Ok(rec) => out.push(rec),
                Err(_) => break,
            }
            pos += 8 + len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::InsertL1 {
                table: TableId(1),
                row_id: RowId(10),
                txn: TxnId(3),
                row: vec![Value::Int(7), Value::str("x"), Value::Null],
            },
            LogRecord::BulkLoadL2 {
                table: TableId(1),
                first_row_id: RowId(11),
                txn: TxnId(3),
                rows: vec![vec![Value::Int(1)], vec![Value::double(2.5)]],
            },
            LogRecord::Delete {
                table: TableId(1),
                row_id: RowId(10),
                txn: TxnId(4),
            },
            LogRecord::Commit {
                txn: TxnId(3),
                ts: 99,
            },
            LogRecord::Abort { txn: TxnId(4) },
            LogRecord::MergeEvent {
                table: TableId(1),
                kind: 1,
                l2_generation: 5,
            },
            LogRecord::CreateTable {
                table: TableId(2),
                schema: hana_common::Schema::new(
                    "t2",
                    vec![hana_common::ColumnDef::new("x", hana_common::DataType::Int).unique()],
                )
                .unwrap(),
                config: TableConfig::small(),
            },
        ]
    }

    #[test]
    fn append_flush_read_round_trip() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(got, sample_records());
    }

    #[test]
    fn missing_file_reads_empty() {
        let dir = tempdir().unwrap();
        let got = RedoLog::read_all(&dir.path().join("nope.log")).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        // Simulate a crash mid-write: append half a frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap();
        }
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(got, sample_records());
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        // Flip a byte inside the last record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 2] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(got.len(), sample_records().len() - 1);
    }

    #[test]
    fn truncate_clears_and_log_stays_usable() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        log.append(&sample_records()[0]).unwrap();
        log.flush().unwrap();
        assert!(log.len_bytes().unwrap() > 0);
        log.truncate().unwrap();
        assert_eq!(log.len_bytes().unwrap(), 0);
        log.append(&sample_records()[3]).unwrap();
        log.flush().unwrap();
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(got, vec![sample_records()[3].clone()]);
    }

    #[test]
    fn merge_event_is_small() {
        // The merge logs an event, not the data (§3.2): the record must be
        // tiny regardless of how much data moved.
        let mut e = Encoder::new();
        LogRecord::MergeEvent {
            table: TableId(1),
            kind: 0,
            l2_generation: 123,
        }
        .encode(&mut e);
        assert!(e.len() < 32);
    }
}
