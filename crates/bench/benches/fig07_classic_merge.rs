//! Fig 7 — the classic delta-to-main merge.
//!
//! Claims regenerated: (a) merge cost grows with the size of the old main
//! (the whole structure is rebuilt); (b) the dictionary fast paths (delta ⊆
//! main, delta > main) cut the dictionary phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_bench::{fill_l2, staged_sales, Stage};
use hana_common::{ColumnDef, DataType, MergeConfig, Schema, TableConfig, Value};
use hana_core::Database;
use hana_dict::{merge_dicts, SortedDict, UnsortedDict};
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;

fn bench_merge_cost_vs_main_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_merge_cost_vs_main_size");
    g.sample_size(10);
    for main_rows in [10_000i64, 40_000, 160_000] {
        g.bench_function(BenchmarkId::from_parameter(main_rows), |b| {
            b.iter_batched(
                || {
                    let st = staged_sales(main_rows, Stage::Main, 7);
                    fill_l2(&st, main_rows, 5_000, 13);
                    st
                },
                |st| {
                    st.table.merge_delta_as(MergeDecision::Classic).unwrap();
                    assert_eq!(st.table.stage_stats().main_rows as i64, main_rows + 5_000);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

/// The dictionary-phase fast paths in isolation (pure hana-dict).
fn bench_dictionary_fast_paths(c: &mut Criterion) {
    const MAIN: i64 = 200_000;
    const DELTA: i64 = 5_000;
    // Main holds the even integers; odd values force the general path.
    let main = SortedDict::from_values((0..MAIN).map(|i| Value::Int(i * 2)).collect());

    // Subset: delta values all exist in the main dictionary.
    let subset = {
        let mut d = UnsortedDict::new();
        for i in 0..DELTA {
            d.get_or_insert(&Value::Int((i * 17 % MAIN) * 2));
        }
        d
    };
    // Append: all delta values above the main maximum (timestamps).
    let append = {
        let mut d = UnsortedDict::new();
        for i in 0..DELTA {
            d.get_or_insert(&Value::Int(MAIN * 2 + i));
        }
        d
    };
    // General: interleaved odd values forcing the full two-way merge.
    let general = {
        let mut d = UnsortedDict::new();
        for i in 0..DELTA {
            d.get_or_insert(&Value::Int(i * 2 + 1));
        }
        d
    };

    let mut g = c.benchmark_group("fig07_dictionary_paths");
    g.sample_size(20);
    for (name, delta) in [
        ("subset", &subset),
        ("append", &append),
        ("general", &general),
    ] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let m = merge_dicts(&main, delta);
                std::hint::black_box(m.dict.len());
            })
        });
    }
    g.finish();
}

/// The column-parallel fan-out vs the serial merge over a wide (16-column)
/// table. Speedup tracks the core count; on one core the two tie.
fn bench_parallel_vs_serial(c: &mut Criterion) {
    const ROWS: i64 = 100_000;
    const COLS: usize = 16;
    let staged_wide = |parallelism: usize| {
        let db = Database::in_memory();
        let cols: Vec<ColumnDef> = std::iter::once(ColumnDef::new("id", DataType::Int).unique())
            .chain((1..COLS).map(|c| ColumnDef::new(format!("c{c}"), DataType::Int)))
            .collect();
        let schema = Schema::new("wide", cols).unwrap();
        let cfg = TableConfig {
            l1_max_rows: usize::MAX / 2,
            l2_max_rows: usize::MAX / 2,
            ..TableConfig::default()
        }
        .with_merge(MergeConfig::default().with_column_parallelism(parallelism));
        let table = db.create_table(schema, cfg).unwrap();
        let batch: Vec<Vec<Value>> = (0..ROWS)
            .map(|i| {
                std::iter::once(Value::Int(i))
                    .chain((1..COLS as i64).map(|c| Value::Int((i * 31 + c) % 997)))
                    .collect()
            })
            .collect();
        let mut txn = db.begin(IsolationLevel::Transaction);
        table.bulk_load(&txn, batch).unwrap();
        db.commit(&mut txn).unwrap();
        (db, table)
    };
    let mut g = c.benchmark_group("fig07_parallel_vs_serial");
    g.sample_size(10);
    for (name, parallelism) in [("serial", 1usize), ("parallel", 0usize)] {
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || staged_wide(parallelism),
                |(_db, table)| {
                    table.merge_delta_as(MergeDecision::Classic).unwrap();
                    assert_eq!(table.stage_stats().main_rows as i64, ROWS);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_merge_cost_vs_main_size,
    bench_dictionary_fast_paths,
    bench_parallel_vs_serial
);
criterion_main!(benches);
