//! Growable bitmaps for deletion vectors and NULL masks.

/// A simple growable bitset over row positions.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let w = self.len / 64;
        if w >= self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << (self.len % 64);
            self.ones += 1;
        }
        self.len += 1;
    }

    /// Grow to at least `len` bits (new bits are zero).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            let need = len.div_ceil(64);
            if need > self.words.len() {
                self.words.resize(need, 0);
            }
        }
    }

    /// Read bit `i`; positions beyond the end read as 0.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i`, growing as needed.
    pub fn set(&mut self, i: usize) {
        self.grow(i + 1);
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask == 0 {
            self.words[i / 64] |= mask;
            self.ones += 1;
        }
    }

    /// Clear bit `i` (no-op past the end).
    pub fn clear(&mut self, i: usize) {
        if i >= self.len {
            return;
        }
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            self.words[i / 64] &= !mask;
            self.ones -= 1;
        }
    }

    /// Set every bit in `[lo, hi)`, growing as needed. Word-at-a-time, so
    /// run-granular kernels (RLE, cluster, sparse) pay O(bits/64).
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.grow(hi);
        let (lw, hw) = (lo / 64, (hi - 1) / 64);
        for w in lw..=hw {
            let mut mask = u64::MAX;
            if w == lw {
                mask &= u64::MAX << (lo % 64);
            }
            if w == hw {
                let top = (hi - 1) % 64;
                mask &= u64::MAX >> (63 - top);
            }
            self.ones += (mask & !self.words[w]).count_ones() as usize;
            self.words[w] |= mask;
        }
    }

    /// OR the low `nbits` (1..=64) of `word` into bits `[start, start+nbits)`,
    /// growing as needed. This is the word-at-a-time emission path of the
    /// scan kernels: one call per 64 decoded rows instead of 64 `set`s.
    pub fn or_word(&mut self, start: usize, word: u64, nbits: usize) {
        debug_assert!((1..=64).contains(&nbits));
        let word = if nbits == 64 {
            word
        } else {
            word & ((1u64 << nbits) - 1)
        };
        if word == 0 {
            return;
        }
        self.grow(start + nbits);
        let w = start / 64;
        let off = start % 64;
        let lo = word << off;
        self.ones += (lo & !self.words[w]).count_ones() as usize;
        self.words[w] |= lo;
        if off > 0 && off + nbits > 64 {
            let hi = word >> (64 - off);
            self.ones += (hi & !self.words[w + 1]).count_ones() as usize;
            self.words[w + 1] |= hi;
        }
    }

    /// In-place word-wise AND with `other`: bit `i` of `self` survives only
    /// if bit `i` of `other` is set. Bits past `other`'s length read as 0.
    pub fn and_with(&mut self, other: &Bitmap) {
        self.and_offset(other, 0);
    }

    /// In-place word-wise AND against a *window* of `other`: bit `i` of
    /// `self` survives only if bit `offset + i` of `other` is set. This is
    /// the visibility-AND step of a chunked scan — the hit bitmap is
    /// window-relative while the snapshot bitmap covers the whole part.
    /// 64 rows are resolved per iteration; an aligned offset is pure `&`.
    pub fn and_offset(&mut self, other: &Bitmap, offset: usize) {
        let shift = offset % 64;
        let base = offset / 64;
        let ow = &other.words;
        let fetch = |j: usize| ow.get(j).copied().unwrap_or(0);
        for (i, w) in self.words.iter_mut().enumerate() {
            if *w == 0 {
                continue;
            }
            let vis = if shift == 0 {
                fetch(base + i)
            } else {
                (fetch(base + i) >> shift) | (fetch(base + i + 1) << (64 - shift))
            };
            *w &= vis;
        }
        self.recount();
    }

    /// In-place word-wise OR with `other` (grows to `other`'s length).
    pub fn or_with(&mut self, other: &Bitmap) {
        self.grow(other.len);
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.recount();
    }

    /// Recompute the cached ones count (word-wise popcount).
    fn recount(&mut self) {
        self.ones = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Clear every set bit whose position fails `keep`, word-at-a-time (no
    /// allocation; only set bits are visited).
    pub fn retain_ones(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let mut removed = 0usize;
        for (wi, word) in self.words.iter_mut().enumerate() {
            let mut rest = *word;
            let mut kept = *word;
            while rest != 0 {
                let b = rest.trailing_zeros() as usize;
                let pos = wi * 64 + b;
                if pos < self.len && !keep(pos) {
                    kept &= !(1u64 << b);
                    removed += 1;
                }
                rest &= rest - 1;
            }
            *word = kept;
        }
        self.ones -= removed;
    }

    /// Iterate positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.len;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let p = base + rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(p)
            })
            .filter(move |&p| p < len)
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn set_clear_idempotent() {
        let mut b = Bitmap::zeros(10);
        b.set(7);
        b.set(7);
        assert_eq!(b.count_ones(), 1);
        b.clear(7);
        b.clear(7);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(7));
    }

    #[test]
    fn set_grows() {
        let mut b = Bitmap::new();
        b.set(100);
        assert_eq!(b.len(), 101);
        assert!(b.get(100));
        assert!(!b.get(99));
        assert!(!b.get(500)); // out of range reads as 0
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = Bitmap::new();
        for p in [3usize, 64, 65, 128, 200] {
            b.set(p);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 200]);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(Bitmap::zeros(100).iter_ones().count(), 0);
    }

    #[test]
    fn set_range_matches_bitwise_set() {
        for (lo, hi) in [(0, 0), (0, 1), (3, 67), (64, 128), (5, 200), (63, 65)] {
            let mut a = Bitmap::zeros(256);
            a.set(10); // pre-set bit inside some ranges: ones must not double-count
            a.set_range(lo, hi);
            let mut b = Bitmap::zeros(256);
            b.set(10);
            for i in lo..hi {
                b.set(i);
            }
            assert_eq!(a.count_ones(), b.count_ones(), "[{lo},{hi})");
            for i in 0..256 {
                assert_eq!(a.get(i), b.get(i), "bit {i} of [{lo},{hi})");
            }
        }
    }

    #[test]
    fn or_word_matches_bitwise_sets() {
        for start in [0usize, 5, 60, 64, 127] {
            for nbits in [1usize, 7, 33, 64] {
                let word = 0xA5A5_5A5A_F00F_1234u64;
                let mut a = Bitmap::zeros(256);
                a.set(start); // overlap: ones must not double-count
                a.or_word(start, word, nbits);
                let mut b = Bitmap::zeros(256);
                b.set(start);
                for k in 0..nbits {
                    if word >> k & 1 == 1 {
                        b.set(start + k);
                    }
                }
                assert_eq!(a.count_ones(), b.count_ones(), "start={start} n={nbits}");
                for i in 0..256 {
                    assert_eq!(a.get(i), b.get(i), "bit {i} start={start} n={nbits}");
                }
            }
        }
    }

    #[test]
    fn and_offset_matches_per_bit() {
        let mut vis = Bitmap::zeros(300);
        for i in 0..300 {
            if i % 3 != 0 {
                vis.set(i);
            }
        }
        for offset in [0usize, 1, 63, 64, 100] {
            let mut hits = Bitmap::zeros(130);
            for i in (0..130).step_by(2) {
                hits.set(i);
            }
            let mut want = hits.clone();
            for i in 0..130 {
                if !vis.get(offset + i) {
                    want.clear(i);
                }
            }
            hits.and_offset(&vis, offset);
            assert_eq!(hits.count_ones(), want.count_ones(), "offset={offset}");
            for i in 0..130 {
                assert_eq!(hits.get(i), want.get(i), "bit {i} offset={offset}");
            }
        }
    }

    #[test]
    fn and_or_with_words() {
        let mut a = Bitmap::zeros(130);
        let mut b = Bitmap::zeros(130);
        for i in 0..130 {
            if i % 2 == 0 {
                a.set(i);
            }
            if i % 3 == 0 {
                b.set(i);
            }
        }
        let mut anded = a.clone();
        anded.and_with(&b);
        for i in 0..130 {
            assert_eq!(anded.get(i), i % 6 == 0, "and bit {i}");
        }
        assert_eq!(anded.count_ones(), (0..130).filter(|i| i % 6 == 0).count());
        let mut ored = a.clone();
        ored.or_with(&b);
        for i in 0..130 {
            assert_eq!(ored.get(i), i % 2 == 0 || i % 3 == 0, "or bit {i}");
        }
    }

    #[test]
    fn retain_ones_filters_in_place() {
        let mut b = Bitmap::zeros(200);
        for i in (0..200).step_by(3) {
            b.set(i);
        }
        b.retain_ones(|p| p % 2 == 0);
        for i in 0..200 {
            assert_eq!(b.get(i), i % 6 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..200).filter(|i| i % 6 == 0).count());
    }

    #[test]
    fn set_range_grows() {
        let mut b = Bitmap::new();
        b.set_range(100, 130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 30);
        assert!(b.get(100) && b.get(129) && !b.get(99));
    }
}
