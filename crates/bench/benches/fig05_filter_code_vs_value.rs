//! F5b — compressed-domain predicate execution vs materialize-then-filter.
//!
//! Claims regenerated: compiling a predicate to dictionary-code ranges and
//! evaluating it inside the encoded code vectors (with zone-map pruning at
//! the part and 16Ki-chunk level) beats decompressing every row and
//! filtering on values — dramatically so at low selectivity, where whole
//! chunks are skipped without touching a single code. The second group
//! isolates the scan kernel itself: the scalar per-row reference loop vs
//! the word-parallel (SWAR / `std::arch`) filter on raw bit-packed codes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_column::{BitPackedVec, Bitmap, CodeFilter, CodeMatcher};
use hana_common::{TableConfig, Value};
use hana_core::{ColumnPredicate, Database, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::{IsolationLevel, Snapshot};
use hana_workload::sales::fact_cols;
use hana_workload::{DataGen, SalesSchema};
use std::ops::Bound;
use std::sync::Arc;

const ROWS: i64 = 200_000;

/// A main-resident sales table: one sorted part, bit-packed code vectors.
fn build() -> (Arc<Database>, Arc<UnifiedTable>) {
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    };
    let table = db.create_table(SalesSchema::fact(), cfg).unwrap();
    let mut gen = DataGen::new(7);
    let batch: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| SalesSchema::fact_row(&mut gen, i, 1_000, 200))
        .collect();
    let mut txn = db.begin(IsolationLevel::Transaction);
    table.bulk_load(&txn, batch).unwrap();
    db.commit(&mut txn).unwrap();
    table.merge_delta_as(MergeDecision::Classic).unwrap();
    (db, table)
}

/// An order-id range predicate matching `hits` of the `ROWS` rows.
fn range_pred(hits: i64) -> Vec<ColumnPredicate> {
    vec![ColumnPredicate::Range(
        fact_cols::ORDER_ID,
        Bound::Included(Value::Int(0)),
        Bound::Excluded(Value::Int(hits)),
    )]
}

fn bench_code_vs_value(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_filter_code_vs_value");
    g.sample_size(20);
    let (db, table) = build();
    let snap = Snapshot::at(db.txn_manager().now());
    for (name, hits) in [
        ("sel_0.1pct", ROWS / 1000),
        ("sel_1pct", ROWS / 100),
        ("sel_50pct", ROWS / 2),
    ] {
        let preds = range_pred(hits);
        g.bench_function(BenchmarkId::new("code_domain", name), |b| {
            b.iter(|| {
                let read = table.read_at(snap);
                let (rows, _) = read.scan_filtered(&preds, None).unwrap();
                assert_eq!(rows.len(), hits as usize);
                std::hint::black_box(rows);
            })
        });
        g.bench_function(BenchmarkId::new("materialize_then_filter", name), |b| {
            b.iter(|| {
                let read = table.read_at(snap);
                let mut rows = read.collect_rows();
                rows.retain(|r| preds.iter().all(|p| p.matches_value(&r.values[p.column()])));
                assert_eq!(rows.len(), hits as usize);
                std::hint::black_box(rows);
            })
        });
    }
    g.finish();
}

fn bench_scan_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_scan_kernel_scalar_vs_word_parallel");
    g.sample_size(20);
    let n = 1_000_000usize;
    for bits in [8u8, 13, 16, 32] {
        let max = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        let codes: Vec<u32> = (0..n as u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32 & max)
            .collect();
        let v = BitPackedVec::from_codes_with_bits(&codes, bits);
        let quarter = (max as u64 / 4) as u32;
        let m = CodeMatcher::new(CodeFilter::range(quarter..quarter.saturating_mul(2)), max);
        let id = format!("{bits}bit");
        g.bench_function(BenchmarkId::new("scalar", &id), |b| {
            b.iter(|| {
                let mut hits = Bitmap::zeros(n);
                v.filter_range_scalar(0, n, &m, &mut hits);
                std::hint::black_box(hits.count_ones());
            })
        });
        g.bench_function(BenchmarkId::new("word_parallel", &id), |b| {
            b.iter(|| {
                let mut hits = Bitmap::zeros(n);
                v.filter_range(0, n, &m, &mut hits);
                std::hint::black_box(hits.count_ones());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_code_vs_value, bench_scan_kernels);
criterion_main!(benches);
