//! Bounded multi-producer multi-consumer channel.
//!
//! API subset of `crossbeam-channel`: [`bounded`], cloneable [`Sender`] /
//! [`Receiver`], `send` / `try_send` / `recv` / `recv_timeout`, and
//! disconnect detection when all handles of one side drop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    cap: usize,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable (MPMC — each message is delivered once).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create a bounded channel holding at most `cap` messages (`cap == 0` is
/// rounded up to 1; this shim has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        cap: cap.max(1),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Block until there is room, then enqueue.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut q = self.shared.lock();
        loop {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            if q.len() < self.shared.cap {
                q.push_back(msg);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            q = self
                .shared
                .not_full
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Enqueue without blocking.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut q = self.shared.lock();
        if self.shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if q.len() >= self.shared.cap {
            return Err(TrySendError::Full(msg));
        }
        q.push_back(msg);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or all senders disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            q = self
                .shared
                .not_empty
                .wait(q)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.shared.lock();
        loop {
            if let Some(msg) = q.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(q, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Option<T> {
        let mut q = self.shared.lock();
        let msg = q.pop_front();
        if msg.is_some() {
            self.shared.not_full.notify_one();
        }
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_timeout() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = bounded::<usize>(64);
        let counters: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<usize> = counters
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        let (tx, rx) = bounded::<u8>(1);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
