//! Savepoint images: serializable snapshots of a table's three stages.
//!
//! A [`TableImage`] is what a savepoint persists per table and what recovery
//! hands back: raw L1 rows, raw L2 rows (the L2 is rebuilt by appending them
//! in order — the unsorted dictionary is deterministic in arrival order),
//! and the main parts as dictionaries + code vectors ("a new version of the
//! main will be persisted on stable storage and can be used to reload the
//! main store").
//!
//! MVCC stamps are persisted raw; marks of transactions that were still in
//! flight at savepoint time resolve through the post-savepoint log replay.

use crate::codec::{Decoder, Encoder};
use hana_common::{ColumnDef, MergeStrategy, Result, RowId, Schema, TableConfig, Timestamp, Value};

/// One row version with its stamps.
#[derive(Debug, Clone, PartialEq)]
pub struct RowImage {
    /// Stable record id.
    pub row_id: RowId,
    /// Begin stamp (possibly a mark).
    pub begin: Timestamp,
    /// End stamp (possibly a mark).
    pub end: Timestamp,
    /// Row payload.
    pub values: Vec<Value>,
}

/// The L2-delta image.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeltaImage {
    /// Generation tag of the delta.
    pub generation: u64,
    /// Rows in append order.
    pub rows: Vec<RowImage>,
}

/// One column's persisted zone map: a `(min, max, has_nulls)` span for the
/// whole part plus one per 16Ki-row chunk, in code space. Persisted so
/// recovery reloads pruning metadata instead of recomputing it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ZoneImage {
    /// Whole-part span.
    pub part: (u32, u32, bool),
    /// Chunk spans in row order.
    pub chunks: Vec<(u32, u32, bool)>,
}

/// One main part's columnar image.
#[derive(Debug, Clone, PartialEq)]
pub struct PartImage {
    /// Part generation.
    pub generation: u64,
    /// Per column: `(dictionary values in code order, base, global codes)`.
    pub columns: Vec<(Vec<Value>, u32, Vec<u32>)>,
    /// Per column zone maps (parallel to `columns`).
    pub zones: Vec<ZoneImage>,
    /// Row ids.
    pub row_ids: Vec<RowId>,
    /// Begin stamps (committed).
    pub begins: Vec<Timestamp>,
    /// End stamps (possibly marks).
    pub ends: Vec<Timestamp>,
}

/// Full savepoint image of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableImage {
    /// Catalog id.
    pub table_id: u32,
    /// Schema (name + columns).
    pub schema: Schema,
    /// Lifecycle configuration.
    pub config: TableConfig,
    /// Next row id to assign.
    pub next_row_id: u64,
    /// Next structure generation to assign.
    pub next_generation: u64,
    /// L1-delta rows in logical order.
    pub l1_rows: Vec<RowImage>,
    /// The open L2-delta.
    pub l2: DeltaImage,
    /// Main chain images.
    pub main_parts: Vec<PartImage>,
    /// Leading passive parts in the chain.
    pub passive_count: usize,
    /// Archived history versions (historic tables).
    pub history: Vec<RowImage>,
}

fn encode_row(e: &mut Encoder, r: &RowImage) {
    e.u64(r.row_id.0);
    e.u64(r.begin);
    e.u64(r.end);
    e.u32(r.values.len() as u32);
    for v in &r.values {
        e.value(v);
    }
}

fn decode_row(d: &mut Decoder<'_>) -> Result<RowImage> {
    let row_id = RowId(d.u64()?);
    let begin = d.u64()?;
    let end = d.u64()?;
    let n = d.u32()? as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(d.value()?);
    }
    Ok(RowImage {
        row_id,
        begin,
        end,
        values,
    })
}

fn encode_zone_entry(e: &mut Encoder, (min, max, has_nulls): (u32, u32, bool)) {
    e.u32(min);
    e.u32(max);
    e.bool(has_nulls);
}

fn decode_zone_entry(d: &mut Decoder<'_>) -> Result<(u32, u32, bool)> {
    Ok((d.u32()?, d.u32()?, d.bool()?))
}

fn encode_rows(e: &mut Encoder, rows: &[RowImage]) {
    e.u32(rows.len() as u32);
    for r in rows {
        encode_row(e, r);
    }
}

fn decode_rows(d: &mut Decoder<'_>) -> Result<Vec<RowImage>> {
    let n = d.u32()? as usize;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(decode_row(d)?);
    }
    Ok(rows)
}

/// Serialize a schema (shared with the CreateTable log record).
pub fn encode_schema(e: &mut Encoder, s: &Schema) {
    e.str(&s.name);
    e.u16(s.arity() as u16);
    for c in s.columns() {
        e.str(&c.name);
        e.data_type(c.data_type);
        e.bool(c.nullable);
        e.bool(c.unique);
    }
}

pub fn decode_schema(d: &mut Decoder<'_>) -> Result<Schema> {
    let name = d.str()?;
    let n = d.u16()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let cname = d.str()?;
        let ty = d.data_type()?;
        let nullable = d.bool()?;
        let unique = d.bool()?;
        cols.push(ColumnDef {
            name: cname,
            data_type: ty,
            nullable,
            unique,
        });
    }
    Schema::new(name, cols)
}

pub fn encode_config(e: &mut Encoder, c: &TableConfig) {
    e.u64(c.l1_max_rows as u64);
    e.u64(c.l2_max_rows as u64);
    e.u8(match c.merge_strategy {
        MergeStrategy::Classic => 0,
        MergeStrategy::ReSorting => 1,
        MergeStrategy::Partial => 2,
        MergeStrategy::Auto => 3,
    });
    e.f64(c.active_main_max_fraction);
    e.u64(c.block_size as u64);
    e.bool(c.historic);
    e.u64(c.merge.column_parallelism as u64);
    e.u64(c.merge.daemon_workers as u64);
    e.u64(c.scan.scan_parallelism as u64);
    match &c.partition {
        None => e.bool(false),
        Some(p) => {
            e.bool(true);
            e.str(&p.group);
            e.u32(p.hash_column);
            e.u32(p.index);
            e.u32(p.of);
        }
    }
}

pub fn decode_config(d: &mut Decoder<'_>) -> Result<TableConfig> {
    let l1_max_rows = d.u64()? as usize;
    let l2_max_rows = d.u64()? as usize;
    let merge_strategy = match d.u8()? {
        0 => MergeStrategy::Classic,
        1 => MergeStrategy::ReSorting,
        2 => MergeStrategy::Partial,
        _ => MergeStrategy::Auto,
    };
    let active_main_max_fraction = d.f64()?;
    let block_size = d.u64()? as usize;
    let historic = d.bool()?;
    let merge = hana_common::MergeConfig {
        column_parallelism: d.u64()? as usize,
        daemon_workers: d.u64()? as usize,
        // Benchmark-only knob; never persisted, always off after recovery.
        legacy_blocking_publication: false,
    };
    let scan = hana_common::ScanConfig {
        scan_parallelism: d.u64()? as usize,
    };
    let partition = if d.bool()? {
        Some(hana_common::PartitionSpec {
            group: d.str()?,
            hash_column: d.u32()?,
            index: d.u32()?,
            of: d.u32()?,
        })
    } else {
        None
    };
    Ok(TableConfig {
        l1_max_rows,
        l2_max_rows,
        merge_strategy,
        active_main_max_fraction,
        block_size,
        historic,
        merge,
        scan,
        partition,
    })
}

impl TableImage {
    /// Serialize the whole image.
    pub fn encode(&self, e: &mut Encoder) {
        e.u32(self.table_id);
        encode_schema(e, &self.schema);
        encode_config(e, &self.config);
        e.u64(self.next_row_id);
        e.u64(self.next_generation);
        encode_rows(e, &self.l1_rows);
        e.u64(self.l2.generation);
        encode_rows(e, &self.l2.rows);
        e.u32(self.main_parts.len() as u32);
        for p in &self.main_parts {
            e.u64(p.generation);
            e.u16(p.columns.len() as u16);
            for (dict_vals, base, codes) in &p.columns {
                e.u32(dict_vals.len() as u32);
                for v in dict_vals {
                    e.value(v);
                }
                e.u32(*base);
                e.u32(codes.len() as u32);
                for &c in codes {
                    e.u32(c);
                }
            }
            e.u16(p.zones.len() as u16);
            for z in &p.zones {
                encode_zone_entry(e, z.part);
                e.u32(z.chunks.len() as u32);
                for &c in &z.chunks {
                    encode_zone_entry(e, c);
                }
            }
            e.u32(p.row_ids.len() as u32);
            for (i, id) in p.row_ids.iter().enumerate() {
                e.u64(id.0);
                e.u64(p.begins[i]);
                e.u64(p.ends[i]);
            }
        }
        e.u32(self.passive_count as u32);
        encode_rows(e, &self.history);
    }

    /// Deserialize one image.
    pub fn decode(d: &mut Decoder<'_>) -> Result<TableImage> {
        let table_id = d.u32()?;
        let schema = decode_schema(d)?;
        let config = decode_config(d)?;
        let next_row_id = d.u64()?;
        let next_generation = d.u64()?;
        let l1_rows = decode_rows(d)?;
        let l2_generation = d.u64()?;
        let l2_rows = decode_rows(d)?;
        let n_parts = d.u32()? as usize;
        let mut main_parts = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            let generation = d.u64()?;
            let n_cols = d.u16()? as usize;
            let mut columns = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let nd = d.u32()? as usize;
                let mut dict_vals = Vec::with_capacity(nd);
                for _ in 0..nd {
                    dict_vals.push(d.value()?);
                }
                let base = d.u32()?;
                let nc = d.u32()? as usize;
                let mut codes = Vec::with_capacity(nc);
                for _ in 0..nc {
                    codes.push(d.u32()?);
                }
                columns.push((dict_vals, base, codes));
            }
            let n_zones = d.u16()? as usize;
            let mut zones = Vec::with_capacity(n_zones);
            for _ in 0..n_zones {
                let part = decode_zone_entry(d)?;
                let n_chunks = d.u32()? as usize;
                let mut chunks = Vec::with_capacity(n_chunks);
                for _ in 0..n_chunks {
                    chunks.push(decode_zone_entry(d)?);
                }
                zones.push(ZoneImage { part, chunks });
            }
            let n_rows = d.u32()? as usize;
            let mut row_ids = Vec::with_capacity(n_rows);
            let mut begins = Vec::with_capacity(n_rows);
            let mut ends = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                row_ids.push(RowId(d.u64()?));
                begins.push(d.u64()?);
                ends.push(d.u64()?);
            }
            main_parts.push(PartImage {
                generation,
                columns,
                zones,
                row_ids,
                begins,
                ends,
            });
        }
        let passive_count = d.u32()? as usize;
        let history = decode_rows(d)?;
        Ok(TableImage {
            table_id,
            schema,
            config,
            next_row_id,
            next_generation,
            l1_rows,
            l2: DeltaImage {
                generation: l2_generation,
                rows: l2_rows,
            },
            main_parts,
            passive_count,
            history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::DataType;

    fn sample() -> TableImage {
        let schema = Schema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("city", DataType::Str),
            ],
        )
        .unwrap();
        TableImage {
            table_id: 7,
            schema,
            config: TableConfig::small().with_history(),
            next_row_id: 42,
            next_generation: 3,
            l1_rows: vec![RowImage {
                row_id: RowId(40),
                begin: 10,
                end: u64::MAX,
                values: vec![Value::Int(1), Value::str("a")],
            }],
            l2: DeltaImage {
                generation: 2,
                rows: vec![
                    RowImage {
                        row_id: RowId(38),
                        begin: 8,
                        end: u64::MAX,
                        values: vec![Value::Int(2), Value::str("b")],
                    },
                    RowImage {
                        row_id: RowId(39),
                        begin: 9,
                        end: 11,
                        values: vec![Value::Int(3), Value::Null],
                    },
                ],
            },
            main_parts: vec![PartImage {
                generation: 1,
                columns: vec![
                    (vec![Value::Int(5), Value::Int(9)], 0, vec![0, 1]),
                    (vec![Value::str("x")], 0, vec![0, 1]), // code 1 = NULL
                ],
                zones: vec![
                    ZoneImage {
                        part: (0, 1, false),
                        chunks: vec![(0, 1, false)],
                    },
                    ZoneImage {
                        part: (0, 0, true),
                        chunks: vec![(0, 0, true)],
                    },
                ],
                row_ids: vec![RowId(1), RowId(2)],
                begins: vec![3, 4],
                ends: vec![u64::MAX, u64::MAX],
            }],
            passive_count: 1,
            history: vec![RowImage {
                row_id: RowId(0),
                begin: 1,
                end: 2,
                values: vec![Value::Int(0), Value::str("old")],
            }],
        }
    }

    #[test]
    fn image_round_trip() {
        let img = sample();
        let mut e = Encoder::new();
        img.encode(&mut e);
        let bytes = e.into_bytes();
        let got = TableImage::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(got, img);
    }

    #[test]
    fn empty_table_image_round_trip() {
        let schema = Schema::new("t", vec![ColumnDef::new("x", DataType::Int)]).unwrap();
        let img = TableImage {
            table_id: 0,
            schema,
            config: TableConfig::default(),
            next_row_id: 0,
            next_generation: 1,
            l1_rows: vec![],
            l2: DeltaImage::default(),
            main_parts: vec![],
            passive_count: 0,
            history: vec![],
        };
        let mut e = Encoder::new();
        img.encode(&mut e);
        let bytes = e.into_bytes();
        assert_eq!(TableImage::decode(&mut Decoder::new(&bytes)).unwrap(), img);
    }

    #[test]
    fn partition_spec_rides_the_config_codec() {
        let mut img = sample();
        img.config.partition = Some(hana_common::PartitionSpec {
            group: "sales".into(),
            hash_column: 0,
            index: 3,
            of: 8,
        });
        let mut e = Encoder::new();
        img.encode(&mut e);
        let bytes = e.into_bytes();
        let got = TableImage::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(got, img);
        assert_eq!(got.config.partition.unwrap().of, 8);
    }

    #[test]
    fn truncated_image_errors() {
        let img = sample();
        let mut e = Encoder::new();
        img.encode(&mut e);
        let bytes = e.into_bytes();
        assert!(TableImage::decode(&mut Decoder::new(&bytes[..bytes.len() / 2])).is_err());
    }
}
