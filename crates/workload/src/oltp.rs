//! The OLTP transaction mix.
//!
//! ERP-style operations against the sales fact table: new-order inserts,
//! payment-style updates of a Zipf-hot key, order cancellations, and very
//! selective point queries — "thousands of concurrent users and
//! transactions with high update load and very selective point queries".
//! The driver runs against either engine through the [`OltpEngine`] trait,
//! so the unified table and the row baseline execute the *same* op stream.

use crate::datagen::DataGen;
use crate::sales::{fact_cols, SalesSchema};
use crate::zipf::Zipf;
use hana_common::{ColumnId, HanaError, Result, Value};
use hana_core::{Database, PartitionedTable, UnifiedTable};
use hana_rowstore::RowTable;
use hana_txn::{IsolationLevel, TxnManager};
use rand::Rng;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// One OLTP operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OltpOp {
    /// Insert a fresh order.
    NewOrder(Vec<Value>),
    /// Mark an order paid and bump its amount.
    Payment {
        /// Target order id.
        order_id: i64,
        /// Amount delta.
        delta: i64,
    },
    /// Point lookup by order id.
    Lookup(i64),
    /// Cancel (delete) an order.
    Cancel(i64),
}

/// Outcome counters of a driver run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OltpReport {
    /// Successfully committed operations.
    pub committed: u64,
    /// Operations aborted on write conflicts (retryable).
    pub conflicts: u64,
    /// Lookups that found their row.
    pub hits: u64,
    /// Lookups that found nothing (e.g. cancelled orders).
    pub misses: u64,
}

/// An engine that can execute the OLTP mix.
pub trait OltpEngine: Send + Sync {
    /// Run one op in its own transaction; `Ok(found)` for lookups.
    fn execute(&self, op: &OltpOp) -> Result<bool>;
}

/// Unified-table implementation.
pub struct UnifiedOltp {
    /// The fact table.
    pub table: Arc<UnifiedTable>,
    /// Shared transaction manager.
    pub mgr: Arc<TxnManager>,
}

impl OltpEngine for UnifiedOltp {
    fn execute(&self, op: &OltpOp) -> Result<bool> {
        let mut txn = self.mgr.begin(IsolationLevel::Transaction);
        let key_col = ColumnId(fact_cols::ORDER_ID as u16);
        let out = match op {
            OltpOp::NewOrder(row) => self.table.insert(&txn, row.clone()).map(|_| true),
            OltpOp::Payment { order_id, delta } => {
                let read = self.table.read(&txn);
                let rows = read.point(fact_cols::ORDER_ID, &Value::Int(*order_id))?;
                match rows.first() {
                    None => Err(HanaError::NotFound(format!("order {order_id}"))),
                    Some(row) => {
                        let amount = row[fact_cols::AMOUNT].as_int().unwrap_or(0) + delta;
                        self.table
                            .update_where(
                                &txn,
                                key_col,
                                &Value::Int(*order_id),
                                &[
                                    (ColumnId(fact_cols::AMOUNT as u16), Value::Int(amount)),
                                    (ColumnId(fact_cols::STATUS as u16), Value::Int(1)),
                                ],
                            )
                            .map(|_| true)
                    }
                }
            }
            OltpOp::Lookup(id) => {
                let read = self.table.read(&txn);
                Ok(!read
                    .point(fact_cols::ORDER_ID, &Value::Int(*id))?
                    .is_empty())
            }
            OltpOp::Cancel(id) => self
                .table
                .delete_where(&txn, key_col, &Value::Int(*id))
                .map(|_| true),
        };
        match out {
            Ok(found) => {
                txn.commit()?;
                self.table.finish_txn(txn.id());
                Ok(found)
            }
            Err(e) => {
                let _ = txn.abort();
                self.table.finish_txn(txn.id());
                Err(e)
            }
        }
    }
}

/// Unified-table implementation that commits through the database façade,
/// so commit records go through the group-commit pipeline and each
/// `execute` returns only once its transaction is durable (when the
/// database is). This is the engine the fig-10 group-commit experiment
/// drives from many writer threads.
pub struct DurableOltp {
    /// The database owning `table` (routes commit/abort + lock release).
    pub db: Arc<Database>,
    /// The fact table.
    pub table: Arc<UnifiedTable>,
}

impl OltpEngine for DurableOltp {
    fn execute(&self, op: &OltpOp) -> Result<bool> {
        let mut txn = self.db.begin(IsolationLevel::Transaction);
        let key_col = ColumnId(fact_cols::ORDER_ID as u16);
        let out = match op {
            OltpOp::NewOrder(row) => self.table.insert(&txn, row.clone()).map(|_| true),
            OltpOp::Payment { order_id, delta } => {
                let read = self.table.read(&txn);
                let rows = read.point(fact_cols::ORDER_ID, &Value::Int(*order_id))?;
                match rows.first() {
                    None => Err(HanaError::NotFound(format!("order {order_id}"))),
                    Some(row) => {
                        let amount = row[fact_cols::AMOUNT].as_int().unwrap_or(0) + delta;
                        self.table
                            .update_where(
                                &txn,
                                key_col,
                                &Value::Int(*order_id),
                                &[
                                    (ColumnId(fact_cols::AMOUNT as u16), Value::Int(amount)),
                                    (ColumnId(fact_cols::STATUS as u16), Value::Int(1)),
                                ],
                            )
                            .map(|_| true)
                    }
                }
            }
            OltpOp::Lookup(id) => {
                let read = self.table.read(&txn);
                Ok(!read
                    .point(fact_cols::ORDER_ID, &Value::Int(*id))?
                    .is_empty())
            }
            OltpOp::Cancel(id) => self
                .table
                .delete_where(&txn, key_col, &Value::Int(*id))
                .map(|_| true),
        };
        match out {
            Ok(found) => {
                self.db.commit(&mut txn)?;
                Ok(found)
            }
            Err(e) => {
                let _ = self.db.abort(&mut txn);
                Err(e)
            }
        }
    }
}

/// Hash-partitioned unified-table implementation: every op routes through
/// the [`PartitionedTable`], touching only the shard its order id hashes
/// to, and commits through the database façade (group-commit pipeline).
/// This is the engine the fig-11 partition-scaling experiment drives.
pub struct PartitionedOltp {
    /// The database owning the partition group.
    pub db: Arc<Database>,
    /// The partitioned fact table.
    pub table: Arc<PartitionedTable>,
}

impl OltpEngine for PartitionedOltp {
    fn execute(&self, op: &OltpOp) -> Result<bool> {
        let mut txn = self.db.begin(IsolationLevel::Transaction);
        let out = match op {
            OltpOp::NewOrder(row) => self.table.insert(&txn, row.clone()).map(|_| true),
            OltpOp::Payment { order_id, delta } => {
                let key = Value::Int(*order_id);
                let rows = self.table.point(txn.read_snapshot(), &key)?;
                match rows.first() {
                    None => Err(HanaError::NotFound(format!("order {order_id}"))),
                    Some(row) => {
                        let amount = row[fact_cols::AMOUNT].as_int().unwrap_or(0) + delta;
                        self.table
                            .update_where(
                                &txn,
                                &key,
                                &[
                                    (ColumnId(fact_cols::AMOUNT as u16), Value::Int(amount)),
                                    (ColumnId(fact_cols::STATUS as u16), Value::Int(1)),
                                ],
                            )
                            .map(|_| true)
                    }
                }
            }
            OltpOp::Lookup(id) => Ok(!self
                .table
                .point(txn.read_snapshot(), &Value::Int(*id))?
                .is_empty()),
            OltpOp::Cancel(id) => self
                .table
                .delete_where(&txn, &Value::Int(*id))
                .map(|_| true),
        };
        match out {
            Ok(found) => {
                self.db.commit(&mut txn)?;
                Ok(found)
            }
            Err(e) => {
                let _ = self.db.abort(&mut txn);
                Err(e)
            }
        }
    }
}

/// Row-baseline implementation.
pub struct RowOltp {
    /// The baseline table.
    pub table: Arc<RowTable>,
    /// Shared transaction manager.
    pub mgr: Arc<TxnManager>,
}

impl OltpEngine for RowOltp {
    fn execute(&self, op: &OltpOp) -> Result<bool> {
        let mut txn = self.mgr.begin(IsolationLevel::Transaction);
        let out = match op {
            OltpOp::NewOrder(row) => self.table.insert(&txn, row.clone()).map(|_| true),
            OltpOp::Payment { order_id, delta } => {
                let key = Value::Int(*order_id);
                match self.table.get(&txn.read_snapshot(), &key)? {
                    None => Err(HanaError::NotFound(format!("order {order_id}"))),
                    Some(row) => {
                        let amount = row[fact_cols::AMOUNT].as_int().unwrap_or(0) + delta;
                        self.table
                            .update(
                                &txn,
                                &key,
                                ColumnId(fact_cols::AMOUNT as u16),
                                Value::Int(amount),
                            )
                            .and_then(|_| {
                                self.table.update(
                                    &txn,
                                    &key,
                                    ColumnId(fact_cols::STATUS as u16),
                                    Value::Int(1),
                                )
                            })
                            .map(|_| true)
                    }
                }
            }
            OltpOp::Lookup(id) => Ok(self
                .table
                .get(&txn.read_snapshot(), &Value::Int(*id))?
                .is_some()),
            OltpOp::Cancel(id) => self.table.delete(&txn, &Value::Int(*id)).map(|_| true),
        };
        match out {
            Ok(found) => {
                txn.commit()?;
                self.table.finish_txn(txn.id());
                Ok(found)
            }
            Err(e) => {
                let _ = txn.abort();
                self.table.finish_txn(txn.id());
                Err(e)
            }
        }
    }
}

/// Generates and executes the OLTP mix.
pub struct OltpDriver {
    zipf: Zipf,
    next_order: AtomicI64,
    n_customers: i64,
    n_products: i64,
    /// Percentages of (insert, payment, lookup, cancel); must sum to 100.
    mix: (u32, u32, u32, u32),
}

impl OltpDriver {
    /// A driver over `existing_orders` pre-loaded rows with the default mix
    /// (25% inserts, 35% payments, 35% lookups, 5% cancels) and skew `s`.
    pub fn new(existing_orders: i64, n_customers: i64, n_products: i64, skew: f64) -> Self {
        OltpDriver {
            zipf: Zipf::new(existing_orders.max(1) as usize, skew),
            next_order: AtomicI64::new(existing_orders),
            n_customers,
            n_products,
            mix: (25, 35, 35, 5),
        }
    }

    /// Override the operation mix (insert, payment, lookup, cancel), in
    /// percent.
    pub fn with_mix(mut self, mix: (u32, u32, u32, u32)) -> Self {
        assert_eq!(mix.0 + mix.1 + mix.2 + mix.3, 100);
        self.mix = mix;
        self
    }

    /// Generate the next operation.
    pub fn next_op(&self, gen: &mut DataGen) -> OltpOp {
        let roll = gen.rng().gen_range(0..100u32);
        let (i, p, l, _) = self.mix;
        if roll < i {
            let id = self.next_order.fetch_add(1, Ordering::SeqCst);
            OltpOp::NewOrder(SalesSchema::fact_row(
                gen,
                id,
                self.n_customers,
                self.n_products,
            ))
        } else if roll < i + p {
            OltpOp::Payment {
                order_id: self.zipf.sample(gen.rng()) as i64,
                delta: gen.amount(100),
            }
        } else if roll < i + p + l {
            OltpOp::Lookup(self.zipf.sample(gen.rng()) as i64)
        } else {
            OltpOp::Cancel(self.zipf.sample(gen.rng()) as i64)
        }
    }

    /// Execute `ops` operations against `engine`, counting outcomes.
    /// Conflicts and not-found (cancelled rows) are counted, not fatal.
    pub fn run(
        &self,
        engine: &dyn OltpEngine,
        gen: &mut DataGen,
        ops: usize,
    ) -> Result<OltpReport> {
        let mut report = OltpReport::default();
        for _ in 0..ops {
            let op = self.next_op(gen);
            match engine.execute(&op) {
                Ok(found) => {
                    report.committed += 1;
                    if matches!(op, OltpOp::Lookup(_)) {
                        if found {
                            report.hits += 1;
                        } else {
                            report.misses += 1;
                        }
                    }
                }
                Err(HanaError::WriteConflict(_)) => report.conflicts += 1,
                Err(HanaError::NotFound(_)) => report.misses += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Execute the mix from `threads` concurrent workers, `ops_per_thread`
    /// operations each (thread `k` seeds its generator with `seed + k`),
    /// and aggregate the per-thread reports. The shared `next_order`
    /// counter keeps inserted order ids disjoint across threads; conflicts
    /// on hot Zipf keys are counted, not fatal.
    pub fn run_concurrent(
        &self,
        engine: &dyn OltpEngine,
        threads: usize,
        ops_per_thread: usize,
        seed: u64,
    ) -> Result<OltpReport> {
        let reports = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|k| {
                    s.spawn(move || {
                        let mut gen = DataGen::new(seed + k as u64);
                        self.run(engine, &mut gen, ops_per_thread)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("oltp worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut total = OltpReport::default();
        for r in reports {
            let r = r?;
            total.committed += r.committed;
            total.conflicts += r.conflicts;
            total.hits += r.hits;
            total.misses += r.misses;
        }
        Ok(total)
    }

    /// Partitioned writer mode: thread `k` is pinned to partition
    /// `k % partitions` and claims order ids from the shared counter until
    /// one hashes to its partition, so every writer works a disjoint key
    /// block and its transactions touch exactly one shard. Payments,
    /// lookups and cancels target ids the thread itself inserted, keeping
    /// the streams conflict-free across partitions. Returns per-partition
    /// outcome counters alongside the aggregate, so benchmarks can report
    /// per-partition throughput.
    pub fn run_concurrent_partitioned(
        &self,
        engine: &PartitionedOltp,
        threads: usize,
        ops_per_thread: usize,
        seed: u64,
    ) -> Result<PartitionedOltpReport> {
        let nparts = engine.table.partition_count();
        let reports = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|k| {
                    s.spawn(move || {
                        let part = k % nparts;
                        let mut gen = DataGen::new(seed + k as u64);
                        let mut my_ids: Vec<i64> = Vec::new();
                        let mut report = OltpReport::default();
                        for _ in 0..ops_per_thread {
                            let roll = gen.rng().gen_range(0..100u32);
                            let (i, p, l, _) = self.mix;
                            let op = if roll < i || my_ids.is_empty() {
                                // Claim ids until one routes to our shard.
                                let id = loop {
                                    let id = self.next_order.fetch_add(1, Ordering::SeqCst);
                                    if engine.table.route_index(&Value::Int(id)) == part {
                                        break id;
                                    }
                                };
                                my_ids.push(id);
                                OltpOp::NewOrder(SalesSchema::fact_row(
                                    &mut gen,
                                    id,
                                    self.n_customers,
                                    self.n_products,
                                ))
                            } else {
                                let id = my_ids[gen.rng().gen_range(0..my_ids.len())];
                                if roll < i + p {
                                    OltpOp::Payment {
                                        order_id: id,
                                        delta: gen.amount(100),
                                    }
                                } else if roll < i + p + l {
                                    OltpOp::Lookup(id)
                                } else {
                                    OltpOp::Cancel(id)
                                }
                            };
                            match engine.execute(&op) {
                                Ok(found) => {
                                    report.committed += 1;
                                    if matches!(op, OltpOp::Lookup(_)) {
                                        if found {
                                            report.hits += 1;
                                        } else {
                                            report.misses += 1;
                                        }
                                    }
                                }
                                Err(HanaError::WriteConflict(_)) => report.conflicts += 1,
                                Err(HanaError::NotFound(_)) => report.misses += 1,
                                Err(e) => return Err(e),
                            }
                        }
                        Ok((part, report))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("oltp worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut out = PartitionedOltpReport {
            total: OltpReport::default(),
            per_partition: vec![OltpReport::default(); nparts],
        };
        for r in reports {
            let (part, r) = r?;
            out.total.committed += r.committed;
            out.total.conflicts += r.conflicts;
            out.total.hits += r.hits;
            out.total.misses += r.misses;
            let slot = &mut out.per_partition[part];
            slot.committed += r.committed;
            slot.conflicts += r.conflicts;
            slot.hits += r.hits;
            slot.misses += r.misses;
        }
        Ok(out)
    }
}

/// Outcome of a partitioned concurrent run: the aggregate plus one
/// [`OltpReport`] per partition (threads pinned to the same partition are
/// summed into its slot).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionedOltpReport {
    /// Aggregate over all writers.
    pub total: OltpReport,
    /// Outcome counters per partition index.
    pub per_partition: Vec<OltpReport>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales::SalesDataset;
    use hana_common::TableConfig;
    use hana_core::Database;

    #[test]
    fn mix_respects_ratios() {
        let driver = OltpDriver::new(1000, 100, 50, 0.8).with_mix((100, 0, 0, 0));
        let mut gen = DataGen::new(3);
        for _ in 0..50 {
            assert!(matches!(driver.next_op(&mut gen), OltpOp::NewOrder(_)));
        }
        let driver = OltpDriver::new(1000, 100, 50, 0.8).with_mix((0, 0, 100, 0));
        for _ in 0..50 {
            assert!(matches!(driver.next_op(&mut gen), OltpOp::Lookup(_)));
        }
    }

    #[test]
    fn unified_engine_executes_mix() {
        let db = Database::in_memory();
        let ds = SalesDataset::load(&db, TableConfig::small(), 300, 50, 20, 7).unwrap();
        let engine = UnifiedOltp {
            table: Arc::clone(&ds.sales),
            mgr: Arc::clone(db.txn_manager()),
        };
        let driver = OltpDriver::new(300, 50, 20, 0.9);
        let mut gen = DataGen::new(11);
        let report = driver.run(&engine, &mut gen, 400).unwrap();
        assert!(report.committed > 300, "{report:?}");
        // Some rows were updated: status 1 must exist.
        let r = db.begin(IsolationLevel::Transaction);
        let paid = ds
            .sales
            .read(&r)
            .point(fact_cols::STATUS, &Value::Int(1))
            .unwrap();
        assert!(!paid.is_empty());
    }

    #[test]
    fn row_engine_executes_same_stream() {
        let mgr = TxnManager::new();
        let table =
            Arc::new(crate::sales::load_row_baseline(Arc::clone(&mgr), 300, 50, 20, 7).unwrap());
        let engine = RowOltp { table, mgr };
        let driver = OltpDriver::new(300, 50, 20, 0.9);
        let mut gen = DataGen::new(11);
        let report = driver.run(&engine, &mut gen, 400).unwrap();
        assert!(report.committed > 300, "{report:?}");
    }

    #[test]
    fn durable_engine_commits_concurrently_through_group_pipeline() {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::open(dir.path()).unwrap();
        // A generous gather window makes batch formation deterministic even
        // on filesystems where fsync is nearly free.
        db.set_commit_config(hana_common::CommitConfig::default().with_max_wait_us(2000));
        let ds = SalesDataset::load(&db, TableConfig::small(), 200, 50, 20, 7).unwrap();
        let engine = DurableOltp {
            db: Arc::clone(&db),
            table: Arc::clone(&ds.sales),
        };
        let driver = OltpDriver::new(200, 50, 20, 0.9);
        let report = driver.run_concurrent(&engine, 4, 60, 11).unwrap();
        assert!(report.committed > 150, "{report:?}");
        let stats = db.log_stats().unwrap();
        assert!(stats.records >= report.committed, "{stats:?}");
        // Group commit must have amortized fsyncs across the 4 writers.
        assert!(stats.fsyncs < stats.records, "{stats:?}");
    }

    #[test]
    fn partitioned_engine_reports_per_partition_and_routes_disjoint_blocks() {
        let db = Database::in_memory();
        let pt = db
            .create_partitioned_table(
                SalesSchema::fact(),
                TableConfig::small(),
                hana_common::PartitionConfig::new(4, fact_cols::ORDER_ID),
            )
            .unwrap();
        let engine = PartitionedOltp {
            db: Arc::clone(&db),
            table: Arc::clone(&pt),
        };
        let driver = OltpDriver::new(0, 50, 20, 0.9).with_mix((50, 30, 15, 5));
        let report = driver
            .run_concurrent_partitioned(&engine, 4, 80, 9)
            .unwrap();
        assert_eq!(report.per_partition.len(), 4);
        assert_eq!(
            report
                .per_partition
                .iter()
                .map(|r| r.committed)
                .sum::<u64>(),
            report.total.committed
        );
        assert!(report.total.committed > 200, "{report:?}");
        // Each writer was pinned to one partition, so every partition
        // committed work and each shard holds only ids that hash to it.
        let r = db.begin(IsolationLevel::Transaction);
        let snap = r.read_snapshot();
        for (i, part) in pt.partitions().iter().enumerate() {
            assert!(report.per_partition[i].committed > 0, "{report:?}");
            for row in part.read_at(snap).collect_rows() {
                assert_eq!(pt.route_index(&row.values[fact_cols::ORDER_ID]), i);
            }
        }
    }

    #[test]
    fn both_engines_agree_on_lookup_hits() {
        // Same seed ⇒ same op stream ⇒ same hit/miss pattern (no cancels to
        // avoid timing-dependent misses, no payments to avoid different
        // conflict handling).
        let db = Database::in_memory();
        let ds = SalesDataset::load(&db, TableConfig::small(), 200, 50, 20, 7).unwrap();
        let unified = UnifiedOltp {
            table: Arc::clone(&ds.sales),
            mgr: Arc::clone(db.txn_manager()),
        };
        let mgr2 = TxnManager::new();
        let row = RowOltp {
            table: Arc::new(
                crate::sales::load_row_baseline(Arc::clone(&mgr2), 200, 50, 20, 7).unwrap(),
            ),
            mgr: mgr2,
        };
        let driver = OltpDriver::new(200, 50, 20, 0.5).with_mix((0, 0, 100, 0));
        let mut g1 = DataGen::new(5);
        let mut g2 = DataGen::new(5);
        let r1 = driver.run(&unified, &mut g1, 200).unwrap();
        let r2 = driver.run(&row, &mut g2, 200).unwrap();
        assert_eq!(r1.hits, r2.hits);
        assert_eq!(r1.hits, 200); // all ids exist
    }
}
