//! Property tests pinning the word-parallel scan kernels to the scalar
//! reference.
//!
//! The SWAR / `std::arch` paths in `hana_column::bitpack` are only allowed
//! to be *faster* than the per-row loop, never different: every property
//! here generates random widths (1..=32 bits, covering the packed-SWAR
//! divisor widths and the straddling unpack widths), random code data with
//! an in-domain NULL sentinel, random predicate shapes (Eq / Range / In /
//! IsNull / multi-range), and non-word-aligned windows, then demands
//! bit-identical hit bitmaps. The bitmap word-wise combinators used by the
//! visibility-AND step are pinned to per-bit references the same way.

use hana_column::{bits_for, BitPackedVec, Bitmap, Cluster, CodeFilter, CodeMatcher};
use proptest::prelude::*;

/// Mask raw u32s down to a `bits`-wide code domain.
fn codes_for_width(raw: &[u32], bits: u8) -> Vec<u32> {
    let mask = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    raw.iter().map(|&r| r & mask).collect()
}

fn lane_max(bits: u8) -> u32 {
    if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    }
}

/// Build a matcher of the given shape from three random seeds, keeping all
/// codes inside the width's domain.
fn matcher_for(shape: u8, a: u32, b: u32, null: u32, bits: u8) -> CodeMatcher {
    let max = lane_max(bits);
    let (a, b) = (a & max, b & max);
    let (lo, hi) = (a.min(b), a.max(b));
    let filter = match shape % 5 {
        0 => CodeFilter::eq(lo),
        1 => CodeFilter::range(lo..hi.max(lo) + 1),
        2 => CodeFilter::set(vec![lo, hi, (lo ^ hi) & max]),
        3 => return CodeMatcher::is_null(null),
        _ => CodeFilter::ranges(vec![0..lo.max(1), hi..max.max(hi)]),
    };
    CodeMatcher::new(filter, null)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Word-parallel `filter_range` ≡ scalar reference, across widths,
    /// predicate shapes, null sentinels and unaligned windows.
    #[test]
    fn packed_filter_kernels_match_scalar(
        bits in 1u8..33,
        raw in prop::collection::vec(any::<u32>(), 1..700),
        a in any::<u32>(),
        b in any::<u32>(),
        null_seed in any::<u32>(),
        shape in 0u8..5,
        win in (any::<u32>(), any::<u32>()),
    ) {
        let codes = codes_for_width(&raw, bits);
        let v = BitPackedVec::from_codes_with_bits(&codes, bits);
        let null = null_seed & lane_max(bits);
        let m = matcher_for(shape, a, b, null, bits);
        let n = codes.len();
        let start = win.0 as usize % (n + 1);
        let end = start + win.1 as usize % (n - start + 1);

        let mut want = Bitmap::zeros(end - start);
        v.filter_range_scalar(start, end, &m, &mut want);
        let mut got = Bitmap::zeros(end - start);
        v.filter_range(start, end, &m, &mut got);

        prop_assert_eq!(got.count_ones(), want.count_ones());
        for k in 0..end - start {
            prop_assert_eq!(got.get(k), want.get(k), "bit {} of [{},{}) bits={}", k, start, end, bits);
        }
    }

    /// Streaming `unpack_block` ≡ per-row `get` on arbitrary windows.
    #[test]
    fn unpack_block_matches_get(
        bits in 1u8..33,
        raw in prop::collection::vec(any::<u32>(), 1..600),
        win in (any::<u32>(), any::<u32>()),
    ) {
        let codes = codes_for_width(&raw, bits);
        let v = BitPackedVec::from_codes_with_bits(&codes, bits);
        let n = codes.len();
        let start = win.0 as usize % (n + 1);
        let len = win.1 as usize % (n - start + 1);
        let mut out = vec![0u32; len];
        v.unpack_block(start, &mut out);
        for (k, &c) in out.iter().enumerate() {
            prop_assert_eq!(c, v.get(start + k), "row {} of [{};{}) bits={}", k, start, len, bits);
        }
    }

    /// Bulk packing (`extend_from_codes`) ≡ per-row `push`.
    #[test]
    fn bulk_pack_matches_push(
        bits in 1u8..33,
        raw in prop::collection::vec(any::<u32>(), 0..400),
        split_seed in any::<u32>(),
    ) {
        let codes = codes_for_width(&raw, bits);
        let split = split_seed as usize % (codes.len() + 1);
        let mut bulk = BitPackedVec::new(bits);
        for &c in &codes[..split] {
            bulk.push(c);
        }
        bulk.extend_from_codes(&codes[split..]);
        prop_assert_eq!(bulk.len(), codes.len());
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(bulk.get(i), c, "row {}", i);
        }
    }

    /// Cluster blocks route through the same kernels: cluster `filter_range`
    /// ≡ the bit-packed scalar reference on identical data.
    #[test]
    fn cluster_filter_matches_scalar(
        bits in 1u8..17,
        raw in prop::collection::vec(any::<u32>(), 1..600),
        a in any::<u32>(),
        b in any::<u32>(),
        null_seed in any::<u32>(),
        shape in 0u8..5,
        block_size in 2usize..100,
    ) {
        // Local clustering so some blocks collapse to single-valued.
        let codes: Vec<u32> = codes_for_width(&raw, bits)
            .chunks(7)
            .flat_map(|ch| std::iter::repeat_n(ch[0], ch.len()))
            .collect();
        let packed = BitPackedVec::from_codes_with_bits(&codes, bits);
        let cluster = Cluster::from_codes(&codes, block_size);
        let null = null_seed & lane_max(bits);
        let m = matcher_for(shape, a, b, null, bits);
        let n = codes.len();

        let mut want = Bitmap::zeros(n);
        packed.filter_range_scalar(0, n, &m, &mut want);
        let mut got = Bitmap::zeros(n);
        cluster.filter_range(0, n, &m, &mut got);
        prop_assert_eq!(got.count_ones(), want.count_ones());
        for k in 0..n {
            prop_assert_eq!(got.get(k), want.get(k), "bit {}", k);
        }
    }

    /// Word-wise bitmap AND (with window offset) ≡ per-bit reference, and
    /// the cached popcount stays exact.
    #[test]
    fn bitmap_and_offset_matches_per_bit(
        hit_bits in prop::collection::vec(any::<bool>(), 1..300),
        vis_bits in prop::collection::vec(any::<bool>(), 1..500),
        offset in 0usize..520,
    ) {
        let mut hits = Bitmap::new();
        for &b in &hit_bits {
            hits.push(b);
        }
        let mut vis = Bitmap::new();
        for &b in &vis_bits {
            vis.push(b);
        }
        let mut want = hits.clone();
        for k in 0..hit_bits.len() {
            if !vis.get(offset + k) {
                want.clear(k);
            }
        }
        hits.and_offset(&vis, offset);
        prop_assert_eq!(hits.count_ones(), want.count_ones());
        let popcount = (0..hit_bits.len()).filter(|&k| hits.get(k)).count();
        prop_assert_eq!(hits.count_ones(), popcount, "cached ones != popcount");
        for k in 0..hit_bits.len() {
            prop_assert_eq!(hits.get(k), want.get(k), "bit {} offset {}", k, offset);
        }
    }

    /// `or_word` emission ≡ per-bit sets, including double-set overlap.
    #[test]
    fn bitmap_or_word_matches_per_bit(
        pre in prop::collection::vec(any::<bool>(), 1..200),
        word in any::<u64>(),
        start in 0usize..150,
        nbits in 1usize..65,
    ) {
        let mut a = Bitmap::new();
        for &b in &pre {
            a.push(b);
        }
        let mut want = a.clone();
        for k in 0..nbits {
            if word >> k & 1 == 1 {
                want.set(start + k);
            }
        }
        a.or_word(start, word, nbits);
        prop_assert_eq!(a.count_ones(), want.count_ones());
        for k in 0..start + nbits + 4 {
            prop_assert_eq!(a.get(k), want.get(k), "bit {}", k);
        }
    }

    /// `from_codes` width choice stays minimal and lossless under repack.
    #[test]
    fn repack_after_widening_is_lossless(
        raw in prop::collection::vec(any::<u32>(), 1..300),
        extra in 1u32..1000,
    ) {
        let codes = codes_for_width(&raw, 10);
        let v = BitPackedVec::from_codes(&codes);
        let top = codes.iter().copied().max().unwrap_or(0);
        // Shift every code up by `extra` — forces a wider repack.
        let map: Vec<u32> = (0..=top).map(|c| c + extra).collect();
        let w = v.repack(&map, bits_for(top + extra));
        prop_assert_eq!(w.len(), v.len());
        for (i, &c) in codes.iter().enumerate() {
            prop_assert_eq!(w.get(i), c + extra, "row {}", i);
        }
    }
}
