//! The classic delta-to-main merge (§4.1, Fig 7).
//!
//! Phase 1 merges each column's dictionaries into a new sorted dictionary
//! with the two position-mapping tables (including the paper's subset/append
//! fast paths, see [`hana_dict::merge`]). Phase 2 builds the new value
//! index: old main codes are recoded through the mapping table "with the
//! same or an increased number of bits", and the L2-delta's entries are
//! appended at the end. The result is a single-part [`MainStore`].

use crate::parallel::{effective_workers, map_indexed};
use crate::survivors::{collect_survivors, survivor_value, MergeInput, Origin, SurvivorSet};
use hana_common::{Result, RowId, Value};
use hana_dict::merge::{merge_dicts_filtered, DROPPED};
use hana_dict::{Code, MergeKind, SortedDict};
use hana_store::{HistoryStore, L2Delta, MainColumnData, MainPart, MainStore};
use hana_txn::TxnManager;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Lightweight per-merge measurements, carried on every
/// [`DeltaMergeOutcome`] and aggregated by the merge daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeMetrics {
    /// Wall-clock time of the merge (survivor analysis through assembly).
    pub duration: Duration,
    /// Rows entering the merge (old main + physical L2 rows).
    pub rows_in: usize,
    /// Surviving rows written to the new structure.
    pub rows_out: usize,
    /// Columns rebuilt by this merge.
    pub columns: usize,
    /// Worker threads the per-column fan-out ran with (1 = serial path).
    pub parallel_workers: usize,
}

/// Result of a delta-to-main merge.
pub struct DeltaMergeOutcome {
    /// The replacement main chain.
    pub new_main: MainStore,
    /// Surviving rows that came from the old main.
    pub from_main: usize,
    /// Surviving rows that came from the L2-delta.
    pub from_l2: usize,
    /// Row ids of versions discarded (garbage or aborted).
    pub dropped: Vec<RowId>,
    /// Which dictionary-merge path each column took (classic merge of a
    /// single-part main only; `General` otherwise).
    pub dict_paths: Vec<MergeKind>,
    /// Timing and shape of this merge.
    pub metrics: MergeMetrics,
}

impl std::fmt::Debug for DeltaMergeOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaMergeOutcome")
            .field("rows", &self.new_main.total_rows())
            .field("parts", &self.new_main.parts().len())
            .field("from_main", &self.from_main)
            .field("from_l2", &self.from_l2)
            .field("dropped", &self.dropped.len())
            .field("dict_paths", &self.dict_paths)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl MergeMetrics {
    /// Assemble the metrics of a merge that started at `started`.
    pub(crate) fn measure(
        rows_in: usize,
        rows_out: usize,
        columns: usize,
        workers: usize,
        started: Instant,
    ) -> Self {
        MergeMetrics {
            duration: started.elapsed(),
            rows_in,
            rows_out,
            columns,
            parallel_workers: workers,
        }
    }
}

/// Dictionaries + uncompressed global code matrix for the new structure,
/// shared between the classic and re-sorting merges.
pub(crate) struct MergedColumns {
    pub dicts: Vec<SortedDict>,
    /// `codes[col][row]`, NULL encoded as `dicts[col].len()`.
    pub codes: Vec<Vec<Code>>,
    pub paths: Vec<MergeKind>,
    /// Worker threads the fan-out actually ran with.
    pub workers: usize,
}

/// Build merged dictionaries and recoded value vectors for all columns,
/// fanning the per-column work out over `input.parallel` workers.
pub(crate) fn build_merged_columns(
    input: &MergeInput<'_>,
    survivors: &SurvivorSet,
) -> MergedColumns {
    let arity = input.l2.schema().arity();
    let single_part = input.main.parts().len() <= 1;
    let workers = effective_workers(input.parallel).min(arity.max(1));
    let merged = map_indexed(arity, workers, |col| {
        if single_part {
            merge_one_column_fast(input, survivors, col)
        } else {
            merge_one_column_general(input, survivors, col)
        }
    });
    let mut dicts = Vec::with_capacity(arity);
    let mut codes = Vec::with_capacity(arity);
    let mut paths = Vec::with_capacity(arity);
    for (d, c, k) in merged {
        dicts.push(d);
        codes.push(c);
        paths.push(k);
    }
    MergedColumns {
        dicts,
        codes,
        paths,
        workers,
    }
}

/// Fig-7 path: one old main part (or none) ⇒ dictionary merge with mapping
/// tables and code translation, no value materialization.
fn merge_one_column_fast(
    input: &MergeInput<'_>,
    survivors: &SurvivorSet,
    col: usize,
) -> (SortedDict, Vec<Code>, MergeKind) {
    let empty = SortedDict::empty();
    let part = input.main.parts().first();
    let main_dict = part.map(|p| p.dict(col)).unwrap_or(&empty);
    let main_null = main_dict.len() as Code;

    // Liveness flags per dictionary code.
    let mut main_used = vec![false; main_dict.len()];
    let fence = input.l2.published_len();
    let (l2_used, l2_row_codes) = input.l2.with_column(col, fence, |dict, l2_codes| {
        (vec![false; dict.len()], l2_codes.to_vec())
    });
    let mut l2_used = l2_used;
    for row in &survivors.rows {
        match row.origin {
            Origin::Main(hit) => {
                let c = part
                    .expect("main origin implies a part")
                    .code_at(hit.pos, col);
                if c < main_null {
                    main_used[c as usize] = true;
                }
            }
            Origin::L2(pos) => {
                let c = l2_row_codes[pos as usize];
                if c != hana_store::L2_NULL_CODE {
                    l2_used[c as usize] = true;
                }
            }
        }
    }

    let merged = input.l2.with_column(col, fence, |dict, _| {
        merge_dicts_filtered(main_dict, Some(&main_used), dict, Some(&l2_used))
    });
    let new_null = merged.dict.len() as Code;
    let new_codes: Vec<Code> = survivors
        .rows
        .iter()
        .map(|row| match row.origin {
            Origin::Main(hit) => {
                let c = part
                    .expect("main origin implies a part")
                    .code_at(hit.pos, col);
                if c >= main_null {
                    new_null
                } else {
                    let m = merged.main_map[c as usize];
                    debug_assert_ne!(m, DROPPED, "surviving code must map");
                    m
                }
            }
            Origin::L2(pos) => {
                let c = l2_row_codes[pos as usize];
                if c == hana_store::L2_NULL_CODE {
                    new_null
                } else {
                    let m = merged.delta_map[c as usize];
                    debug_assert_ne!(m, DROPPED, "surviving code must map");
                    m
                }
            }
        })
        .collect();
    (merged.dict, new_codes, merged.kind)
}

/// Consolidation path: a multi-part chain is merged by materializing values
/// (used by the full merge that collapses passive + active mains).
fn merge_one_column_general(
    input: &MergeInput<'_>,
    survivors: &SurvivorSet,
    col: usize,
) -> (SortedDict, Vec<Code>, MergeKind) {
    let values: Vec<Value> = survivors
        .rows
        .iter()
        .map(|r| survivor_value(input, r, col))
        .collect();
    let dict = SortedDict::from_values(values.iter().filter(|v| !v.is_null()).cloned().collect());
    let null = dict.len() as Code;
    let codes = values
        .iter()
        .map(|v| {
            if v.is_null() {
                null
            } else {
                dict.code_of(v).expect("value just entered the dictionary")
            }
        })
        .collect();
    (dict, codes, MergeKind::General)
}

pub(crate) fn assemble_part(
    input: &MergeInput<'_>,
    survivors: &SurvivorSet,
    merged: MergedColumns,
) -> MainStore {
    let columns: Vec<MainColumnData> = merged
        .dicts
        .into_iter()
        .zip(merged.codes)
        .map(|(dict, codes)| MainColumnData {
            dict,
            base: 0,
            codes,
        })
        .collect();
    let part = MainPart::build(
        input.generation,
        columns,
        survivors.rows.iter().map(|r| r.row_id).collect(),
        survivors.rows.iter().map(|r| r.begin).collect(),
        survivors.rows.iter().map(|r| r.end).collect(),
        input.block_size,
    );
    MainStore::from_parts(input.l2.schema().clone(), vec![Arc::new(part)])
}

/// Run a classic merge: old main chain + closed L2-delta → one new main part.
pub fn classic_merge(
    input: &MergeInput<'_>,
    mgr: &TxnManager,
    history: Option<&HistoryStore>,
) -> Result<DeltaMergeOutcome> {
    debug_assert!(input.l2.is_closed(), "merge consumes a closed L2-delta");
    let started = Instant::now();
    let rows_in = input.main.total_rows() + input.l2.published_len() as usize;
    let survivors = collect_survivors(input, mgr, history, input.main.iter_hits())?;
    let merged = build_merged_columns(input, &survivors);
    let paths = merged.paths.clone();
    let workers = merged.workers;
    let new_main = assemble_part(input, &survivors, merged);
    let metrics = MergeMetrics::measure(
        rows_in,
        survivors.rows.len(),
        input.l2.schema().arity(),
        workers,
        started,
    );
    Ok(DeltaMergeOutcome {
        new_main,
        from_main: survivors.from_main,
        from_l2: survivors.from_l2,
        dropped: survivors.dropped,
        dict_paths: paths,
        metrics,
    })
}

/// Convenience used by tests and benches: an open, filled L2-delta built
/// from raw committed rows.
pub fn l2_from_rows(
    schema: hana_common::Schema,
    generation: u64,
    rows: &[(RowId, Vec<Value>)],
    begin: hana_common::Timestamp,
) -> L2Delta {
    let l2 = L2Delta::new(schema, generation);
    let batch: Vec<_> = rows
        .iter()
        .map(|(id, r)| (*id, r.clone(), begin, hana_common::COMMIT_TS_MAX))
        .collect();
    l2.append_batch(&batch).expect("open delta accepts appends");
    l2.publish_all();
    l2
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema, COMMIT_TS_MAX};
    use hana_store::PartHit;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("city", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn row(id: i64, city: &str) -> (RowId, Vec<Value>) {
        (RowId(id as u64), vec![Value::Int(id), Value::str(city)])
    }

    fn input<'a>(main: &'a MainStore, l2: &'a L2Delta) -> MergeInput<'a> {
        MergeInput {
            main,
            l2,
            watermark: 1_000,
            block_size: 64,
            generation: 1,
            parallel: 1,
        }
    }

    #[test]
    fn first_merge_from_empty_main() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = l2_from_rows(
            schema(),
            0,
            &[row(3, "Los Gatos"), row(1, "Campbell"), row(2, "Los Gatos")],
            5,
        );
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        assert_eq!(out.from_l2, 3);
        assert_eq!(out.from_main, 0);
        let m = &out.new_main;
        assert_eq!(m.total_rows(), 3);
        // Sorted dictionary: Campbell=0, Los Gatos=1.
        assert_eq!(m.parts()[0].dict(1).value_of(0), Value::str("Campbell"));
        let hits = m.positions_eq(1, &Value::str("Los Gatos"));
        assert_eq!(hits.len(), 2);
        // Rows keep arrival order; values round-trip.
        assert_eq!(
            m.row_at(PartHit { part: 0, pos: 0 }),
            vec![Value::Int(3), Value::str("Los Gatos")]
        );
    }

    #[test]
    fn fig7_merge_combines_and_appends() {
        let mgr = TxnManager::new();
        // Old main with sorted cities.
        let main = {
            let main0 = MainStore::empty(schema());
            let l2 = l2_from_rows(
                schema(),
                0,
                &[
                    row(1, "Daily City"),
                    row(2, "Los Gatos"),
                    row(3, "Saratoga"),
                ],
                5,
            );
            l2.close();
            classic_merge(&input(&main0, &l2), &mgr, None)
                .unwrap()
                .new_main
        };
        // Delta: "Los Gatos" (shared) and "Campbell" (new, sorts first).
        let l2 = l2_from_rows(schema(), 1, &[row(4, "Los Gatos"), row(5, "Campbell")], 6);
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        assert_eq!(out.dict_paths[1], MergeKind::General);
        let m = &out.new_main;
        assert_eq!(m.total_rows(), 5);
        let dict = m.parts()[0].dict(1);
        assert_eq!(
            (0..dict.len() as Code)
                .map(|c| dict.value_of(c))
                .collect::<Vec<_>>(),
            ["Campbell", "Daily City", "Los Gatos", "Saratoga"]
                .map(Value::str)
                .to_vec()
        );
        // Old main rows first, delta rows appended at the end.
        assert_eq!(m.parts()[0].row_id(3), RowId(4));
        assert_eq!(m.parts()[0].row_id(4), RowId(5));
        // Both "Los Gatos" rows land on the same new code.
        let hits = m.positions_eq(1, &Value::str("Los Gatos"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn subset_fast_path_detected() {
        let mgr = TxnManager::new();
        let main = {
            let main0 = MainStore::empty(schema());
            let l2 = l2_from_rows(schema(), 0, &[row(1, "a"), row(2, "b"), row(3, "c")], 5);
            l2.close();
            classic_merge(&input(&main0, &l2), &mgr, None)
                .unwrap()
                .new_main
        };
        let l2 = l2_from_rows(schema(), 1, &[row(4, "b")], 6);
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        // City dictionary: delta ⊆ main.
        assert_eq!(out.dict_paths[1], MergeKind::DeltaSubset);
        // Id dictionary: 4 > 3 ⇒ append path.
        assert_eq!(out.dict_paths[0], MergeKind::DeltaAppend);
    }

    #[test]
    fn garbage_versions_are_discarded() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = l2_from_rows(
            schema(),
            0,
            &[row(1, "keep"), row(2, "dead"), row(3, "keep2")],
            5,
        );
        // Row 2 deleted at ts 10, watermark 1000 ⇒ garbage.
        l2.store_end(1, 10);
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        assert_eq!(out.from_l2, 2);
        assert_eq!(out.dropped, vec![RowId(2)]);
        let m = &out.new_main;
        assert_eq!(m.total_rows(), 2);
        assert!(m.positions_eq(1, &Value::str("dead")).is_empty());
        // The dictionary contains only valid entries.
        assert_eq!(m.parts()[0].dict(1).len(), 2);
    }

    #[test]
    fn deletions_after_watermark_survive_with_stamp() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = l2_from_rows(schema(), 0, &[row(1, "a")], 5);
        l2.store_end(0, 2_000); // after watermark
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        assert_eq!(out.new_main.total_rows(), 1);
        assert_eq!(out.new_main.parts()[0].end(0), 2_000);
    }

    #[test]
    fn historic_tables_archive_garbage() {
        let mgr = TxnManager::new();
        let history = HistoryStore::new();
        let main = MainStore::empty(schema());
        let l2 = l2_from_rows(schema(), 0, &[row(1, "old")], 5);
        l2.store_end(0, 10);
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, Some(&history)).unwrap();
        assert_eq!(out.new_main.total_rows(), 0);
        assert_eq!(history.len(), 1);
        let v = history.version_as_of(RowId(1), 7).unwrap();
        assert_eq!(v.values[1], Value::str("old"));
        assert_eq!((v.begin, v.end), (5, 10));
    }

    #[test]
    fn in_flight_stamps_fail_retryably() {
        let mgr = TxnManager::new();
        let txn = mgr.begin(hana_txn::IsolationLevel::Transaction);
        let main = MainStore::empty(schema());
        let l2 = L2Delta::new(schema(), 0);
        l2.append_row(
            RowId(1),
            &[Value::Int(1), Value::str("x")],
            txn.id().mark(),
            COMMIT_TS_MAX,
        )
        .unwrap();
        l2.publish_all();
        l2.close();
        let err = classic_merge(&input(&main, &l2), &mgr, None).unwrap_err();
        assert!(err.is_retryable());
    }

    #[test]
    fn aborted_inserts_vanish() {
        let mgr = TxnManager::new();
        let mut txn = mgr.begin(hana_txn::IsolationLevel::Transaction);
        let main = MainStore::empty(schema());
        let l2 = L2Delta::new(schema(), 0);
        l2.append_row(
            RowId(1),
            &[Value::Int(1), Value::str("x")],
            txn.id().mark(),
            COMMIT_TS_MAX,
        )
        .unwrap();
        l2.publish_all();
        txn.abort().unwrap();
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        assert_eq!(out.new_main.total_rows(), 0);
        assert_eq!(out.dropped, vec![RowId(1)]);
    }

    #[test]
    fn nulls_survive_the_merge() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = L2Delta::new(schema(), 0);
        l2.append_row(RowId(1), &[Value::Int(1), Value::Null], 5, COMMIT_TS_MAX)
            .unwrap();
        l2.append_row(
            RowId(2),
            &[Value::Int(2), Value::str("x")],
            5,
            COMMIT_TS_MAX,
        )
        .unwrap();
        l2.publish_all();
        l2.close();
        let out = classic_merge(&input(&main, &l2), &mgr, None).unwrap();
        let m = &out.new_main;
        assert_eq!(m.value_at(PartHit { part: 0, pos: 0 }, 1), Value::Null);
        assert_eq!(m.positions_null(1).len(), 1);
        assert_eq!(m.parts()[0].dict(1).len(), 1);
    }
}
