//! Background MVCC garbage collection.
//!
//! Merges reclaim *rows* (superseded versions leave the structures when a
//! merge rebuilds them); this module reclaims everything merges cannot:
//!
//! * **Mark resolution** — begin/end stamps written by finished
//!   transactions are rewritten from `TXN_MARK | id` to their settled
//!   timestamps (commit ts, or `COMMIT_TS_MAX` for an aborted deleter), so
//!   readers stop paying commit-table lookups and — crucially — so the
//!   commit table itself can shrink.
//! * **Transaction-table trimming** — the [`TxnManager`]'s commit table and
//!   aborted set grow with every finished transaction; once no stamp
//!   anywhere references an entry, it is dropped. This is what keeps a
//!   days-long churn run's memory flat.
//! * **Visibility-bitmap cache eviction** — cached `(part, snapshot)`
//!   bitmaps whose snapshot fell below the MVCC low-watermark can never be
//!   used again and are evicted without waiting for cache-pressure
//!   replacement.
//! * **Accounting** — dead row versions (end ≤ watermark, awaiting their
//!   reclaiming merge) and dead dictionary codes in the L2-delta are
//!   counted and surfaced through [`GcStats`], mirroring
//!   [`DaemonStats`](hana_merge::DaemonStats).
//!
//! ## Safety of trimming the commit table
//!
//! Dropping an entry makes its id resolve as *aborted* (unknown ⇒ aborted),
//! so an entry may only be dropped when no stamp still carries its mark.
//! Each table's sweep reports the marks it could **not** rewrite
//! (`referenced`); the trim runs only against the union over *all* catalog
//! tables, with a commit-timestamp cutoff captured before the oldest sweep
//! started (any transaction committing mid-sweep lands above the cutoff, so
//! marks a sweep raced past stay resolvable). On top of that, an entry is
//! dropped only after being an eligible candidate for **two consecutive
//! cycles** — a reader that loaded a mark just before the first cycle's
//! sweep rewrote it has long resolved it by the time the entry actually
//! goes away. Aborted-set entries skip the deferral: an unknown id already
//! resolves as aborted, so dropping one can never change a resolution.
//!
//! ## Scheduling
//!
//! [`TableGc`] implements [`MergeTarget`], so the [`MergeDaemon`] drives it
//! with the same per-target claim/backoff machinery as the merges — one
//! target per table (and per partition shard: shards are first-class
//! catalog tables), so collecting one partition never stalls a sibling.
//! `maybe_merge` always returns `Ok(false)`: GC cycles are invisible to the
//! daemon's merge counters and never arm its failure backoff.
//!
//! [`MergeDaemon`]: hana_merge::MergeDaemon

use crate::table::UnifiedTable;
use hana_common::{Timestamp, TxnId, COMMIT_TS_MAX};
use hana_merge::MergeTarget;
use hana_store::L2Delta;
use hana_txn::{Resolution, TxnManager};
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-main-part sweep memo, keyed by part generation.
struct PartMemo {
    /// `end_version()` when the part was last fully swept.
    end_version: u64,
    /// True if that sweep left no mark in the end stamps; together with an
    /// unchanged `end_version` this lets the whole end sweep be skipped.
    ends_clean: bool,
    /// Transactions of begin-stamp marks (immutable in a built part): must
    /// stay resolvable for the part's whole lifetime.
    begin_refs: Vec<u64>,
}

/// Per-table GC bookkeeping, stored on the [`UnifiedTable`].
#[derive(Default)]
pub struct TableGcState {
    parts: FxHashMap<u64, PartMemo>,
}

/// What one table sweep observed (input to the database-wide trim).
pub struct SweepReport {
    /// MVCC watermark captured *before* the sweep touched any stamp.
    pub watermark_start: Timestamp,
    /// Transaction ids still carried by some mark this sweep could not
    /// rewrite (in-flight writers, lost CAS races, immutable main begins).
    pub referenced: FxHashSet<u64>,
    /// Marks rewritten to settled timestamps.
    pub marks_resolved: u64,
    /// Vis-cache entries evicted below the watermark.
    pub vis_evicted: u64,
    /// Superseded/aborted versions awaiting their reclaiming merge.
    pub dead_versions: u64,
    /// L2 dictionary codes no live row references (reclaimed by the next
    /// delta-to-main merge's filtered dictionary build).
    pub dead_dict_codes: u64,
}

/// Monotonic GC counters (shared by every [`TableGc`] of a database).
#[derive(Default)]
struct GcCounters {
    cycles: AtomicU64,
    marks_resolved: AtomicU64,
    txn_entries_trimmed: AtomicU64,
    vis_entries_evicted: AtomicU64,
    dead_versions: AtomicU64,
    dead_dict_codes: AtomicU64,
    last_watermark: AtomicU64,
}

/// Snapshot of the garbage collector's aggregate statistics, surfaced like
/// [`DaemonStats`](hana_merge::DaemonStats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Completed table sweeps.
    pub cycles: u64,
    /// Begin/end stamps rewritten from marks to settled timestamps.
    pub marks_resolved: u64,
    /// Commit-table + aborted-set entries dropped.
    pub txn_entries_trimmed: u64,
    /// Visibility-bitmap cache entries evicted below the watermark.
    pub vis_entries_evicted: u64,
    /// Latest observed count of dead versions awaiting merge reclaim.
    pub dead_versions: u64,
    /// Latest observed count of dead L2 dictionary codes.
    pub dead_dict_codes: u64,
    /// Watermark of the most recent sweep.
    pub last_watermark: u64,
}

struct GcSharedInner {
    /// Latest sweep per table id (trim requires one from every table).
    reports: FxHashMap<u32, (Timestamp, FxHashSet<u64>)>,
    /// Tables that must report before a trim may run.
    registered: FxHashSet<u32>,
    /// Commit-table candidates from the previous trim (two-cycle deferral).
    candidates: FxHashSet<u64>,
}

/// Database-wide GC state: counters plus the cross-table trim aggregator.
pub struct GcShared {
    counters: GcCounters,
    inner: Mutex<GcSharedInner>,
}

impl GcShared {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(GcShared {
            counters: GcCounters::default(),
            inner: Mutex::new(GcSharedInner {
                reports: FxHashMap::default(),
                registered: FxHashSet::default(),
                candidates: FxHashSet::default(),
            }),
        })
    }

    pub(crate) fn register_table(&self, id: u32) {
        self.inner.lock().registered.insert(id);
    }

    /// Current aggregate statistics.
    pub fn stats(&self) -> GcStats {
        GcStats {
            cycles: self.counters.cycles.load(Ordering::Relaxed),
            marks_resolved: self.counters.marks_resolved.load(Ordering::Relaxed),
            txn_entries_trimmed: self.counters.txn_entries_trimmed.load(Ordering::Relaxed),
            vis_entries_evicted: self.counters.vis_entries_evicted.load(Ordering::Relaxed),
            dead_versions: self.counters.dead_versions.load(Ordering::Relaxed),
            dead_dict_codes: self.counters.dead_dict_codes.load(Ordering::Relaxed),
            last_watermark: self.counters.last_watermark.load(Ordering::Relaxed),
        }
    }

    /// Deposit one table's sweep and, when every registered table has
    /// reported, run the transaction-table trim.
    fn absorb(&self, mgr: &TxnManager, table: u32, report: SweepReport) {
        self.counters.cycles.fetch_add(1, Ordering::Relaxed);
        self.counters
            .marks_resolved
            .fetch_add(report.marks_resolved, Ordering::Relaxed);
        self.counters
            .vis_entries_evicted
            .fetch_add(report.vis_evicted, Ordering::Relaxed);
        self.counters
            .dead_versions
            .store(report.dead_versions, Ordering::Relaxed);
        self.counters
            .dead_dict_codes
            .store(report.dead_dict_codes, Ordering::Relaxed);
        self.counters
            .last_watermark
            .store(report.watermark_start, Ordering::Relaxed);

        let mut inner = self.inner.lock();
        inner
            .reports
            .insert(table, (report.watermark_start, report.referenced));
        if !inner
            .registered
            .iter()
            .all(|id| inner.reports.contains_key(id))
        {
            return;
        }
        let mut referenced: FxHashSet<u64> = FxHashSet::default();
        let mut committed_before = Timestamp::MAX;
        for id in &inner.registered {
            let (wm, refs) = &inner.reports[id];
            committed_before = committed_before.min(*wm);
            referenced.extend(refs.iter().copied());
        }
        let approved = std::mem::take(&mut inner.candidates);
        let (removed, candidates) = mgr.trim_finished(&referenced, committed_before, &approved);
        inner.candidates = candidates;
        self.counters
            .txn_entries_trimmed
            .fetch_add(removed as u64, Ordering::Relaxed);
    }
}

/// Outcome of resolving one stamp against the transaction manager.
enum MarkFate {
    /// Not a mark, or settled already.
    Settled,
    /// Rewrite to this timestamp (commit ts, or `COMMIT_TS_MAX` for an
    /// aborted end stamp).
    Rewrite(Timestamp),
    /// Leave in place: `keep_ref` says whether the trim must preserve the
    /// transaction's entry (committed marks yes; active/aborted no — an
    /// active txn is not in the commit table, and unknown ids already
    /// resolve as aborted).
    Keep { txn: u64, keep_ref: bool },
}

fn end_fate(mgr: &TxnManager, ts: Timestamp) -> MarkFate {
    match TxnId::from_mark(ts) {
        None => MarkFate::Settled,
        Some(writer) => match mgr.resolve_mark(writer) {
            Resolution::Committed(cts) => MarkFate::Rewrite(cts),
            Resolution::Aborted => MarkFate::Rewrite(COMMIT_TS_MAX),
            Resolution::Uncommitted(_) => MarkFate::Keep {
                txn: writer.0,
                keep_ref: false,
            },
        },
    }
}

fn begin_fate(mgr: &TxnManager, ts: Timestamp) -> MarkFate {
    match TxnId::from_mark(ts) {
        None => MarkFate::Settled,
        Some(writer) => match mgr.resolve_mark(writer) {
            Resolution::Committed(cts) => MarkFate::Rewrite(cts),
            // An aborted begin stays a mark (the row is garbage a merge
            // will drop); unknown ids resolve as aborted, so the entry
            // needs no protection.
            Resolution::Aborted | Resolution::Uncommitted(_) => MarkFate::Keep {
                txn: match mgr.resolve_mark(writer) {
                    Resolution::Uncommitted(t) => t.0,
                    _ => writer.0,
                },
                keep_ref: false,
            },
        },
    }
}

impl UnifiedTable {
    /// One GC sweep over every stage of this table. Resolves marks, evicts
    /// stale visibility-cache entries, and reports what the database-wide
    /// transaction-table trim needs. Safe to run concurrently with writers
    /// and merges: every rewrite is a compare-exchange that loses to any
    /// racing real store.
    pub fn gc_sweep(&self) -> SweepReport {
        let watermark_start = self.mgr.watermark();
        let mut rep = SweepReport {
            watermark_start,
            referenced: FxHashSet::default(),
            marks_resolved: 0,
            vis_evicted: 0,
            dead_versions: 0,
            dead_dict_codes: 0,
        };

        // L1 slots.
        let snap = self.l1.snapshot();
        for (_, slot) in snap.iter() {
            let begin = slot.begin();
            match begin_fate(&self.mgr, begin) {
                MarkFate::Rewrite(cts) => {
                    if slot.resolve_begin(begin, cts) {
                        rep.marks_resolved += 1;
                    }
                }
                MarkFate::Settled | MarkFate::Keep { .. } => {}
            }
            let end = slot.end();
            match end_fate(&self.mgr, end) {
                MarkFate::Rewrite(settled) => {
                    if slot.resolve_end(end, settled) {
                        rep.marks_resolved += 1;
                        if settled <= watermark_start {
                            rep.dead_versions += 1;
                        }
                    }
                }
                MarkFate::Settled => {
                    if end <= watermark_start {
                        rep.dead_versions += 1;
                    }
                }
                MarkFate::Keep { .. } => {}
            }
        }

        // L2 deltas (open and frozen) and the main chain, captured under a
        // brief shared state hold; the sweep itself runs lock-free against
        // the shared structures.
        let (l2, frozen, main) = {
            let state = self.state.read();
            (
                Arc::clone(&state.l2),
                state.l2_frozen.clone(),
                Arc::clone(&state.main),
            )
        };
        self.sweep_l2(&l2, watermark_start, &mut rep);
        if let Some(f) = &frozen {
            self.sweep_l2(f, watermark_start, &mut rep);
        }

        let mut gc_state = self.gc_state.lock();
        let live_gens: FxHashSet<u64> = main.parts().iter().map(|p| p.generation()).collect();
        gc_state.parts.retain(|gen, _| live_gens.contains(gen));
        for part in main.parts() {
            rep.vis_evicted += part.evict_visibility_below(watermark_start) as u64;
            let gen = part.generation();
            let end_version = part.end_version();

            // Begin stamps of a built part are immutable; marks there (from
            // recovery images taken mid-transaction) pin their txn entries
            // for the part's lifetime. Computed once per generation.
            if part.begins_marked() && !gc_state.parts.contains_key(&gen) {
                let mut begin_refs = Vec::new();
                for pos in 0..part.len() as u32 {
                    if let Some(writer) = TxnId::from_mark(part.begin(pos)) {
                        begin_refs.push(writer.0);
                    }
                }
                gc_state.parts.insert(
                    gen,
                    PartMemo {
                        end_version: u64::MAX, // force the first end sweep
                        ends_clean: false,
                        begin_refs,
                    },
                );
            }
            if let Some(memo) = gc_state.parts.get(&gen) {
                rep.referenced.extend(memo.begin_refs.iter().copied());
                if memo.ends_clean && memo.end_version == end_version {
                    continue; // nothing can have changed since the last sweep
                }
            }

            let mut ends_clean = true;
            for pos in 0..part.len() as u32 {
                let end = part.end(pos);
                match end_fate(&self.mgr, end) {
                    MarkFate::Rewrite(settled) => {
                        if part.resolve_end(pos, end, settled) {
                            rep.marks_resolved += 1;
                        } else {
                            // Lost to a racing deleter; revisit next cycle.
                            ends_clean = false;
                        }
                    }
                    MarkFate::Settled => {}
                    MarkFate::Keep { txn, keep_ref } => {
                        ends_clean = false;
                        if keep_ref {
                            rep.referenced.insert(txn);
                        }
                    }
                }
            }
            let begin_refs = gc_state
                .parts
                .remove(&gen)
                .map(|m| m.begin_refs)
                .unwrap_or_default();
            gc_state.parts.insert(
                gen,
                PartMemo {
                    // Version *after* our rewrites: resolve_end never bumps
                    // it, so an unchanged value next cycle means no real
                    // deleter wrote in between.
                    end_version: part.end_version(),
                    ends_clean,
                    begin_refs,
                },
            );
        }
        rep
    }

    /// Sweep one L2-delta's published rows: resolve begin/end marks, count
    /// dead versions and dead dictionary codes.
    fn sweep_l2(&self, l2: &L2Delta, watermark: Timestamp, rep: &mut SweepReport) {
        let fence = l2.published_len();
        let arity = self.schema.arity();
        let mut live = vec![false; fence as usize];
        for pos in 0..fence {
            let begin = l2.begin(pos);
            let mut begin_live = true;
            match begin_fate(&self.mgr, begin) {
                MarkFate::Rewrite(cts) => {
                    if l2.resolve_begin(pos, begin, cts) {
                        rep.marks_resolved += 1;
                    }
                }
                MarkFate::Settled => {}
                MarkFate::Keep { .. } => {
                    // Aborted insert: the row is garbage. (An uncommitted
                    // insert is conservatively treated as live.)
                    if matches!(
                        self.mgr.resolve_mark(TxnId::from_mark(begin).unwrap()),
                        Resolution::Aborted
                    ) {
                        begin_live = false;
                        rep.dead_versions += 1;
                    }
                }
            }
            let end = l2.end(pos);
            let settled_end = match end_fate(&self.mgr, end) {
                MarkFate::Rewrite(settled) => {
                    if l2.resolve_end(pos, end, settled) {
                        rep.marks_resolved += 1;
                    }
                    settled
                }
                MarkFate::Settled => end,
                MarkFate::Keep { .. } => COMMIT_TS_MAX,
            };
            let dead = settled_end <= watermark;
            if dead && begin_live {
                rep.dead_versions += 1;
            }
            live[pos as usize] = begin_live && !dead;
        }
        // Dictionary codes no live row references: left behind by updates/
        // deletes, reclaimed when the next delta merge filters the dict.
        for col in 0..arity {
            rep.dead_dict_codes += l2.with_column(col, fence, |dict, codes| {
                let mut used = vec![false; dict.len()];
                for (pos, &code) in codes.iter().enumerate() {
                    if live[pos] && code != hana_store::L2_NULL_CODE {
                        used[code as usize] = true;
                    }
                }
                used.iter().filter(|u| !**u).count() as u64
            });
        }
    }
}

/// One table's (or partition shard's) GC driver: a [`MergeTarget`] the
/// merge daemon schedules alongside the merges with the same per-target
/// claim/backoff isolation.
pub struct TableGc {
    table: Arc<UnifiedTable>,
    shared: Arc<GcShared>,
    /// Minimum gap between sweeps of this table (the daemon may tick far
    /// faster than a sweep is worth).
    min_gap: Duration,
    last_run: Mutex<Option<Instant>>,
}

impl TableGc {
    /// Wrap `table` for registration with the merge daemon.
    pub fn new(table: Arc<UnifiedTable>, shared: Arc<GcShared>) -> Arc<Self> {
        Self::with_min_gap(table, shared, Duration::from_millis(25))
    }

    /// [`TableGc::new`] with an explicit sweep throttle (tests).
    pub fn with_min_gap(
        table: Arc<UnifiedTable>,
        shared: Arc<GcShared>,
        min_gap: Duration,
    ) -> Arc<Self> {
        shared.register_table(table.id().0);
        Arc::new(TableGc {
            table,
            shared,
            min_gap,
            last_run: Mutex::new(None),
        })
    }
}

impl MergeTarget for TableGc {
    fn maybe_merge(&self) -> hana_common::Result<bool> {
        {
            let mut last = self.last_run.lock();
            if let Some(t) = *last {
                if t.elapsed() < self.min_gap {
                    return Ok(false);
                }
            }
            *last = Some(Instant::now());
        }
        let report = self.table.gc_sweep();
        self.shared
            .absorb(self.table.txn_manager(), self.table.id().0, report);
        // Never count as a merge, never arm the daemon's failure backoff.
        Ok(false)
    }
}
