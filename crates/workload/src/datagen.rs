//! Deterministic value pools for the sales schema.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// City pool — the paper's own running example values first.
pub const CITIES: &[&str] = &[
    "Campbell",
    "Daily City",
    "Los Altos",
    "Los Gatos",
    "Palo Alto",
    "San Jose",
    "Saratoga",
    "Seoul",
    "Walldorf",
    "Berlin",
    "Mannheim",
    "Heidelberg",
    "Sunnyvale",
    "Cupertino",
    "Mountain View",
    "Santa Clara",
];

/// Product category pool.
pub const CATEGORIES: &[&str] = &[
    "electronics",
    "food",
    "clothing",
    "furniture",
    "toys",
    "books",
    "sports",
    "garden",
];

/// Currency pool.
pub const CURRENCIES: &[&str] = &["USD", "EUR", "KRW", "GBP", "JPY"];

/// Seeded random generator for workload data.
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// A generator with a fixed seed (reproducible runs).
    pub fn new(seed: u64) -> Self {
        DataGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Borrow the RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// A random city.
    pub fn city(&mut self) -> &'static str {
        CITIES[self.rng.gen_range(0..CITIES.len())]
    }

    /// A random category.
    pub fn category(&mut self) -> &'static str {
        CATEGORIES[self.rng.gen_range(0..CATEGORIES.len())]
    }

    /// A random currency.
    pub fn currency(&mut self) -> &'static str {
        CURRENCIES[self.rng.gen_range(0..CURRENCIES.len())]
    }

    /// A random amount in `[1, max]`.
    pub fn amount(&mut self, max: i64) -> i64 {
        self.rng.gen_range(1..=max)
    }

    /// A synthetic customer name.
    pub fn customer_name(&mut self, id: i64) -> String {
        format!("customer-{id:06}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DataGen::new(42);
        let mut b = DataGen::new(42);
        for _ in 0..100 {
            assert_eq!(a.city(), b.city());
            assert_eq!(a.amount(1000), b.amount(1000));
        }
    }

    #[test]
    fn pools_contain_paper_examples() {
        assert!(CITIES.contains(&"Los Gatos"));
        assert!(CITIES.contains(&"Campbell"));
        assert!(CITIES.contains(&"Daily City"));
    }

    #[test]
    fn amounts_in_range() {
        let mut g = DataGen::new(1);
        for _ in 0..1000 {
            let a = g.amount(50);
            assert!((1..=50).contains(&a));
        }
    }
}
