//! Workload-isolation governor: identity, saturation, and starvation.
//!
//! The resource governor may *schedule* analytical work — queue it, clamp
//! its fan-out, defer merges around it — but must never *change* it. Three
//! contracts are pinned here:
//!
//! 1. **Identity**: the same query stream returns bit-identical result
//!    sets with the governor off, on, and with admission forced through
//!    the wait queue (property-tested over random OLTP histories).
//! 2. **Saturation**: when the token bucket is exhausted, further scans
//!    queue FIFO, time out with a *retryable* error, and never deadlock
//!    against a concurrently merging daemon.
//! 3. **No starvation**: writers keep committing while a full queue of
//!    scans waits for admission.

use hana_common::{GovernorConfig, HanaError, TableConfig};
use hana_core::Database;
use hana_txn::Snapshot;
use hana_workload::olap::{OlapQuery, ALL_QUERIES};
use hana_workload::oltp::{DurableOltp, OltpDriver};
use hana_workload::{DataGen, OlapRunner, SalesDataset};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A database + dataset with the given governor config and a deterministic
/// OLTP history applied on top of the initial load.
fn build(
    gcfg: GovernorConfig,
    orders: i64,
    seed: u64,
    ops: usize,
) -> (Arc<Database>, SalesDataset) {
    let db = Database::in_memory();
    db.set_governor_config(gcfg);
    let cfg = TableConfig {
        l1_max_rows: 64,
        l2_max_rows: 256,
        ..TableConfig::default()
    };
    let ds = SalesDataset::load(&db, cfg, orders, 20, 10, seed).unwrap();
    if ops > 0 {
        let driver = OltpDriver::new(orders, 20, 10, 0.9);
        let engine = DurableOltp {
            db: Arc::clone(&db),
            table: Arc::clone(&ds.sales),
        };
        let mut gen = DataGen::new(seed ^ 0x00C0_FFEE);
        driver.run(&engine, &mut gen, ops).unwrap();
    }
    (db, ds)
}

/// Every OLAP query's result set on the given database.
fn all_results(db: &Arc<Database>, ds: &SalesDataset) -> Vec<hana_calc::ResultSet> {
    let runner = OlapRunner::new(Snapshot::at(db.txn_manager().now()));
    ALL_QUERIES
        .iter()
        .map(|&q| runner.run_unified(&ds.sales, q).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Governor off, on, and queued-admission runs of the same history
    /// agree on every query, row for row.
    #[test]
    fn governed_scans_are_bit_identical(
        orders in 50i64..300,
        seed in 0u64..1_000,
        ops in 0usize..150,
    ) {
        let (db_off, ds_off) = build(GovernorConfig::disabled(), orders, seed, ops);
        let (db_on, ds_on) = build(GovernorConfig::default(), orders, seed, ops);
        // Single token, so the measured scan genuinely waits in the
        // admission queue while a holder thread sits on the bucket.
        let queued_cfg = GovernorConfig::default().with_max_concurrent_scans(1);
        let (db_q, ds_q) = build(queued_cfg, orders, seed, ops);

        let off = all_results(&db_off, &ds_off);
        let on = all_results(&db_on, &ds_on);

        let (permit, _) = db_q.governor().admit_scan().unwrap();
        let gov = Arc::clone(db_q.governor());
        let holder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(permit);
            let _ = gov;
        });
        let queued = all_results(&db_q, &ds_q);
        holder.join().unwrap();
        prop_assert!(db_q.governor_stats().scans_queued > 0, "queue never formed");

        prop_assert_eq!(&off, &on);
        prop_assert_eq!(&off, &queued);
    }
}

/// Exhausted bucket: scans queue FIFO, timeouts are retryable, and a
/// merging daemon never deadlocks against the admission queue.
#[test]
fn saturated_bucket_times_out_retryably_without_deadlock() {
    let gcfg = GovernorConfig::default()
        .with_max_concurrent_scans(1)
        .with_scan_queue_timeout_ms(40);
    let (db, ds) = build(gcfg, 200, 7, 0);
    db.start_merge_daemon(Duration::from_millis(1));

    // Hold the only token for the whole saturation phase.
    let (held, _) = db.governor().admit_scan().unwrap();
    assert!(held.is_some(), "first admission must be immediate");
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let db = &db;
            let ds = &ds;
            scope.spawn(move || {
                let runner = OlapRunner::new(Snapshot::at(db.txn_manager().now()));
                let err = runner
                    .run_unified(&ds.sales, OlapQuery::TotalRevenue)
                    .unwrap_err();
                assert!(err.is_retryable(), "admission timeout must be retryable");
                assert!(matches!(err, HanaError::Governor(_)), "{err:?}");
            });
        }
    });
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "saturated scans must fail fast, not deadlock"
    );
    let s = db.governor_stats();
    assert!(s.scans_queued >= 4, "{s:?}");
    assert!(s.scans_timed_out >= 4, "{s:?}");

    // FIFO drain: queued admissions are granted in arrival order.
    db.set_governor_config(
        GovernorConfig::default()
            .with_max_concurrent_scans(1)
            .with_scan_queue_timeout_ms(10_000),
    );
    let order = Arc::new(Mutex::new(Vec::new()));
    let queued_before = db.governor_stats().scans_queued;
    std::thread::scope(|scope| {
        for k in 0..3u32 {
            let gov = Arc::clone(db.governor());
            let order = Arc::clone(&order);
            scope.spawn(move || {
                let (_p, _) = gov.admit_scan().unwrap();
                order.lock().push(k);
            });
            // Wait until thread k is actually parked in the queue before
            // spawning k+1, so arrival order is deterministic.
            while db.governor_stats().scans_queued < queued_before + u64::from(k) + 1 {
                std::thread::yield_now();
            }
        }
        drop(held);
    });
    assert_eq!(*order.lock(), vec![0, 1, 2], "queue must drain FIFO");

    // The bucket recovered: a fresh scan is admitted and runs.
    let runner = OlapRunner::new(Snapshot::at(db.txn_manager().now()));
    runner
        .run_unified(&ds.sales, OlapQuery::TotalRevenue)
        .unwrap();
    db.stop_merge_daemon();
}

/// Writers are never starved by a saturated scan queue: commits flow while
/// eight analytical scans wait for admission.
#[test]
fn writers_commit_while_scans_are_queued() {
    let gcfg = GovernorConfig::default()
        .with_max_concurrent_scans(1)
        .with_scan_queue_timeout_ms(20_000);
    let (db, ds) = build(gcfg, 200, 11, 0);

    let (held, _) = db.governor().admit_scan().unwrap();
    assert!(held.is_some());
    let queued_base = db.governor_stats().scans_queued;
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let db = &db;
            let ds = &ds;
            scope.spawn(move || {
                let runner = OlapRunner::new(Snapshot::at(db.txn_manager().now()));
                runner
                    .run_unified(&ds.sales, OlapQuery::TotalRevenue)
                    .unwrap();
            });
        }
        // All eight scans parked in the admission queue.
        while db.governor_stats().scans_queued < queued_base + 8 {
            std::thread::yield_now();
        }
        let admitted_before = db.governor_stats().scans_admitted;

        // The write path must not touch the scan bucket: 50 commits land
        // while the queue is still full.
        let driver = OltpDriver::new(200, 20, 10, 0.9).with_mix((100, 0, 0, 0));
        let engine = DurableOltp {
            db: Arc::clone(&db),
            table: Arc::clone(&ds.sales),
        };
        let mut gen = DataGen::new(42);
        let rep = driver.run(&engine, &mut gen, 50).unwrap();
        assert!(rep.committed >= 50, "writers starved: {rep:?}");
        assert_eq!(
            db.governor_stats().scans_admitted,
            admitted_before,
            "no scan may have been admitted while the token was held"
        );
        drop(held);
    });
    let s = db.governor_stats();
    assert_eq!(s.scans_timed_out, 0, "queued scans must complete: {s:?}");
}
