//! Offline shim for the `parking_lot` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! handful of external dependencies are replaced by vendored shims exposing
//! exactly the API subset the workspace uses. This one wraps `std::sync`
//! primitives behind parking_lot's non-poisoning interface: `lock()`,
//! `read()` and `write()` return guards directly, recovering the guard from
//! a poisoned lock instead of propagating the poison error (parking_lot has
//! no poisoning at all, so this matches its semantics for non-panicking
//! callers).

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex that never poisons: a panic while holding the lock leaves the
/// data accessible to later lockers, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Runs `f` on the guard behind `&mut`, replacing it in place — the dance
/// needed to express parking_lot's `wait(&mut guard)` over `std`'s
/// by-value `Condvar::wait`. Aborts if `f` panics: at that point the old
/// guard has been moved out and unwinding would double-drop it.
fn replace_with<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    unsafe {
        let old = std::ptr::read(guard);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(guard, new);
    }
}

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's in-place-guard API (`wait` takes
/// `&mut MutexGuard` instead of consuming it).
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_with(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let mut timed = false;
        replace_with(guard, |g| {
            let (g, r) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed = r.timed_out();
            g
        });
        WaitTimeoutResult(timed)
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A readers-writer lock that never poisons, mirroring
/// `parking_lot::RwLock`'s guard-returning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn condvar_wait_and_notify() {
        use std::sync::Arc;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        std::thread::sleep(Duration::from_millis(10));
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, std::time::Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_write().is_some());
    }
}
