//! Statement-scoped read views.
//!
//! A [`TableRead`] pins everything one statement may see: the MVCC snapshot,
//! an L1 segment view, the L2 structures with their row-count fences, and
//! the main chain `Arc`. Merges swap structures for *new* views; an existing
//! view keeps reading its pinned ones — the paper's "all running operations
//! either see the full L1-delta and the old end-of-delta border or the
//! truncated version … with the expanded version of the L2-delta", and
//! §4.1's "keep the old and the new versions … until all database operations
//! of open transactions … have finished".

use crate::table::UnifiedTable;
use hana_column::Pos;
use hana_common::{HanaError, Result, RowId, Timestamp, Value};
use hana_dict::GlobalSortedDict;
use hana_rowstore::L1Snapshot;
use hana_store::{L2Delta, MainStore, L2_NULL_CODE};
use hana_txn::{version_visible, Snapshot, Transaction};
use std::ops::Bound;
use std::sync::Arc;

/// A consistent, merge-proof view of one table under one snapshot.
pub struct TableRead {
    table: Arc<UnifiedTable>,
    snap: Snapshot,
    l1: L1Snapshot,
    l2: Arc<L2Delta>,
    l2_fence: Pos,
    l2_frozen: Option<(Arc<L2Delta>, Pos)>,
    main: Arc<MainStore>,
}

/// A visible row surfaced by a scan.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibleRow {
    /// Stable record id.
    pub row_id: RowId,
    /// The row payload.
    pub values: Vec<Value>,
}

impl UnifiedTable {
    /// Open a read view for one statement of `txn`.
    pub fn read(self: &Arc<Self>, txn: &Transaction) -> TableRead {
        self.read_at(txn.read_snapshot())
    }

    /// Open a read view under an explicit snapshot (time travel uses
    /// `Snapshot::at(ts)`).
    pub fn read_at(self: &Arc<Self>, snap: Snapshot) -> TableRead {
        let state = self.state.read();
        TableRead {
            snap,
            l1: self.l1.snapshot(),
            l2: Arc::clone(&state.l2),
            l2_fence: state.l2.published_len(),
            l2_frozen: state
                .l2_frozen
                .as_ref()
                .map(|f| (Arc::clone(f), f.len() as Pos)),
            main: Arc::clone(&state.main),
            table: Arc::clone(self),
        }
    }
}

impl TableRead {
    /// The snapshot this view reads under.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// The pinned main chain (exposed for engine-layer operators).
    pub fn main(&self) -> &MainStore {
        &self.main
    }

    fn visible(&self, begin: Timestamp, end: Timestamp) -> bool {
        version_visible(&self.table.mgr, &self.snap, begin, end)
    }

    fn schema_col(&self, col: usize) -> Result<()> {
        if col >= self.table.schema.arity() {
            return Err(HanaError::Schema(format!(
                "column index {col} out of range for {}",
                self.table.schema.name
            )));
        }
        Ok(())
    }

    /// Iterate every *visible* row, main first, then frozen L2, then open
    /// L2, then L1 — oldest store to newest, matching merge order.
    pub fn for_each_visible(&self, mut f: impl FnMut(VisibleRow)) {
        for hit in self.main.iter_hits() {
            let part = &self.main.parts()[hit.part];
            if self.visible(part.begin(hit.pos), part.end(hit.pos)) {
                f(VisibleRow {
                    row_id: part.row_id(hit.pos),
                    values: self.main.row_at(hit),
                });
            }
        }
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in 0..*fence {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    f(VisibleRow {
                        row_id: frozen.row_id(pos),
                        values: frozen.row(pos),
                    });
                }
            }
        }
        for pos in 0..self.l2_fence {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                f(VisibleRow {
                    row_id: self.l2.row_id(pos),
                    values: self.l2.row(pos),
                });
            }
        }
        for (_, slot) in self.l1.iter() {
            if self.visible(slot.begin(), slot.end()) {
                f(VisibleRow {
                    row_id: slot.row_id,
                    values: slot.values.to_vec(),
                });
            }
        }
    }

    /// Materialize all visible rows.
    pub fn collect_rows(&self) -> Vec<VisibleRow> {
        let mut out = Vec::new();
        self.for_each_visible(|r| out.push(r));
        out
    }

    /// Count visible rows.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.for_each_visible(|_| n += 1);
        n
    }

    /// Point query: visible rows with `col = v`, via the dictionaries and
    /// inverted indexes of the column stages and a scan of the (small) L1.
    pub fn point(&self, col: usize, v: &Value) -> Result<Vec<Vec<Value>>> {
        self.schema_col(col)?;
        let mut out = Vec::new();
        for hit in self.main.positions_eq(col, v) {
            let part = &self.main.parts()[hit.part];
            if self.visible(part.begin(hit.pos), part.end(hit.pos)) {
                out.push(self.main.row_at(hit));
            }
        }
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in frozen.positions_eq(col, v, *fence) {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    out.push(frozen.row(pos));
                }
            }
        }
        for pos in self.l2.positions_eq(col, v, self.l2_fence) {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                out.push(self.l2.row(pos));
            }
        }
        for (_, slot) in self.l1.iter() {
            if &slot.values[col] == v && self.visible(slot.begin(), slot.end()) {
                out.push(slot.values.to_vec());
            }
        }
        Ok(out)
    }

    /// Range query: visible rows with `col` in `[lo, hi]` bounds. The main
    /// resolves the range per part dictionary (Fig 10); the L2 through its
    /// unsorted dictionaries; the L1 by scan.
    pub fn range(
        &self,
        col: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Result<Vec<Vec<Value>>> {
        self.schema_col(col)?;
        let in_range = |v: &Value| {
            !v.is_null()
                && (match lo {
                    Bound::Unbounded => true,
                    Bound::Included(b) => v >= b,
                    Bound::Excluded(b) => v > b,
                })
                && (match hi {
                    Bound::Unbounded => true,
                    Bound::Included(b) => v <= b,
                    Bound::Excluded(b) => v < b,
                })
        };
        let mut out = Vec::new();
        for hit in self.main.positions_range(col, lo, hi) {
            let part = &self.main.parts()[hit.part];
            if self.visible(part.begin(hit.pos), part.end(hit.pos)) {
                out.push(self.main.row_at(hit));
            }
        }
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in frozen.positions_range(col, lo, hi, *fence) {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    out.push(frozen.row(pos));
                }
            }
        }
        for pos in self.l2.positions_range(col, lo, hi, self.l2_fence) {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                out.push(self.l2.row(pos));
            }
        }
        for (_, slot) in self.l1.iter() {
            if in_range(&slot.values[col]) && self.visible(slot.begin(), slot.end()) {
                out.push(slot.values.to_vec());
            }
        }
        Ok(out)
    }

    /// Columnar aggregation over one numeric column: `(count, sum)` of
    /// visible non-null values. The main path decodes each part's
    /// dictionary once into a numeric lookup table and streams the
    /// compressed code vector — the OLAP fast path the unified table keeps
    /// even while serving OLTP.
    pub fn aggregate_numeric(&self, col: usize) -> Result<(u64, f64)> {
        self.schema_col(col)?;
        let mut count = 0u64;
        let mut sum = 0.0f64;
        // Main parts: code-vector streaming with a per-chain numeric table.
        for (pi, part) in self.main.parts().iter().enumerate() {
            // Lookup table over the global code space of this part.
            let null_code = part.null_code(col);
            let mut table = vec![f64::NAN; null_code as usize + 1];
            for p in self.main.parts().iter().take(pi + 1) {
                let base = p.base(col);
                for local in 0..p.dict(col).len() as u32 {
                    if let Some(x) = p.dict(col).value_of(local).as_numeric() {
                        let idx = (base + local) as usize;
                        if idx < table.len() {
                            table[idx] = x;
                        }
                    }
                }
            }
            for pos in 0..part.len() as Pos {
                if !self.visible(part.begin(pos), part.end(pos)) {
                    continue;
                }
                let code = part.code_at(pos, col);
                if code == null_code {
                    continue;
                }
                let x = table[code as usize];
                if !x.is_nan() {
                    count += 1;
                    sum += x;
                }
            }
        }
        // L2 stages: decode via dictionary once; stamps come through the
        // same lock acquisition (never re-lock inside the closure).
        let mut l2_side = |l2: &L2Delta, fence: Pos| {
            l2.with_column_stamped(col, fence, |dict, codes, begins, ends| {
                let table: Vec<f64> = dict
                    .values()
                    .iter()
                    .map(|v| v.as_numeric().unwrap_or(f64::NAN))
                    .collect();
                for (pos, &code) in codes.iter().enumerate() {
                    let begin = begins[pos].load(std::sync::atomic::Ordering::Acquire);
                    let end = ends[pos].load(std::sync::atomic::Ordering::Acquire);
                    if code == L2_NULL_CODE || !self.visible(begin, end) {
                        continue;
                    }
                    let x = table[code as usize];
                    if !x.is_nan() {
                        count += 1;
                        sum += x;
                    }
                }
            });
        };
        if let Some((frozen, fence)) = &self.l2_frozen {
            l2_side(frozen, *fence);
        }
        l2_side(&self.l2, self.l2_fence);
        // L1 rows.
        for (_, slot) in self.l1.iter() {
            if !self.visible(slot.begin(), slot.end()) {
                continue;
            }
            if let Some(x) = slot.values[col].as_numeric() {
                count += 1;
                sum += x;
            }
        }
        Ok((count, sum))
    }

    /// Group-by aggregation: for each distinct value of `group_col`, the
    /// `(count, sum)` over `agg_col` of visible rows.
    ///
    /// Columnar fast path: main parts and L2 deltas aggregate over
    /// dictionary *codes* (dense accumulators / per-code maps) and decode
    /// each group key once — the "scan-based aggregation" strength of the
    /// column layout. Only the small L1 is processed row-wise.
    pub fn group_aggregate(
        &self,
        group_col: usize,
        agg_col: usize,
    ) -> Result<Vec<(Value, u64, f64)>> {
        self.schema_col(group_col)?;
        self.schema_col(agg_col)?;
        let mut groups: rustc_hash::FxHashMap<Value, (u64, f64)> = Default::default();

        // Main parts: dense per-code accumulators.
        for (pi, part) in self.main.parts().iter().enumerate() {
            let g_null = part.null_code(group_col);
            let a_null = part.null_code(agg_col);
            // Numeric lookup table for the aggregate column over the chain
            // prefix ending at this part.
            let mut num = vec![f64::NAN; a_null as usize + 1];
            for p in self.main.parts().iter().take(pi + 1) {
                let base = p.base(agg_col);
                for local in 0..p.dict(agg_col).len() as u32 {
                    let idx = (base + local) as usize;
                    if idx < num.len() {
                        num[idx] = p
                            .dict(agg_col)
                            .value_of(local)
                            .as_numeric()
                            .unwrap_or(f64::NAN);
                    }
                }
            }
            let mut acc = vec![(0u64, 0.0f64); g_null as usize + 1];
            for pos in 0..part.len() as Pos {
                if !self.visible(part.begin(pos), part.end(pos)) {
                    continue;
                }
                let g = part.code_at(pos, group_col) as usize;
                let e = &mut acc[g];
                e.0 += 1;
                let a = part.code_at(pos, agg_col);
                if a != a_null {
                    let x = num[a as usize];
                    if !x.is_nan() {
                        e.1 += x;
                    }
                }
            }
            for (code, (c, s)) in acc.into_iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let key = if code as u32 == g_null {
                    Value::Null
                } else {
                    self.main
                        .value_of_code(group_col, code as u32)
                        .expect("group code resolves in the chain")
                };
                let e = groups.entry(key).or_insert((0, 0.0));
                e.0 += c;
                e.1 += s;
            }
        }

        // L2 stages: per-code accumulation through the unsorted dictionary.
        let mut l2_side = |l2: &L2Delta, fence: Pos| {
            let (decoded, null_acc) = l2.with_two_columns_stamped(
                group_col,
                agg_col,
                fence,
                |gd, gc, ad, ac, begins, ends| {
                    let num_table: Vec<f64> = ad
                        .values()
                        .iter()
                        .map(|v| v.as_numeric().unwrap_or(f64::NAN))
                        .collect();
                    let mut acc: rustc_hash::FxHashMap<hana_dict::Code, (u64, f64)> =
                        Default::default();
                    let mut null_acc = (0u64, 0.0f64);
                    for pos in 0..gc.len() {
                        let begin = begins[pos].load(std::sync::atomic::Ordering::Acquire);
                        let end = ends[pos].load(std::sync::atomic::Ordering::Acquire);
                        if !self.visible(begin, end) {
                            continue;
                        }
                        let e = if gc[pos] == L2_NULL_CODE {
                            &mut null_acc
                        } else {
                            acc.entry(gc[pos]).or_insert((0, 0.0))
                        };
                        e.0 += 1;
                        let a = ac[pos];
                        if a != L2_NULL_CODE {
                            let x = num_table[a as usize];
                            if !x.is_nan() {
                                e.1 += x;
                            }
                        }
                    }
                    let decoded: Vec<(Value, u64, f64)> = acc
                        .into_iter()
                        .map(|(code, (c, s))| (gd.value_of(code).clone(), c, s))
                        .collect();
                    (decoded, null_acc)
                },
            );
            for (key, c, s) in decoded {
                let e = groups.entry(key).or_insert((0, 0.0));
                e.0 += c;
                e.1 += s;
            }
            if null_acc.0 > 0 {
                let e = groups.entry(Value::Null).or_insert((0, 0.0));
                e.0 += null_acc.0;
                e.1 += null_acc.1;
            }
        };
        if let Some((frozen, fence)) = &self.l2_frozen {
            l2_side(frozen, *fence);
        }
        l2_side(&self.l2, self.l2_fence);

        // L1 rows.
        for (_, slot) in self.l1.iter() {
            if !self.visible(slot.begin(), slot.end()) {
                continue;
            }
            let e = groups
                .entry(slot.values[group_col].clone())
                .or_insert((0, 0.0));
            e.0 += 1;
            if let Some(x) = slot.values[agg_col].as_numeric() {
                e.1 += x;
            }
        }

        let mut out: Vec<(Value, u64, f64)> =
            groups.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// The merged global sorted dictionary over all three stages (§3.1),
    /// including values of rows not visible to this snapshot (a dictionary
    /// property, as in the paper).
    pub fn global_sorted_dict(&self, col: usize) -> Result<GlobalSortedDict> {
        self.schema_col(col)?;
        // Main side: if the chain has several parts, merge their dictionary
        // values into one sorted dictionary view first.
        let main_dict = if self.main.parts().len() == 1 {
            self.main.parts()[0].dict(col).clone()
        } else {
            let mut vals: Vec<Value> = Vec::new();
            for p in self.main.parts() {
                vals.extend(p.dict(col).iter());
            }
            hana_dict::SortedDict::from_values(vals)
        };
        let mut l1_values: Vec<Value> =
            self.l1.iter().map(|(_, s)| s.values[col].clone()).collect();
        // Frozen L2 values fold into the L1 side of the three-way merge.
        if let Some((frozen, fence)) = &self.l2_frozen {
            frozen.with_column(col, *fence, |dict, _| {
                l1_values.extend(dict.values().iter().cloned());
            });
        }
        Ok(self.l2.with_column(col, self.l2_fence, |dict, _| {
            GlobalSortedDict::build(&main_dict, dict, &l1_values)
        }))
    }

    /// Debugging: every physical version matching `col = v` with raw MVCC
    /// stamps, its stage, and whether this view considers it visible.
    #[doc(hidden)]
    pub fn debug_versions(&self, col: usize, v: &Value) -> Vec<(RowId, u64, u64, String, bool)> {
        let mut out = Vec::new();
        for hit in self.main.positions_eq(col, v) {
            let part = &self.main.parts()[hit.part];
            let (b, e) = (part.begin(hit.pos), part.end(hit.pos));
            out.push((
                part.row_id(hit.pos),
                b,
                e,
                format!("main[{}]", hit.part),
                self.visible(b, e),
            ));
        }
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in frozen.positions_eq(col, v, *fence) {
                let (b, e) = (frozen.begin(pos), frozen.end(pos));
                out.push((
                    frozen.row_id(pos),
                    b,
                    e,
                    "l2-frozen".into(),
                    self.visible(b, e),
                ));
            }
        }
        for pos in self.l2.positions_eq(col, v, self.l2_fence) {
            let (b, e) = (self.l2.begin(pos), self.l2.end(pos));
            out.push((self.l2.row_id(pos), b, e, "l2".into(), self.visible(b, e)));
        }
        for (p, slot) in self.l1.iter() {
            if &slot.values[col] == v {
                let (b, e) = (slot.begin(), slot.end());
                out.push((slot.row_id, b, e, format!("l1@{p}"), self.visible(b, e)));
            }
        }
        out
    }

    /// Rows of this view per stage `(L1, frozen+open L2, main)` —
    /// diagnostics for the lifecycle benches.
    pub fn stage_row_counts(&self) -> (usize, usize, usize) {
        let l2 = self.l2_fence as usize + self.l2_frozen.as_ref().map_or(0, |(_, f)| *f as usize);
        (self.l1.len(), l2, self.main.total_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig};
    use hana_txn::{IsolationLevel, TxnManager};

    fn setup() -> (Arc<TxnManager>, Arc<UnifiedTable>) {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("city", DataType::Str),
                ColumnDef::new("amount", DataType::Double),
            ],
        )
        .unwrap();
        let t = UnifiedTable::standalone(schema, TableConfig::default(), Arc::clone(&mgr));
        (mgr, t)
    }

    #[test]
    fn insert_then_read_through_l1() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(
            &txn,
            vec![Value::Int(1), Value::str("Los Gatos"), Value::double(10.0)],
        )
        .unwrap();
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        assert_eq!(read.count(), 1);
        let rows = read.point(1, &Value::str("Los Gatos")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
        let (c, s) = read.aggregate_numeric(2).unwrap();
        assert_eq!(c, 1);
        assert_eq!(s, 10.0);
        assert_eq!(read.stage_row_counts(), (1, 0, 0));
    }

    #[test]
    fn uncommitted_rows_invisible_to_others() {
        let (mgr, t) = setup();
        let txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, vec![Value::Int(1), Value::str("x"), Value::Null])
            .unwrap();
        // Own statement sees it; others don't.
        assert_eq!(t.read(&txn).count(), 1);
        let other = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&other).count(), 0);
    }

    #[test]
    fn range_and_group_aggregate() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for (i, city) in ["Campbell", "Daily City", "Los Gatos", "Saratoga"]
            .iter()
            .enumerate()
        {
            t.insert(
                &txn,
                vec![
                    Value::Int(i as i64),
                    Value::str(*city),
                    Value::double(i as f64),
                ],
            )
            .unwrap();
        }
        t.insert(
            &txn,
            vec![Value::Int(9), Value::str("Campbell"), Value::double(5.0)],
        )
        .unwrap();
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        let hits = read
            .range(
                1,
                Bound::Included(&Value::str("C")),
                Bound::Excluded(&Value::str("M")),
            )
            .unwrap();
        assert_eq!(hits.len(), 4); // Campbell ×2, Daily City, Los Gatos
        let groups = read.group_aggregate(1, 2).unwrap();
        let campbell = groups
            .iter()
            .find(|g| g.0 == Value::str("Campbell"))
            .unwrap();
        assert_eq!(campbell.1, 2);
        assert_eq!(campbell.2, 5.0);
    }

    #[test]
    fn global_dict_spans_stages() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for (i, c) in ["b", "a", "c"].iter().enumerate() {
            t.insert(
                &txn,
                vec![Value::Int(i as i64), Value::str(*c), Value::Null],
            )
            .unwrap();
        }
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let g = t.read(&reader).global_sorted_dict(1).unwrap();
        let vals: Vec<Value> = g.iter().map(|(v, _)| v.clone()).collect();
        assert_eq!(vals, ["a", "b", "c"].map(Value::str).to_vec());
    }
}
