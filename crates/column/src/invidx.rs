//! Inverted indexes: dictionary code → row positions.
//!
//! *"In order to implement efficient validations of uniqueness constraints,
//! the unified table provides inverted indexes for the delta and main
//! structures"* (§3.1). The main store's index is an immutable CSR layout
//! ([`InvertedIndex`]); the L2-delta needs append support and uses per-code
//! growable lists ([`GrowableInvertedIndex`]).

use crate::{Code, Pos};

/// Immutable CSR inverted index for a frozen (main) column.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// `offsets[c]..offsets[c+1]` indexes into `positions` for code `c`.
    offsets: Vec<u32>,
    positions: Vec<Pos>,
}

impl InvertedIndex {
    /// Build from a code iterator over positions `0..len` with codes in
    /// `0..num_codes`.
    pub fn build(codes: impl Iterator<Item = Code> + Clone, num_codes: usize) -> Self {
        let mut counts = vec![0u32; num_codes + 1];
        let mut len = 0usize;
        for c in codes.clone() {
            counts[c as usize + 1] += 1;
            len += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut positions = vec![0 as Pos; len];
        for (p, c) in codes.enumerate() {
            let slot = cursor[c as usize];
            positions[slot as usize] = p as Pos;
            cursor[c as usize] += 1;
        }
        InvertedIndex { offsets, positions }
    }

    /// Positions carrying `code`, in ascending order.
    pub fn positions(&self, code: Code) -> &[Pos] {
        let c = code as usize;
        if c + 1 >= self.offsets.len() {
            return &[];
        }
        &self.positions[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Number of distinct codes covered.
    pub fn num_codes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of indexed positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        (self.offsets.capacity() + self.positions.capacity()) * 4
    }
}

/// Growable inverted index for the append-only L2-delta.
#[derive(Debug, Clone, Default)]
pub struct GrowableInvertedIndex {
    lists: Vec<Vec<Pos>>,
    len: usize,
}

impl GrowableInvertedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that position `pos` carries `code`. Positions must arrive in
    /// ascending order per code (they do: the L2-delta is append-only).
    pub fn insert(&mut self, code: Code, pos: Pos) {
        let c = code as usize;
        if c >= self.lists.len() {
            self.lists.resize_with(c + 1, Vec::new);
        }
        debug_assert!(self.lists[c].last().is_none_or(|&p| p < pos));
        self.lists[c].push(pos);
        self.len += 1;
    }

    /// Positions carrying `code`, ascending.
    pub fn positions(&self, code: Code) -> &[Pos] {
        self.lists
            .get(code as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of indexed positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.lists.capacity() * std::mem::size_of::<Vec<Pos>>()
            + self.lists.iter().map(|l| l.capacity() * 4).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_build_and_lookup() {
        let codes = [2u32, 0, 2, 1, 2, 0];
        let idx = InvertedIndex::build(codes.iter().copied(), 3);
        assert_eq!(idx.positions(0), &[1, 5]);
        assert_eq!(idx.positions(1), &[3]);
        assert_eq!(idx.positions(2), &[0, 2, 4]);
        assert_eq!(idx.positions(7), &[] as &[Pos]);
        assert_eq!(idx.len(), 6);
        assert_eq!(idx.num_codes(), 3);
    }

    #[test]
    fn csr_empty() {
        let idx = InvertedIndex::build(std::iter::empty(), 0);
        assert!(idx.is_empty());
        assert_eq!(idx.positions(0), &[] as &[Pos]);
    }

    #[test]
    fn csr_code_with_no_positions() {
        let codes = [0u32, 2];
        let idx = InvertedIndex::build(codes.iter().copied(), 3);
        assert_eq!(idx.positions(1), &[] as &[Pos]);
    }

    #[test]
    fn growable_appends() {
        let mut idx = GrowableInvertedIndex::new();
        idx.insert(5, 0);
        idx.insert(1, 1);
        idx.insert(5, 2);
        assert_eq!(idx.positions(5), &[0, 2]);
        assert_eq!(idx.positions(1), &[1]);
        assert_eq!(idx.positions(99), &[] as &[Pos]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn growable_matches_csr() {
        let codes: Vec<Code> = (0..500).map(|i| (i * 31) % 13).collect();
        let csr = InvertedIndex::build(codes.iter().copied(), 13);
        let mut grow = GrowableInvertedIndex::new();
        for (p, &c) in codes.iter().enumerate() {
            grow.insert(c, p as Pos);
        }
        for c in 0..13 {
            assert_eq!(csr.positions(c), grow.positions(c), "code {c}");
        }
    }
}
