//! Single-pass column statistics driving the compression chooser and the
//! re-sorting merge's sort-column selection (paper §4.2: "the system
//! computes the 'best' sort order of the columns based on statistics from
//! main and L2-delta structures").

use crate::Code;
use rustc_hash::FxHashMap;

/// Statistics over a code vector.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeStats {
    /// Total number of codes.
    pub len: usize,
    /// Number of distinct codes.
    pub distinct: usize,
    /// Number of runs of equal adjacent codes.
    pub runs: usize,
    /// Largest code.
    pub max_code: Code,
    /// Most frequent code and its frequency.
    pub dominant: Option<(Code, usize)>,
    /// Shannon entropy over the code distribution, in bits.
    pub entropy: f64,
}

impl CodeStats {
    /// Compute statistics in one pass (plus one pass over the histogram).
    pub fn compute(codes: &[Code]) -> Self {
        let mut hist: FxHashMap<Code, usize> = FxHashMap::default();
        let mut runs = 0usize;
        let mut max_code = 0;
        let mut prev: Option<Code> = None;
        for &c in codes {
            *hist.entry(c).or_insert(0) += 1;
            if prev != Some(c) {
                runs += 1;
            }
            prev = Some(c);
            max_code = max_code.max(c);
        }
        let dominant = hist.iter().max_by_key(|&(_, &n)| n).map(|(&c, &n)| (c, n));
        let n = codes.len() as f64;
        let entropy = if codes.is_empty() {
            0.0
        } else {
            hist.values()
                .map(|&cnt| {
                    let p = cnt as f64 / n;
                    -p * p.log2()
                })
                .sum()
        };
        CodeStats {
            len: codes.len(),
            distinct: hist.len(),
            runs,
            max_code,
            dominant,
            entropy,
        }
    }

    /// Fraction of positions holding the dominant code.
    pub fn dominant_fraction(&self) -> f64 {
        match (self.dominant, self.len) {
            (Some((_, n)), len) if len > 0 => n as f64 / len as f64,
            _ => 0.0,
        }
    }

    /// Average run length; large values mean RLE-friendly data.
    pub fn avg_run_len(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.len as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let codes = vec![1, 1, 1, 2, 2, 3];
        let s = CodeStats::compute(&codes);
        assert_eq!(s.len, 6);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.runs, 3);
        assert_eq!(s.max_code, 3);
        assert_eq!(s.dominant, Some((1, 3)));
        assert!((s.dominant_fraction() - 0.5).abs() < 1e-12);
        assert!((s.avg_run_len() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_bounds() {
        // Uniform over 4 codes → 2 bits; constant → 0 bits.
        let uniform: Vec<Code> = (0..400).map(|i| i % 4).collect();
        let s = CodeStats::compute(&uniform);
        assert!((s.entropy - 2.0).abs() < 1e-9);
        let constant = vec![7 as Code; 100];
        assert!(CodeStats::compute(&constant).entropy.abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let s = CodeStats::compute(&[]);
        assert_eq!(s.len, 0);
        assert_eq!(s.runs, 0);
        assert_eq!(s.dominant, None);
        assert_eq!(s.dominant_fraction(), 0.0);
        assert_eq!(s.avg_run_len(), 0.0);
    }

    #[test]
    fn sorted_vs_shuffled_run_counts() {
        let sorted: Vec<Code> = (0..100).flat_map(|c| std::iter::repeat_n(c, 10)).collect();
        let shuffled: Vec<Code> = (0..1000).map(|i| (i * 7919) % 100).collect();
        assert!(CodeStats::compute(&sorted).runs < CodeStats::compute(&shuffled).runs);
    }
}
