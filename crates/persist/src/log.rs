//! The REDO log.
//!
//! "Logging for the REDO purpose is performed only once when new data is
//! entering the system, either within the L1-delta or for bulk inserts
//! within the L2-delta" (§3.2). Record kinds mirror exactly that protocol:
//! first-appearance data records, commit/abort records, and the data-free
//! merge *event* record. Records are framed `[len][crc][payload]`; replay
//! stops cleanly at a torn tail.
//!
//! ## Durability protocol
//!
//! Data records are *buffered* at first appearance; only transaction
//! outcomes force them to disk. Both **commit and abort** records are
//! retired through the group-commit pipeline ([`crate::group`]): the call
//! returns only once the record — and, because the log is strictly
//! append-ordered, every record sequenced before it — is fsynced. Aborts
//! flush for the same reason commits do: once `abort()` returns, a restart
//! must keep resolving that transaction's marks as rolled back instead of
//! re-deciding its fate from a log that ends mid-transaction. Recovery
//! treats transactions with neither outcome record as aborted, so a torn
//! tail can only ever *shrink* the committed set, never tear one
//! transaction's effects apart.
//!
//! ## Epochs
//!
//! The file starts with a 16-byte header: magic plus the **epoch** — the
//! savepoint version the log's records apply on top of. A savepoint doesn't
//! truncate the log in place; it *rotates* it ([`RedoLog::rotate`]): a fresh
//! header with the new epoch is written to a side file, fsynced, and
//! atomically renamed over the old log. Recovery replays records only when
//! the log's epoch matches the recovered manifest's version. This closes a
//! real crash window the in-place truncate had: dying between the superblock
//! flip and the truncate used to leave the *old* log paired with the *new*
//! manifest, and replay would re-apply rows already captured in the images.
//!
//! ## Failure containment
//!
//! An injected fault on [`flush`](Self::flush) fires *before* any byte
//! reaches the file, so the buffer survives and a later healthy flush
//! retires the same records — transient device hiccups are retryable. A
//! genuine partial write or fsync failure leaves the on-disk suffix
//! unknowable, so the log **wedges**: every later append/flush fails until a
//! successful [`rotate`](Self::rotate) re-establishes a known-good file.
//! Wedging is deliberate — retrying an fsync after it failed once silently
//! drops writes on most kernels, and appending after a partial frame would
//! bury every later record behind garbage.

use crate::codec::{crc32, Decoder, Encoder};
use crate::fault::{torn_error, FaultInjector, FaultOutcome, IoOp};
use crate::image::{decode_config, decode_schema, encode_config, encode_schema};
use crate::integrity::{envelope_crc, ArtifactKind, IntegrityState};
use hana_common::{
    HanaError, Result, RowId, Schema, TableConfig, TableId, Timestamp, TxnId, Value,
};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic of pre-checksum (legacy) log files: frames carry a plain
/// CRC32 over the payload only. Still readable and appendable — the
/// migration path for old databases.
const LOG_MAGIC_V1: [u8; 8] = *b"HANALOG1";

/// Magic of current log files: each frame's CRC32C is salted with the log
/// epoch and covers the frame length (the [`crate::integrity`] envelope
/// checksum), so a record from another epoch or with a resized payload can
/// never verify. Rotation always writes this format.
const LOG_MAGIC_V2: [u8; 8] = *b"HANALOG2";

/// Header bytes: magic + epoch (u64 LE).
const LOG_HEADER: u64 = 16;

/// Epoch reported for a log whose header is unreadable — never matches a
/// manifest version, so no record of such a file is ever replayed.
pub const NO_EPOCH: u64 = u64::MAX;

/// One REDO record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A row's first appearance via the L1-delta (insert, or the new version
    /// written by an update).
    InsertL1 {
        /// Target table.
        table: TableId,
        /// Stable record id assigned on entry.
        row_id: RowId,
        /// Writing transaction.
        txn: TxnId,
        /// Full row payload.
        row: Vec<Value>,
    },
    /// A batch of rows entering directly through the L2-delta (bulk load,
    /// "bypassing the L1-delta").
    BulkLoadL2 {
        /// Target table.
        table: TableId,
        /// Row id of the first row; the batch occupies consecutive ids.
        first_row_id: RowId,
        /// Loading transaction.
        txn: TxnId,
        /// The loaded rows.
        rows: Vec<Vec<Value>>,
    },
    /// Logical deletion (also logged for the superseded version on update).
    Delete {
        /// Target table.
        table: TableId,
        /// The record whose current version is closed.
        row_id: RowId,
        /// Deleting transaction.
        txn: TxnId,
    },
    /// Transaction commit with its timestamp.
    Commit {
        /// The committing transaction.
        txn: TxnId,
        /// Its commit timestamp.
        ts: Timestamp,
    },
    /// Transaction abort.
    Abort {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// DDL: a table was created (schema + lifecycle config).
    CreateTable {
        /// Assigned catalog id.
        table: TableId,
        /// The table schema.
        schema: Schema,
        /// Lifecycle configuration.
        config: TableConfig,
    },
    /// A merge happened — no data, just the event ("the event of the merge
    /// is written to the log").
    MergeEvent {
        /// Affected table.
        table: TableId,
        /// 0 = L1→L2, 1 = delta-to-main.
        kind: u8,
        /// Generation of the L2-delta involved.
        l2_generation: u64,
    },
}

impl LogRecord {
    fn encode(&self, e: &mut Encoder) {
        match self {
            LogRecord::InsertL1 {
                table,
                row_id,
                txn,
                row,
            } => {
                e.u8(1);
                e.u32(table.0);
                e.u64(row_id.0);
                e.u64(txn.0);
                e.u32(row.len() as u32);
                for v in row {
                    e.value(v);
                }
            }
            LogRecord::BulkLoadL2 {
                table,
                first_row_id,
                txn,
                rows,
            } => {
                e.u8(2);
                e.u32(table.0);
                e.u64(first_row_id.0);
                e.u64(txn.0);
                e.u32(rows.len() as u32);
                for row in rows {
                    e.u32(row.len() as u32);
                    for v in row {
                        e.value(v);
                    }
                }
            }
            LogRecord::Delete { table, row_id, txn } => {
                e.u8(3);
                e.u32(table.0);
                e.u64(row_id.0);
                e.u64(txn.0);
            }
            LogRecord::Commit { txn, ts } => {
                e.u8(4);
                e.u64(txn.0);
                e.u64(*ts);
            }
            LogRecord::Abort { txn } => {
                e.u8(5);
                e.u64(txn.0);
            }
            LogRecord::CreateTable {
                table,
                schema,
                config,
            } => {
                e.u8(7);
                e.u32(table.0);
                encode_schema(e, schema);
                encode_config(e, config);
            }
            LogRecord::MergeEvent {
                table,
                kind,
                l2_generation,
            } => {
                e.u8(6);
                e.u32(table.0);
                e.u8(*kind);
                e.u64(*l2_generation);
            }
        }
    }

    fn decode(d: &mut Decoder<'_>) -> Result<LogRecord> {
        Ok(match d.u8()? {
            1 => {
                let table = TableId(d.u32()?);
                let row_id = RowId(d.u64()?);
                let txn = TxnId(d.u64()?);
                let n = d.u32()? as usize;
                let mut row = Vec::with_capacity(n);
                for _ in 0..n {
                    row.push(d.value()?);
                }
                LogRecord::InsertL1 {
                    table,
                    row_id,
                    txn,
                    row,
                }
            }
            2 => {
                let table = TableId(d.u32()?);
                let first_row_id = RowId(d.u64()?);
                let txn = TxnId(d.u64()?);
                let n = d.u32()? as usize;
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    let m = d.u32()? as usize;
                    let mut row = Vec::with_capacity(m);
                    for _ in 0..m {
                        row.push(d.value()?);
                    }
                    rows.push(row);
                }
                LogRecord::BulkLoadL2 {
                    table,
                    first_row_id,
                    txn,
                    rows,
                }
            }
            3 => LogRecord::Delete {
                table: TableId(d.u32()?),
                row_id: RowId(d.u64()?),
                txn: TxnId(d.u64()?),
            },
            4 => LogRecord::Commit {
                txn: TxnId(d.u64()?),
                ts: d.u64()?,
            },
            5 => LogRecord::Abort {
                txn: TxnId(d.u64()?),
            },
            6 => LogRecord::MergeEvent {
                table: TableId(d.u32()?),
                kind: d.u8()?,
                l2_generation: d.u64()?,
            },
            7 => LogRecord::CreateTable {
                table: TableId(d.u32()?),
                schema: decode_schema(d)?,
                config: decode_config(d)?,
            },
            t => return Err(HanaError::Persist(format!("unknown log record tag {t}"))),
        })
    }
}

fn header_bytes(epoch: u64) -> [u8; LOG_HEADER as usize] {
    let mut h = [0u8; LOG_HEADER as usize];
    h[..8].copy_from_slice(&LOG_MAGIC_V2);
    h[8..].copy_from_slice(&epoch.to_le_bytes());
    h
}

/// How the record region of a log file ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogTail {
    /// The region ends exactly at a frame boundary — a clean shutdown.
    Clean,
    /// An *incomplete* trailing frame: the signature of a crash mid-write.
    /// Torn writes only ever produce prefixes (and a torn flush wedges the
    /// log), so an incomplete frame is always safe to truncate — the
    /// record's transaction never got a durable outcome.
    Torn,
    /// A **complete** frame whose checksum failed (or that was undecodable
    /// despite a valid checksum). A tear cannot produce this — the frame's
    /// every byte is present — so it is bit rot, and replay must refuse to
    /// proceed rather than silently drop this record and everything after
    /// it.
    Corrupt {
        /// Byte offset of the bad frame within the record region.
        offset: usize,
        /// What failed.
        reason: String,
    },
}

/// The per-frame checksum. Legacy files use a plain CRC32 of the payload;
/// current files use the envelope CRC32C salted with the log epoch (also
/// covering the frame length).
fn frame_crc(legacy: bool, epoch: u64, payload: &[u8]) -> u32 {
    if legacy {
        crc32(payload)
    } else {
        envelope_crc(ArtifactKind::LogRecord, epoch, payload)
    }
}

/// Parse the record region of a log file: the intact records, the byte
/// length of the valid prefix (relative to the region start), and how the
/// region ends — distinguishing a clean torn tail from mid-log corruption.
fn scan_records(data: &[u8], epoch: u64, legacy: bool) -> (Vec<LogRecord>, usize, LogTail) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos + 8 <= data.len() {
        let len =
            u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]) as usize;
        let crc = u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]]);
        if pos + 8 + len > data.len() {
            return (out, pos, LogTail::Torn); // incomplete frame
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if frame_crc(legacy, epoch, payload) != crc {
            let reason = format!("checksum mismatch in complete record frame {}", out.len());
            return (
                out,
                pos,
                LogTail::Corrupt {
                    offset: pos,
                    reason,
                },
            );
        }
        match LogRecord::decode(&mut Decoder::new(payload)) {
            Ok(rec) => out.push(rec),
            Err(e) => {
                let reason = format!(
                    "record frame {} verified its checksum but failed to decode ({e})",
                    out.len()
                );
                return (
                    out,
                    pos,
                    LogTail::Corrupt {
                        offset: pos,
                        reason,
                    },
                );
            }
        }
        pos += 8 + len;
    }
    let tail = if pos == data.len() {
        LogTail::Clean
    } else {
        LogTail::Torn
    };
    (out, pos, tail)
}

fn corrupt_log_error(path: &Path, offset: usize, reason: &str) -> HanaError {
    HanaError::Corruption(format!(
        "REDO log {}: {reason} at byte offset {offset} of the record region; \
         a torn tail would be truncated, but a complete frame with a bad \
         checksum is on-disk corruption — refusing to replay garbage",
        path.display()
    ))
}

struct LogInner {
    file: File,
    /// Records framed but not yet flushed. The log owns its buffer (no
    /// `BufWriter`) so that nothing can reach the file outside an explicit
    /// [`RedoLog::flush`] — the fault injector sees every byte.
    buf: Vec<u8>,
    epoch: u64,
    /// True for a pre-checksum (`HANALOG1`) file: appends keep using the
    /// legacy frame CRC so the file stays self-consistent; the next
    /// rotation upgrades it to the current format.
    legacy: bool,
    /// Set after a genuine partial write / failed fsync: the on-disk suffix
    /// is unknowable, so appends and flushes fail until the next rotation.
    wedged: Option<String>,
}

/// Append-only, checksummed, epoch-headered REDO log file.
pub struct RedoLog {
    path: PathBuf,
    inner: Mutex<LogInner>,
    injector: Arc<FaultInjector>,
    integrity: Arc<IntegrityState>,
}

impl RedoLog {
    /// Open (or create) the log at `path`.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_injector(path, FaultInjector::new())
    }

    /// Open with an explicit fault injector (shared with the rest of the
    /// persistence instance).
    pub fn open_with_injector(path: &Path, injector: Arc<FaultInjector>) -> Result<Self> {
        Self::open_full(path, injector, Arc::new(IntegrityState::new()))
    }

    /// Open with explicit fault-injection and integrity accounting.
    ///
    /// A torn tail left by a crash is truncated away here, so post-recovery
    /// appends land after the last intact record instead of behind garbage.
    /// A **complete** frame with a bad checksum is a different animal: it
    /// cannot come from a tear, so the open fails closed with
    /// [`HanaError::Corruption`] instead of silently dropping records.
    pub fn open_full(
        path: &Path,
        injector: Arc<FaultInjector>,
        integrity: Arc<IntegrityState>,
    ) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let (epoch, legacy) = if len < LOG_HEADER {
            // New (or torn-at-birth) file: stamp epoch 0. Durable with the
            // first flush; a crash before that reads back as an empty
            // epoch-0 log either way.
            file.set_len(0)?;
            file.write_all(&header_bytes(0))?;
            (0, false)
        } else {
            let mut hdr = [0u8; LOG_HEADER as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut hdr)?;
            let legacy = if hdr[..8] == LOG_MAGIC_V1 {
                true
            } else if hdr[..8] == LOG_MAGIC_V2 {
                false
            } else {
                // A sized file without a log magic was either damaged or
                // never a log; both are fail-closed (truncating it could
                // silently discard committed records).
                integrity.note_log_corruption();
                return Err(HanaError::Corruption(format!(
                    "{} is not a REDO log (bad magic)",
                    path.display()
                )));
            };
            let epoch = u64::from_le_bytes([
                hdr[8], hdr[9], hdr[10], hdr[11], hdr[12], hdr[13], hdr[14], hdr[15],
            ]);
            // Truncate a clean torn tail before appending; refuse mid-log
            // corruption outright.
            let mut data = Vec::with_capacity((len - LOG_HEADER) as usize);
            file.read_to_end(&mut data)?;
            let (records, valid, tail) = scan_records(&data, epoch, legacy);
            if let LogTail::Corrupt { offset, reason } = tail {
                integrity.note_log_corruption();
                return Err(corrupt_log_error(path, offset, &reason));
            }
            integrity.note_log_records_verified(records.len() as u64);
            if (valid as u64) < len - LOG_HEADER {
                file.set_len(LOG_HEADER + valid as u64)?;
            }
            file.seek(SeekFrom::End(0))?;
            (epoch, legacy)
        };
        Ok(RedoLog {
            path: path.to_path_buf(),
            inner: Mutex::new(LogInner {
                file,
                buf: Vec::new(),
                epoch,
                legacy,
                wedged: None,
            }),
            injector,
            integrity,
        })
    }

    /// The fault injector every log operation consults.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The integrity accounting scan-time verification lands in.
    pub fn integrity(&self) -> &Arc<IntegrityState> {
        &self.integrity
    }

    /// The epoch in the current file's header (the savepoint version its
    /// records apply on top of).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// True when a partial write / failed fsync has wedged the log (see
    /// module docs); only [`rotate`](Self::rotate) clears it.
    pub fn is_wedged(&self) -> bool {
        self.inner.lock().wedged.is_some()
    }

    /// Explicitly wedge the log. The savepoint uses this when the new
    /// manifest may already be durable but the log rotation failed: any
    /// record appended to the stale-epoch file would be silently ignored by
    /// recovery, so failing loudly until a rotation succeeds is the only
    /// honest behaviour.
    pub fn wedge(&self, reason: &str) {
        self.inner.lock().wedged = Some(reason.into());
    }

    fn wedged_error(msg: &str) -> HanaError {
        HanaError::Persist(format!(
            "REDO log is wedged after an earlier I/O failure ({msg}); \
             a successful savepoint (log rotation) is required to resume"
        ))
    }

    /// Append one record (buffered; call [`flush`](Self::flush) to force it
    /// to the OS, as commit does).
    pub fn append(&self, rec: &LogRecord) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(msg) = &inner.wedged {
            return Err(Self::wedged_error(msg));
        }
        let outcome = self.injector.check(IoOp::LogAppend)?;
        let mut e = Encoder::new();
        rec.encode(&mut e);
        let payload = e.into_bytes();
        let crc = frame_crc(inner.legacy, inner.epoch, &payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc.to_le_bytes());
        frame.extend_from_slice(&payload);
        match outcome {
            FaultOutcome::Torn { keep } => {
                // Power loss mid-append: only a frame prefix is buffered.
                // The injector is now in the crashed state, so this prefix
                // can never be flushed by this instance.
                let keep = keep.min(frame.len());
                inner.buf.extend_from_slice(&frame[..keep]);
                Err(torn_error())
            }
            FaultOutcome::FlipBit { bit } => {
                // Silent bit rot: the damaged frame is buffered and the
                // append "succeeds". Only replay-time verification can
                // catch it.
                let byte = (bit as usize / 8) % frame.len();
                frame[byte] ^= 1 << (bit % 8);
                inner.buf.extend_from_slice(&frame);
                Ok(())
            }
            _ => {
                inner.buf.extend_from_slice(&frame);
                Ok(())
            }
        }
    }

    /// Flush buffered records and fsync.
    ///
    /// On an injected error nothing reaches the file and the buffer
    /// survives — a later flush retries the same records. On a genuine
    /// partial write or fsync failure the log wedges (see module docs).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(msg) = &inner.wedged {
            return Err(Self::wedged_error(msg));
        }
        let mut flip: Option<u64> = None;
        match self.injector.check(IoOp::LogSync) {
            Ok(FaultOutcome::Proceed) | Ok(FaultOutcome::Stale) => {}
            Ok(FaultOutcome::FlipBit { bit }) => flip = Some(bit),
            Ok(FaultOutcome::Torn { keep }) => {
                // Power loss mid-flush: a prefix of the buffered bytes
                // reaches the file. The instance is dead (crashed injector);
                // wedge so no late caller trusts this handle again.
                let keep = keep.min(inner.buf.len());
                let torn: Vec<u8> = inner.buf[..keep].to_vec();
                let _ = inner.file.write_all(&torn);
                inner.buf.clear();
                inner.wedged = Some("torn flush".into());
                return Err(torn_error());
            }
            Err(e) => return Err(e),
        }
        if !inner.buf.is_empty() {
            let mut buf = std::mem::take(&mut inner.buf);
            if let Some(bit) = flip {
                // Silent bit rot between buffer and platter: the flush
                // still reports success.
                let byte = (bit as usize / 8) % buf.len();
                buf[byte] ^= 1 << (bit % 8);
            }
            if let Err(e) = inner.file.write_all(&buf) {
                inner.wedged = Some(format!("partial log write: {e}"));
                return Err(e.into());
            }
        }
        if let Err(e) = inner.file.sync_data() {
            inner.wedged = Some(format!("log fsync failed: {e}"));
            return Err(e.into());
        }
        Ok(())
    }

    /// Record bytes durable in the log file (header excluded; call after a
    /// flush).
    pub fn len_bytes(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?
            .len()
            .saturating_sub(LOG_HEADER))
    }

    /// Rotate to a fresh, empty log with `epoch` in its header (after a
    /// completed savepoint). The new file is written beside the old one,
    /// fsynced, then atomically renamed into place — at no instant does the
    /// path hold a half-truncated log. Buffered-but-unflushed records are
    /// discarded (their data is covered by the savepoint images; their
    /// transactions never got a durable outcome). A successful rotation
    /// also clears the wedged state — and always writes the current
    /// (checksummed-envelope) format, upgrading a legacy file in place.
    pub fn rotate(&self, epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        if let FaultOutcome::Torn { .. } = self.injector.check(IoOp::LogRotate)? {
            return Err(torn_error());
        }
        let tmp = self.path.with_extension("log.new");
        let mut f = File::create(&tmp)?;
        f.write_all(&header_bytes(epoch))?;
        f.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        inner.file = file;
        inner.buf.clear();
        inner.epoch = epoch;
        inner.legacy = false;
        inner.wedged = None;
        Ok(())
    }

    /// Read all intact records from a log file, truncating the view at a
    /// clean torn tail (the crash-recovery contract) but **failing** with
    /// [`HanaError::Corruption`] on a complete frame with a bad checksum.
    /// Epoch-blind — see [`read_all_with_epoch`](Self::read_all_with_epoch)
    /// for recovery.
    pub fn read_all(path: &Path) -> Result<Vec<LogRecord>> {
        Ok(Self::read_all_with_epoch(path)?.1)
    }

    /// Read a log file's epoch and intact records. A missing or shorter-
    /// than-header file reads as an empty epoch-0 log (the state a freshly
    /// created log crashes into); a wrong magic reads as [`NO_EPOCH`] so
    /// its bytes are never replayed; mid-log corruption (a complete frame
    /// failing its checksum — impossible for a torn write to produce) is a
    /// hard [`HanaError::Corruption`]: replaying the prefix would silently
    /// drop committed transactions.
    pub fn read_all_with_epoch(path: &Path) -> Result<(u64, Vec<LogRecord>)> {
        let mut data = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut data)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, Vec::new())),
            Err(e) => return Err(e.into()),
        }
        if (data.len() as u64) < LOG_HEADER {
            return Ok((0, Vec::new()));
        }
        let legacy = if data[..8] == LOG_MAGIC_V1 {
            true
        } else if data[..8] == LOG_MAGIC_V2 {
            false
        } else {
            return Ok((NO_EPOCH, Vec::new()));
        };
        let epoch = u64::from_le_bytes([
            data[8], data[9], data[10], data[11], data[12], data[13], data[14], data[15],
        ]);
        let (records, _, tail) = scan_records(&data[LOG_HEADER as usize..], epoch, legacy);
        if let LogTail::Corrupt { offset, reason } = tail {
            return Err(corrupt_log_error(path, offset, &reason));
        }
        Ok((epoch, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultErrorKind, FaultPolicy};
    use tempfile::tempdir;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::InsertL1 {
                table: TableId(1),
                row_id: RowId(10),
                txn: TxnId(3),
                row: vec![Value::Int(7), Value::str("x"), Value::Null],
            },
            LogRecord::BulkLoadL2 {
                table: TableId(1),
                first_row_id: RowId(11),
                txn: TxnId(3),
                rows: vec![vec![Value::Int(1)], vec![Value::double(2.5)]],
            },
            LogRecord::Delete {
                table: TableId(1),
                row_id: RowId(10),
                txn: TxnId(4),
            },
            LogRecord::Commit {
                txn: TxnId(3),
                ts: 99,
            },
            LogRecord::Abort { txn: TxnId(4) },
            LogRecord::MergeEvent {
                table: TableId(1),
                kind: 1,
                l2_generation: 5,
            },
            LogRecord::CreateTable {
                table: TableId(2),
                schema: hana_common::Schema::new(
                    "t2",
                    vec![hana_common::ColumnDef::new("x", hana_common::DataType::Int).unique()],
                )
                .unwrap(),
                config: TableConfig::small(),
            },
        ]
    }

    #[test]
    fn append_flush_read_round_trip() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(got, sample_records());
        assert_eq!(log.epoch(), 0);
    }

    #[test]
    fn missing_file_reads_empty() {
        let dir = tempdir().unwrap();
        let got = RedoLog::read_all(&dir.path().join("nope.log")).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        // Simulate a crash mid-write: append half a frame.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap();
        }
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(got, sample_records());
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        log.append(&sample_records()[3]).unwrap();
        log.flush().unwrap();
        drop(log);
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap(); // torn frame
        }
        // Reopen and keep writing: the new record must be readable (i.e. it
        // landed after the last intact record, not after the garbage).
        let log = RedoLog::open(&path).unwrap();
        log.append(&sample_records()[4]).unwrap();
        log.flush().unwrap();
        let got = RedoLog::read_all(&path).unwrap();
        assert_eq!(
            got,
            vec![sample_records()[3].clone(), sample_records()[4].clone()]
        );
    }

    #[test]
    fn corrupt_record_refuses_replay() {
        // PR 10 contract change: a *complete* frame with a bad checksum is
        // bit rot, not a torn tail — replay refuses to proceed (fails
        // closed with the named Corruption error) instead of silently
        // dropping the record and everything after it.
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        // Flip a byte inside the last record's payload.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 2] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let err = RedoLog::read_all(&path).unwrap_err();
        assert!(matches!(err, HanaError::Corruption(_)), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        // Reopening for append refuses too — and counts the detection.
        let integrity = Arc::new(IntegrityState::new());
        let err = RedoLog::open_full(&path, FaultInjector::new(), Arc::clone(&integrity))
            .err()
            .unwrap();
        assert!(matches!(err, HanaError::Corruption(_)), "{err}");
        assert_eq!(integrity.stats().log_corruptions, 1);
    }

    #[test]
    fn corrupt_mid_log_record_refuses_replay() {
        // Corruption in the *middle* (not the last frame) is equally fatal.
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.flush().unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[LOG_HEADER as usize + 10] ^= 0x01; // first record's payload
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            RedoLog::read_all(&path),
            Err(HanaError::Corruption(_))
        ));
    }

    #[test]
    fn injected_flush_bit_flip_is_caught_at_replay() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.injector()
            .arm(FaultPolicy::flip_bit(IoOp::LogSync, 0, 200));
        log.flush().unwrap(); // silent corruption: the flush "succeeds"
        assert!(!log.is_wedged());
        assert!(matches!(
            RedoLog::read_all(&path),
            Err(HanaError::Corruption(_))
        ));
    }

    #[test]
    fn epoch_salt_binds_records_to_their_log() {
        // Splice an (intact, checksummed) record region from an epoch-0 log
        // into an epoch-1 header: every frame must fail verification — the
        // epoch salt prevents a stale log's records from replaying under a
        // different epoch even if the header bytes are confused.
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        log.append(&sample_records()[3]).unwrap();
        log.flush().unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw[8..16].copy_from_slice(&1u64.to_le_bytes()); // epoch 0 → 1
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            RedoLog::read_all(&path),
            Err(HanaError::Corruption(_))
        ));
    }

    #[test]
    fn legacy_log_reads_appends_and_upgrades_on_rotation() {
        // A pre-checksum (HANALOG1) file keeps working: its records read
        // back, new appends stay legacy-framed (self-consistent file), and
        // the next rotation upgrades the format.
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        // Hand-write a legacy log: HANALOG1 header + legacy-framed record.
        let mut e = Encoder::new();
        sample_records()[3].encode(&mut e);
        let payload = e.into_bytes();
        let mut raw = Vec::new();
        raw.extend_from_slice(b"HANALOG1");
        raw.extend_from_slice(&5u64.to_le_bytes()); // epoch 5
        raw.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        raw.extend_from_slice(&crc32(&payload).to_le_bytes());
        raw.extend_from_slice(&payload);
        std::fs::write(&path, &raw).unwrap();

        let (epoch, recs) = RedoLog::read_all_with_epoch(&path).unwrap();
        assert_eq!(epoch, 5);
        assert_eq!(recs, vec![sample_records()[3].clone()]);

        let log = RedoLog::open(&path).unwrap();
        assert_eq!(log.epoch(), 5);
        log.append(&sample_records()[4]).unwrap();
        log.flush().unwrap();
        let (_, recs) = RedoLog::read_all_with_epoch(&path).unwrap();
        assert_eq!(recs.len(), 2, "legacy append stays readable");

        log.rotate(6).unwrap();
        log.append(&sample_records()[3]).unwrap();
        log.flush().unwrap();
        drop(log);
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..8], b"HANALOG2", "rotation upgrades the format");
        let (epoch, recs) = RedoLog::read_all_with_epoch(&path).unwrap();
        assert_eq!(epoch, 6);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn rotate_clears_and_log_stays_usable() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        log.append(&sample_records()[0]).unwrap();
        log.flush().unwrap();
        assert!(log.len_bytes().unwrap() > 0);
        log.rotate(1).unwrap();
        assert_eq!(log.len_bytes().unwrap(), 0);
        assert_eq!(log.epoch(), 1);
        log.append(&sample_records()[3]).unwrap();
        log.flush().unwrap();
        let (epoch, got) = RedoLog::read_all_with_epoch(&path).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(got, vec![sample_records()[3].clone()]);
        // Reopen picks the rotated epoch back up.
        drop(log);
        let log = RedoLog::open(&path).unwrap();
        assert_eq!(log.epoch(), 1);
    }

    #[test]
    fn bad_magic_reads_as_no_epoch() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        std::fs::write(&path, vec![0xABu8; 64]).unwrap();
        let (epoch, recs) = RedoLog::read_all_with_epoch(&path).unwrap();
        assert_eq!(epoch, NO_EPOCH);
        assert!(recs.is_empty());
        assert!(RedoLog::open(&path).is_err(), "refuses to append to it");
    }

    #[test]
    fn injected_flush_failure_is_retryable() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        log.append(&sample_records()[3]).unwrap();
        log.injector()
            .arm(FaultPolicy::fail_nth(IoOp::LogSync, 0, FaultErrorKind::Eio));
        assert!(log.flush().is_err());
        assert!(!log.is_wedged(), "injected faults fire before any byte");
        // The buffer survived: a healthy retry lands the same record.
        log.flush().unwrap();
        assert_eq!(
            RedoLog::read_all(&path).unwrap(),
            vec![sample_records()[3].clone()]
        );
    }

    #[test]
    fn torn_flush_wedges_until_rotation() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.injector().arm(FaultPolicy::torn(IoOp::LogSync, 0, 5));
        assert!(log.flush().is_err());
        assert!(log.is_wedged());
        log.injector().disarm();
        assert!(log.append(&sample_records()[3]).is_err());
        assert!(log.flush().is_err());
        // The torn prefix parses as an empty log (frame incomplete).
        assert!(RedoLog::read_all(&path).unwrap().is_empty());
        // Rotation re-establishes a usable log.
        log.rotate(1).unwrap();
        assert!(!log.is_wedged());
        log.append(&sample_records()[3]).unwrap();
        log.flush().unwrap();
        assert_eq!(RedoLog::read_all(&path).unwrap().len(), 1);
    }

    #[test]
    fn merge_event_is_small() {
        // The merge logs an event, not the data (§3.2): the record must be
        // tiny regardless of how much data moved.
        let mut e = Encoder::new();
        LogRecord::MergeEvent {
            table: TableId(1),
            kind: 0,
            l2_generation: 123,
        }
        .encode(&mut e);
        assert!(e.len() < 32);
    }
}
