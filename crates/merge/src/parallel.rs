//! Indexed fan-out shared by the merge and scan engines.
//!
//! All three §4 merges (classic, re-sorting, partial) spend their time in
//! embarrassingly-parallel per-column work: dictionary merge, code
//! translation, and value-index rebuild touch one column at a time and
//! share nothing but the immutable [`MergeInput`](crate::MergeInput) and
//! survivor list. [`map_indexed`] fans that loop out over a bounded pool of
//! scoped worker threads; the scan engine in `hana-core` reuses the same
//! primitive with row-chunk indexes instead of column indexes.
//!
//! Guarantees:
//!
//! * **Bit-identical results.** Workers claim indexes from an atomic
//!   counter and return `(index, value)` pairs; the caller reassembles the
//!   output strictly in index order, so scheduling cannot influence the
//!   merged structure.
//! * **Graceful serial fallback.** A worker count of 1 (or a single-item
//!   job list) never spawns; and if the OS refuses a thread mid-fan-out,
//!   the scoped-thread layer runs that worker's share inline on the
//!   spawning thread instead of failing the job.
//! * **Panic transparency.** A panicking job propagates to the caller
//!   exactly as it would from the serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a requested worker count: `0` means "one per logical CPU",
/// anything else is taken literally.
pub fn effective_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Compute `f(0), f(1), …, f(arity - 1)` on up to `workers` threads and
/// return the results in index order.
pub fn map_indexed<T, F>(arity: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(arity);
    if workers <= 1 {
        return (0..arity).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let scope_result = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|_| {
                    let mut done = Vec::new();
                    loop {
                        let col = next.fetch_add(1, Ordering::Relaxed);
                        if col >= arity {
                            break;
                        }
                        done.push((col, f(col)));
                    }
                    done
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = (0..arity).map(|_| None).collect();
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (col, value) in pairs {
                        debug_assert!(slots[col].is_none(), "column claimed once");
                        slots[col] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every column index was claimed"))
            .collect::<Vec<T>>()
    });
    match scope_result {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn parallel_matches_serial_order() {
        let serial = map_indexed(17, 1, |c| c * c);
        let parallel = map_indexed(17, 4, |c| c * c);
        assert_eq!(serial, parallel);
        assert_eq!(serial[3], 9);
    }

    #[test]
    fn every_column_computed_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = map_indexed(64, 8, |c| {
            calls.fetch_add(1, Ordering::SeqCst);
            c
        });
        assert_eq!(calls.load(Ordering::SeqCst), 64);
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_arities() {
        assert_eq!(map_indexed(0, 8, |c| c), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 8, |c| c + 10), vec![10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            map_indexed(8, 4, |c| {
                if c == 5 {
                    panic!("column job failed");
                }
                c
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn auto_workers_positive() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }
}
