//! Cross-crate transaction semantics: both isolation levels, conflicts,
//! aborts, and interaction with merges.

use hana_common::{ColumnDef, ColumnId, DataType, HanaError, Schema, TableConfig, Value};
use hana_core::Database;
use hana_txn::IsolationLevel;

fn schema() -> Schema {
    Schema::new(
        "accounts",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("balance", DataType::Int).not_null(),
        ],
    )
    .unwrap()
}

#[test]
fn transaction_level_si_is_repeatable() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let mut seed = db.begin(IsolationLevel::Transaction);
    t.insert(&seed, vec![Value::Int(1), Value::Int(100)])
        .unwrap();
    db.commit(&mut seed).unwrap();

    let reader = db.begin(IsolationLevel::Transaction);
    let before = t.read(&reader).point(0, &Value::Int(1)).unwrap()[0][1].clone();

    let mut writer = db.begin(IsolationLevel::Transaction);
    t.update_where(
        &writer,
        ColumnId(0),
        &Value::Int(1),
        &[(ColumnId(1), Value::Int(999))],
    )
    .unwrap();
    db.commit(&mut writer).unwrap();

    // Same transaction, new statement: still the old value.
    let after = t.read(&reader).point(0, &Value::Int(1)).unwrap()[0][1].clone();
    assert_eq!(before, after);
    assert_eq!(after, Value::Int(100));
}

#[test]
fn statement_level_si_sees_fresh_commits() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let mut seed = db.begin(IsolationLevel::Transaction);
    t.insert(&seed, vec![Value::Int(1), Value::Int(100)])
        .unwrap();
    db.commit(&mut seed).unwrap();

    let reader = db.begin(IsolationLevel::Statement);
    assert_eq!(
        t.read(&reader).point(0, &Value::Int(1)).unwrap()[0][1],
        Value::Int(100)
    );
    let mut writer = db.begin(IsolationLevel::Transaction);
    t.update_where(
        &writer,
        ColumnId(0),
        &Value::Int(1),
        &[(ColumnId(1), Value::Int(999))],
    )
    .unwrap();
    db.commit(&mut writer).unwrap();
    // The *same* reader transaction now sees the new value.
    assert_eq!(
        t.read(&reader).point(0, &Value::Int(1)).unwrap()[0][1],
        Value::Int(999)
    );
}

#[test]
fn first_writer_wins_and_loser_can_retry() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let mut seed = db.begin(IsolationLevel::Transaction);
    t.insert(&seed, vec![Value::Int(1), Value::Int(0)]).unwrap();
    db.commit(&mut seed).unwrap();

    let a = db.begin(IsolationLevel::Transaction);
    let b = db.begin(IsolationLevel::Transaction);
    t.update_where(
        &a,
        ColumnId(0),
        &Value::Int(1),
        &[(ColumnId(1), Value::Int(1))],
    )
    .unwrap();
    let err = t
        .update_where(
            &b,
            ColumnId(0),
            &Value::Int(1),
            &[(ColumnId(1), Value::Int(2))],
        )
        .unwrap_err();
    assert!(matches!(err, HanaError::WriteConflict(_)));
    let mut a = a;
    db.commit(&mut a).unwrap();
    let mut b = b;
    db.abort(&mut b).unwrap();
    // Retry in a fresh transaction succeeds.
    let mut c = db.begin(IsolationLevel::Transaction);
    t.update_where(
        &c,
        ColumnId(0),
        &Value::Int(1),
        &[(ColumnId(1), Value::Int(2))],
    )
    .unwrap();
    db.commit(&mut c).unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(
        t.read(&r).point(0, &Value::Int(1)).unwrap()[0][1],
        Value::Int(2)
    );
}

#[test]
fn abort_rolls_back_inserts_updates_and_deletes() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let mut seed = db.begin(IsolationLevel::Transaction);
    t.insert(&seed, vec![Value::Int(1), Value::Int(100)])
        .unwrap();
    db.commit(&mut seed).unwrap();

    let mut bad = db.begin(IsolationLevel::Transaction);
    t.insert(&bad, vec![Value::Int(2), Value::Int(1)]).unwrap();
    t.update_where(
        &bad,
        ColumnId(0),
        &Value::Int(1),
        &[(ColumnId(1), Value::Int(0))],
    )
    .unwrap();
    db.abort(&mut bad).unwrap();

    let r = db.begin(IsolationLevel::Transaction);
    let read = t.read(&r);
    assert_eq!(read.count(), 1);
    assert_eq!(
        read.point(0, &Value::Int(1)).unwrap()[0][1],
        Value::Int(100)
    );
    assert!(read.point(0, &Value::Int(2)).unwrap().is_empty());
}

/// Aborted garbage never reaches the main store through merges.
#[test]
fn merges_discard_aborted_garbage() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    for i in 0..20 {
        if i % 2 == 0 {
            let mut txn = db.begin(IsolationLevel::Transaction);
            t.insert(&txn, vec![Value::Int(i), Value::Int(i)]).unwrap();
            db.commit(&mut txn).unwrap();
        } else {
            let mut txn = db.begin(IsolationLevel::Transaction);
            t.insert(&txn, vec![Value::Int(i), Value::Int(i)]).unwrap();
            db.abort(&mut txn).unwrap();
        }
    }
    t.force_full_merge().unwrap();
    let stats = t.stage_stats();
    assert_eq!(stats.main_rows, 10, "only committed rows reach the main");
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), 10);
}

/// Uncommitted-duplicate inserts conflict instead of violating uniqueness.
#[test]
fn concurrent_duplicate_insert_conflicts() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let a = db.begin(IsolationLevel::Transaction);
    let b = db.begin(IsolationLevel::Transaction);
    t.insert(&a, vec![Value::Int(7), Value::Int(1)]).unwrap();
    let err = t
        .insert(&b, vec![Value::Int(7), Value::Int(2)])
        .unwrap_err();
    assert!(matches!(err, HanaError::WriteConflict(_)), "{err}");
    // After a aborts, b can retry successfully in a new statement.
    let mut a = a;
    db.abort(&mut a).unwrap();
    t.insert(&b, vec![Value::Int(7), Value::Int(2)]).unwrap();
    let mut b = b;
    db.commit(&mut b).unwrap();
}

/// The GC watermark respects open transactions: versions they can still
/// see are not collected by a merge.
#[test]
fn watermark_blocks_premature_gc() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let mut seed = db.begin(IsolationLevel::Transaction);
    t.insert(&seed, vec![Value::Int(1), Value::Int(100)])
        .unwrap();
    db.commit(&mut seed).unwrap();

    // Old reader pins the snapshot.
    let pinned = db.begin(IsolationLevel::Transaction);
    let view = t.read(&pinned);

    let mut del = db.begin(IsolationLevel::Transaction);
    t.delete_where(&del, ColumnId(0), &Value::Int(1)).unwrap();
    db.commit(&mut del).unwrap();

    t.force_full_merge().unwrap();
    // New readers: gone. Pinned reader: still there.
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), 0);
    assert_eq!(view.count(), 1);
    assert_eq!(
        view.point(0, &Value::Int(1)).unwrap()[0][1],
        Value::Int(100)
    );
}
