//! F4b — parallel chunked scans vs the serial scan path, and the
//! snapshot-visibility bitmap cache.
//!
//! Claims regenerated: (1) fanning the main scan out over fixed row chunks
//! speeds up columnar aggregation without changing a single output bit;
//! (2) a part that is wholly visible under the snapshot skips per-row
//! visibility entirely; (3) when per-row checks are needed, the cached
//! bitmap makes repeated statements under one snapshot much cheaper than
//! the first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_common::{ColumnId, ScanConfig, TableConfig, Value};
use hana_core::{Database, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::{IsolationLevel, Snapshot};
use hana_workload::sales::fact_cols;
use hana_workload::{DataGen, SalesSchema};
use std::sync::Arc;

const ROWS: i64 = 100_000;

/// A main-resident sales table scanning with the given parallelism.
fn build(scan_parallelism: usize) -> (Arc<Database>, Arc<UnifiedTable>) {
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    }
    .with_scan(ScanConfig::default().with_scan_parallelism(scan_parallelism));
    let table = db.create_table(SalesSchema::fact(), cfg).unwrap();
    let mut gen = DataGen::new(7);
    let batch: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| SalesSchema::fact_row(&mut gen, i, 1_000, 200))
        .collect();
    let mut txn = db.begin(IsolationLevel::Transaction);
    table.bulk_load(&txn, batch).unwrap();
    db.commit(&mut txn).unwrap();
    table.merge_delta_as(MergeDecision::Classic).unwrap();
    (db, table)
}

fn bench_parallel_vs_serial(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_scan_parallel_vs_serial");
    g.sample_size(20);
    for (name, parallelism) in [("serial", 1), ("parallel", 0)] {
        let (db, table) = build(parallelism);
        let snap = Snapshot::at(db.txn_manager().now());
        g.bench_function(BenchmarkId::new("aggregate", name), |b| {
            b.iter(|| {
                let read = table.read_at(snap);
                let (count, sum) = read.aggregate_numeric(fact_cols::AMOUNT).unwrap();
                assert_eq!(count, ROWS as u64);
                std::hint::black_box(sum);
            })
        });
        g.bench_function(BenchmarkId::new("group_aggregate", name), |b| {
            b.iter(|| {
                let read = table.read_at(snap);
                std::hint::black_box(
                    read.group_aggregate(fact_cols::CITY, fact_cols::AMOUNT)
                        .unwrap(),
                );
            })
        });
    }
    g.finish();
}

fn bench_visibility_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_visibility_cache");
    g.sample_size(20);
    // Wholly-visible main: the summary skips per-row checks entirely.
    let (db, table) = build(1);
    let snap = Snapshot::at(db.txn_manager().now());
    g.bench_function("summary_fast_path", |b| {
        b.iter(|| {
            let read = table.read_at(snap);
            std::hint::black_box(read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
        })
    });
    // A committed delete forces per-row bitmaps.
    let mut d = db.begin(IsolationLevel::Transaction);
    table
        .delete_where(&d, ColumnId(fact_cols::ORDER_ID as u16), &Value::Int(123))
        .unwrap();
    db.commit(&mut d).unwrap();
    // Warm: one snapshot, bitmap cached after the first statement.
    let snap = Snapshot::at(db.txn_manager().now());
    table.read_at(snap).count();
    g.bench_function("bitmap_warm", |b| {
        b.iter(|| {
            let read = table.read_at(snap);
            std::hint::black_box(read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
        })
    });
    // Cold: advance the snapshot each iteration so every statement has to
    // rebuild (and re-cache) the visibility bitmap.
    g.bench_function("bitmap_cold", |b| {
        b.iter(|| {
            let mut bump = db.begin(IsolationLevel::Transaction);
            db.commit(&mut bump).unwrap();
            let read = table.read_at(Snapshot::at(db.txn_manager().now()));
            std::hint::black_box(read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_parallel_vs_serial, bench_visibility_cache);
criterion_main!(benches);
