//! The re-sorting merge (§4.2, Fig 8).
//!
//! "An extended version of the merge aims at reorganizing the content of the
//! full table to yield a data layout which provides higher compression
//! potential with respect to the data distribution of ALL columns." Because
//! the main uses positional addressing, re-sorting one column permutes every
//! column; the merge therefore produces the **row position mapping table**
//! of Fig 8 alongside the dictionary mapping tables.
//!
//! Sort-order selection follows the paper's "based on statistics from main
//! and L2-delta structures": columns are ordered by ascending cardinality
//! (fewest distinct values first — maximizing run lengths for RLE/cluster
//! encoding), and rows are sorted lexicographically under that column order.

use crate::classic::{
    assemble_part, build_merged_columns, DeltaMergeOutcome, MergeMetrics, MergedColumns,
};
use crate::parallel::map_indexed;
use crate::survivors::{collect_survivors, MergeInput, SurvivorSet};
use hana_common::Result;
use hana_store::HistoryStore;
use hana_txn::TxnManager;
use std::time::Instant;

/// Outcome of a re-sorting merge.
pub struct ResortOutcome {
    /// The regular merge outcome (new main, counts, drops).
    pub merge: DeltaMergeOutcome,
    /// Column order used as the sort key (indexes into the schema).
    pub sort_columns: Vec<usize>,
    /// Fig 8's row position mapping table: `row_mapping[old] = new`, where
    /// `old` indexes the pre-sort survivor order (old main rows first, then
    /// L2 rows) and `new` the position in the rebuilt main.
    pub row_mapping: Vec<u32>,
}

/// Choose the sort column order from column statistics.
pub(crate) fn choose_sort_order(merged: &MergedColumns) -> Vec<usize> {
    let mut order: Vec<usize> = (0..merged.dicts.len()).collect();
    order.sort_by_key(|&c| (merged.dicts[c].len(), c));
    order
}

fn apply_permutation<T: Clone>(data: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&old| data[old as usize].clone()).collect()
}

/// Run a re-sorting merge.
pub fn resort_merge(
    input: &MergeInput<'_>,
    mgr: &TxnManager,
    history: Option<&HistoryStore>,
) -> Result<ResortOutcome> {
    debug_assert!(input.l2.is_closed(), "merge consumes a closed L2-delta");
    let started = Instant::now();
    let rows_in = input.main.total_rows() + input.l2.published_len() as usize;
    let survivors = collect_survivors(input, mgr, history, input.main.iter_hits())?;
    let mut merged = build_merged_columns(input, &survivors);
    let sort_columns = choose_sort_order(&merged);

    // perm[new] = old survivor index, sorted lexicographically by the chosen
    // column order. Sorted-dictionary codes are order-preserving, so
    // comparing codes compares values.
    let n = survivors.rows.len();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| {
        for &c in &sort_columns {
            let col = &merged.codes[c];
            match col[a as usize].cmp(&col[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        a.cmp(&b) // stable tiebreak on arrival order
    });

    // Invert: row_mapping[old] = new.
    let mut row_mapping = vec![0u32; n];
    for (new, &old) in perm.iter().enumerate() {
        row_mapping[old as usize] = new as u32;
    }

    // Permute every column (fanned out like the rebuild: each column's
    // permutation is independent) and the row metadata.
    merged.codes = map_indexed(merged.codes.len(), merged.workers, |c| {
        apply_permutation(&merged.codes[c], &perm)
    });
    let rows = apply_permutation(&survivors.rows, &perm);
    let permuted = SurvivorSet {
        rows,
        dropped: survivors.dropped.clone(),
        from_main: survivors.from_main,
        from_l2: survivors.from_l2,
    };
    let paths = merged.paths.clone();
    let workers = merged.workers;
    let new_main = assemble_part(input, &permuted, merged);
    let metrics = MergeMetrics::measure(
        rows_in,
        permuted.rows.len(),
        input.l2.schema().arity(),
        workers,
        started,
    );
    Ok(ResortOutcome {
        merge: DeltaMergeOutcome {
            new_main,
            from_main: survivors.from_main,
            from_l2: survivors.from_l2,
            dropped: survivors.dropped,
            dict_paths: paths,
            metrics,
        },
        sort_columns,
        row_mapping,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::l2_from_rows;
    use hana_common::{ColumnDef, DataType, RowId, Schema, Value};
    use hana_store::{MainStore, PartHit};

    fn schema() -> Schema {
        Schema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("city", DataType::Str),
                ColumnDef::new("prod", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn build_l2(rows: &[(i64, &str, &str)]) -> hana_store::L2Delta {
        let rows: Vec<(RowId, Vec<Value>)> = rows
            .iter()
            .map(|&(id, city, prod)| {
                (
                    RowId(id as u64),
                    vec![Value::Int(id), Value::str(city), Value::str(prod)],
                )
            })
            .collect();
        let l2 = l2_from_rows(schema(), 0, &rows, 5);
        l2.close();
        l2
    }

    #[test]
    fn rows_are_reordered_and_mapping_inverts() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = build_l2(&[(1, "B", "x"), (2, "A", "y"), (3, "B", "x"), (4, "A", "x")]);
        let input = MergeInput {
            main: &main,
            l2: &l2,
            watermark: 100,
            block_size: 64,
            generation: 1,
            parallel: 2,
        };
        let out = resort_merge(&input, &mgr, None).unwrap();
        let m = &out.merge.new_main;
        assert_eq!(m.total_rows(), 4);
        // Sort key: city (2 distinct) before prod (2) before id (4) — by
        // cardinality with index tiebreak city < prod.
        assert_eq!(out.sort_columns[0], 1);
        // All "A" rows precede all "B" rows after the merge.
        let cities: Vec<Value> = (0..4)
            .map(|p| m.value_at(PartHit { part: 0, pos: p }, 1))
            .collect();
        assert_eq!(cities, ["A", "A", "B", "B"].map(Value::str).to_vec());
        // The mapping tracks every row: old row 1 (id=2, city A, prod y)
        // must be found at its mapped position with intact values.
        for (old, &(id, city, prod)) in [
            (1i64, "B", "x"),
            (2, "A", "y"),
            (3, "B", "x"),
            (4, "A", "x"),
        ]
        .iter()
        .enumerate()
        {
            let new = out.row_mapping[old] as u32;
            let row = m.row_at(PartHit { part: 0, pos: new });
            assert_eq!(
                row,
                vec![Value::Int(id), Value::str(city), Value::str(prod)]
            );
        }
    }

    #[test]
    fn resort_improves_compression_on_shuffled_low_cardinality_data() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        // 2000 rows, city cycles through 4 values in a shuffled pattern.
        let cities = ["W", "X", "Y", "Z"];
        let rows: Vec<(i64, &str, &str)> = (0..2000)
            .map(|i| (i, cities[((i * 7919) % 4) as usize], "p"))
            .collect();
        let input_l2 = build_l2(&rows);
        let input = MergeInput {
            main: &main,
            l2: &input_l2,
            watermark: 100,
            block_size: 64,
            generation: 1,
            parallel: 2,
        };
        let classic = crate::classic::classic_merge(&input, &mgr, None).unwrap();
        let l2b = build_l2(&rows);
        let input_b = MergeInput {
            main: &main,
            l2: &l2b,
            watermark: 100,
            block_size: 64,
            generation: 1,
            parallel: 2,
        };
        let resorted = resort_merge(&input_b, &mgr, None).unwrap();
        let classic_bytes = classic.new_main.data_bytes();
        let resort_bytes = resorted.merge.new_main.data_bytes();
        assert!(
            resort_bytes < classic_bytes,
            "re-sorting should compress better: {resort_bytes} vs {classic_bytes}"
        );
        // Same logical content either way.
        assert_eq!(
            resorted.merge.new_main.total_rows(),
            classic.new_main.total_rows()
        );
    }

    #[test]
    fn single_row_table() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = build_l2(&[(1, "A", "p")]);
        let input = MergeInput {
            main: &main,
            l2: &l2,
            watermark: 100,
            block_size: 64,
            generation: 1,
            parallel: 2,
        };
        let out = resort_merge(&input, &mgr, None).unwrap();
        assert_eq!(out.row_mapping, vec![0]);
        assert_eq!(out.merge.new_main.total_rows(), 1);
    }
}
