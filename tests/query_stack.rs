//! The full query stack: calc graphs + engine operators over tables whose
//! rows are spread across all lifecycle stages.

use hana_calc::graph::PipeOp;
use hana_calc::{optimize, AggFunc, Executor, Expr, Predicate, Query};
use hana_common::{TableConfig, Value};
use hana_core::Database;
use hana_engines::olap::{Dimension, StarJoin};
use hana_engines::{GraphEngine, TextIndex};
use hana_txn::{IsolationLevel, Snapshot};
use hana_workload::olap::ALL_QUERIES;
use hana_workload::sales::{fact_cols, SalesDataset};
use hana_workload::{DataGen, OlapRunner};
use std::sync::Arc;

/// Load a dataset and deliberately leave rows in all three stages.
fn staged_dataset(db: &Arc<Database>) -> SalesDataset {
    let ds = SalesDataset::load(
        db,
        TableConfig::small().with_l1_max(64).with_l2_max(256),
        2_000,
        100,
        40,
        5,
    )
    .unwrap();
    ds.settle().unwrap(); // 2000 rows in main
                          // 300 more through OLTP → L2, 50 more → L1.
    let mut gen = DataGen::new(17);
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 2_000..2_300 {
        ds.sales
            .insert(
                &txn,
                hana_workload::SalesSchema::fact_row(&mut gen, i, 100, 40),
            )
            .unwrap();
    }
    db.commit(&mut txn).unwrap();
    ds.sales.drain_l1().unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 2_300..2_350 {
        ds.sales
            .insert(
                &txn,
                hana_workload::SalesSchema::fact_row(&mut gen, i, 100, 40),
            )
            .unwrap();
    }
    db.commit(&mut txn).unwrap();
    ds
}

#[test]
fn calc_results_independent_of_stage_distribution() {
    // The same logical data, one copy fully merged, one staged across
    // L1/L2/main, must answer every OLAP query identically.
    let db1 = Database::in_memory();
    let staged = staged_dataset(&db1);
    let db2 = Database::in_memory();
    let settled = staged_dataset(&db2);
    settled.sales.force_full_merge().unwrap();
    let (l1, l2, main) = {
        let s = staged.sales.stage_stats();
        (s.l1_rows, s.l2_rows, s.main_rows)
    };
    assert!(
        l1 > 0 && l2 > 0 && main > 0,
        "stages are populated: {l1}/{l2}/{main}"
    );
    assert_eq!(settled.sales.stage_stats().main_rows, 2_350);

    for &q in ALL_QUERIES {
        let a = OlapRunner::new(Snapshot::at(db1.txn_manager().now()))
            .run_unified(&staged.sales, q)
            .unwrap();
        let b = OlapRunner::new(Snapshot::at(db2.txn_manager().now()))
            .run_unified(&settled.sales, q)
            .unwrap();
        assert_eq!(a.rows, b.rows, "{q:?}");
    }
}

#[test]
fn optimizer_preserves_semantics_and_uses_indexes() {
    let db = Database::in_memory();
    let ds = staged_dataset(&db);
    let snap = Snapshot::at(db.txn_manager().now());

    let build = || {
        Query::scan(Arc::clone(&ds.sales))
            .filter(Predicate::Eq(fact_cols::CITY, Value::str("Los Gatos")))
            .filter(Predicate::Gt(fact_cols::AMOUNT, Value::Int(100)))
            .project(vec![
                ("order", Expr::col(fact_cols::ORDER_ID)),
                (
                    "weighted",
                    Expr::col(fact_cols::AMOUNT).mul(Expr::col(fact_cols::QUANTITY)),
                ),
            ])
            .aggregate(vec![], vec![(AggFunc::Count, 0), (AggFunc::Sum, 1)])
            .compile()
    };
    let mut unopt_ex = Executor::new(snap);
    let unopt = unopt_ex.run(&build()).unwrap();
    let mut g = build();
    let rewrites = optimize(&mut g);
    assert!(rewrites > 0);
    let mut opt_ex = Executor::new(snap);
    let opt = opt_ex.run(&g).unwrap();
    assert_eq!(unopt.rows, opt.rows);
    // The optimized plan used the index path, the naive one did not.
    assert_eq!(opt_ex.stats().indexed_scans, 1);
    assert_eq!(unopt_ex.stats().indexed_scans, 0);
}

#[test]
fn split_combine_equals_serial_on_staged_table() {
    let db = Database::in_memory();
    let ds = staged_dataset(&db);
    let snap = Snapshot::at(db.txn_manager().now());
    let serial = Query::scan(Arc::clone(&ds.sales))
        .aggregate(
            vec![fact_cols::CITY],
            vec![(AggFunc::Count, 0), (AggFunc::Sum, fact_cols::AMOUNT)],
        )
        .compile();
    let parallel = Query::scan(Arc::clone(&ds.sales))
        .split_combine(
            8,
            fact_cols::CITY,
            vec![PipeOp::PartialAggregate {
                group_by: vec![fact_cols::CITY],
                aggs: vec![(AggFunc::Count, 0), (AggFunc::Sum, fact_cols::AMOUNT)],
            }],
        )
        .compile();
    let a = Executor::new(snap).run(&serial).unwrap();
    let b = Executor::new(snap).run(&parallel).unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn star_join_over_staged_fact_table() {
    let db = Database::in_memory();
    let ds = staged_dataset(&db);
    let snap = Snapshot::at(db.txn_manager().now());
    let star = StarJoin {
        fact: Arc::clone(&ds.sales),
        dimensions: vec![Dimension {
            table: Arc::clone(&ds.products),
            dim_key_col: 0,
            fact_key_col: fact_cols::PRODUCT_ID,
            predicate: Predicate::True,
            group_attr: Some(1),
        }],
        measure_col: fact_cols::AMOUNT,
    };
    let res = star.execute(snap).unwrap();
    // Every fact row references a product (ids 1..=40 generated, all exist).
    assert_eq!(res.matching_facts, 2_350);
    let by_cat: f64 = res.groups.iter().map(|g| g.2).sum();
    let (_, direct_sum) = {
        let r = db.begin(IsolationLevel::Transaction);
        ds.sales
            .read(&r)
            .aggregate_numeric(fact_cols::AMOUNT)
            .unwrap()
    };
    assert!((by_cat - direct_sum).abs() < 1e-6);
}

#[test]
fn text_engine_over_unified_table() {
    let db = Database::in_memory();
    let ds = staged_dataset(&db);
    // Index the city column as text.
    let idx = TextIndex::build(
        &ds.sales,
        fact_cols::CITY,
        Snapshot::at(db.txn_manager().now()),
    )
    .unwrap();
    assert_eq!(idx.doc_count(), 2_350);
    let hits = idx.search_and("los gatos", 10_000);
    let r = db.begin(IsolationLevel::Transaction);
    let direct = ds
        .sales
        .read(&r)
        .point(fact_cols::CITY, &Value::str("Los Gatos"))
        .unwrap();
    assert_eq!(hits.len(), direct.len());
    // Fuzzy search finds it despite a typo.
    assert!(!idx.search_fuzzy("gatoz", 0.3, 10).is_empty());
}

#[test]
fn graph_engine_over_unified_table() {
    let db = Database::in_memory();
    // Build a small social graph as an edge table.
    let schema = hana_common::Schema::new(
        "edges",
        vec![
            hana_common::ColumnDef::new("src", hana_common::DataType::Int),
            hana_common::ColumnDef::new("dst", hana_common::DataType::Int),
        ],
    )
    .unwrap();
    let t = db.create_table(schema, TableConfig::small()).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 0..100i64 {
        t.insert(&txn, vec![Value::Int(i), Value::Int((i + 1) % 100)])
            .unwrap();
    }
    db.commit(&mut txn).unwrap();
    t.force_full_merge().unwrap(); // engine reads from the main store
    let g =
        GraphEngine::from_edge_table(&t, Snapshot::at(db.txn_manager().now()), 0, 1, None).unwrap();
    assert_eq!(g.edge_count(), 100);
    let reach = g.bfs(&Value::Int(0), 10);
    assert_eq!(reach.len(), 11);
    let (cost, path) = g.shortest_path(&Value::Int(0), &Value::Int(5)).unwrap();
    assert_eq!(cost, 5.0);
    assert_eq!(path.len(), 6);
}
