//! Fig 9 — the partial merge cuts merge cost by leaving the passive main
//! untouched.
//!
//! Claim regenerated: with a fixed delta, the full (classic) merge cost
//! grows with total main size, while the partial merge cost stays flat —
//! "reduce the cost of the L2-to-(active-)main merge" / "delay a full merge
//! to situations with low processing load".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_bench::{fill_l2, staged_sales, Stage};
use hana_merge::MergeDecision;

const DELTA: i64 = 5_000;

fn bench_partial_vs_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_merge_cost");
    g.sample_size(10);
    for main_rows in [20_000i64, 80_000, 240_000] {
        for (name, decision) in [
            ("full", MergeDecision::Classic),
            ("partial", MergeDecision::Partial),
        ] {
            g.bench_function(BenchmarkId::new(name, main_rows), |b| {
                b.iter_batched(
                    || {
                        let st = staged_sales(main_rows, Stage::Main, 7);
                        fill_l2(&st, main_rows, DELTA, 13);
                        st
                    },
                    |st| {
                        st.table.merge_delta_as(decision).unwrap();
                        assert_eq!(st.table.stage_stats().main_rows as i64, main_rows + DELTA);
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_partial_vs_full);
criterion_main!(benches);
