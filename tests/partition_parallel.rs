//! Partitioned-table equivalence and isolation.
//!
//! A hash-partitioned table must be indistinguishable from a single
//! unified table holding the same rows:
//!
//! * a property test drives identical committed op/merge streams into a
//!   3-way partitioned table and a single-table shadow and asserts every
//!   read surface (full scan, filtered scan, point, count, numeric and
//!   grouped aggregates) returns bit-identical results — including under
//!   uncommitted insert/update/delete marks pending at check time;
//! * a deterministic test steers the compression chooser through all four
//!   main encodings (bit-packed, RLE, sparse, cluster) and re-checks the
//!   equivalence on top of each;
//! * the merge daemon must never stall a sibling: writes to partition B
//!   keep committing while the daemon digests partition A's delta.

use hana_common::{
    ColumnDef, ColumnId, DataType, HanaError, PartitionConfig, Schema, TableConfig, Value,
};
use hana_core::{Database, PartitionedTable, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

const PARTS: usize = 3;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("k", DataType::Int).unique(),
            ColumnDef::new("g", DataType::Int),
            ColumnDef::new("v", DataType::Int),
        ],
    )
    .unwrap()
}

fn row(k: i64, v: i64) -> Vec<Value> {
    vec![Value::Int(k), Value::Int(k.rem_euclid(5)), Value::Int(v)]
}

type Partitioned = (Arc<Database>, Arc<PartitionedTable>);
type Shadow = (Arc<Database>, Arc<UnifiedTable>);

/// A partitioned table and its single-table shadow, each in its own
/// in-memory database with tight delta budgets so op streams cross every
/// stage.
fn pair() -> (Partitioned, Shadow) {
    let cfg = TableConfig::small().with_l1_max(9).with_l2_max(24);
    let dbp = Database::in_memory();
    let pt = dbp
        .create_partitioned_table(schema(), cfg.clone(), PartitionConfig::new(PARTS, 0))
        .unwrap();
    let dbs = Database::in_memory();
    let st = dbs.create_table(schema(), cfg).unwrap();
    ((dbp, pt), (dbs, st))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    DrainL1,
    MergeClassic,
    MergeResort,
    MergePartial,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Value shapes mix a constant, a tiny domain and wide-range ints so
    // the per-part compression chooser sees runs, dominants and entropy.
    // Magnitudes stay below 2^40 so f64 aggregate sums are exact and
    // partition-order summation is bit-identical to single-table order.
    fn val() -> impl Strategy<Value = i64> {
        prop_oneof![Just(7i64), 0i64..3, -(1i64 << 40)..(1i64 << 40)]
    }
    prop_oneof![
        4 => (0i64..48, val()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => (0i64..48, val()).prop_map(|(k, v)| Op::Update(k, v)),
        2 => (0i64..48).prop_map(Op::Delete),
        1 => Just(Op::DrainL1),
        1 => Just(Op::MergeClassic),
        1 => Just(Op::MergeResort),
        1 => Just(Op::MergePartial),
    ]
}

/// Apply one committed op to both tables; outcomes (success vs constraint
/// vs not-found) must agree, and the model tracks the surviving rows.
fn apply(
    (dbp, pt): &(Arc<Database>, Arc<PartitionedTable>),
    (dbs, st): &(Arc<Database>, Arc<UnifiedTable>),
    model: &mut BTreeMap<i64, i64>,
    op: &Op,
) {
    match op {
        Op::Insert(k, v) => {
            let mut tp = dbp.begin(IsolationLevel::Transaction);
            let mut ts = dbs.begin(IsolationLevel::Transaction);
            let rp = pt.insert(&tp, row(*k, *v));
            let rs = st.insert(&ts, row(*k, *v));
            match (rp, rs) {
                (Ok(_), Ok(_)) => {
                    assert!(!model.contains_key(k));
                    dbp.commit(&mut tp).unwrap();
                    dbs.commit(&mut ts).unwrap();
                    model.insert(*k, *v);
                }
                (Err(HanaError::Constraint(_)), Err(HanaError::Constraint(_))) => {
                    assert!(model.contains_key(k));
                    dbp.abort(&mut tp).unwrap();
                    dbs.abort(&mut ts).unwrap();
                }
                (rp, rs) => panic!("diverged on insert {k}: {rp:?} vs {rs:?}"),
            }
        }
        Op::Update(k, v) => {
            let mut tp = dbp.begin(IsolationLevel::Transaction);
            let mut ts = dbs.begin(IsolationLevel::Transaction);
            let key = Value::Int(*k);
            let upd = [(ColumnId(2), Value::Int(*v))];
            let rp = pt.update_where(&tp, &key, &upd);
            let rs = st.update_where(&ts, ColumnId(0), &key, &upd);
            match (rp, rs) {
                (Ok(_), Ok(_)) => {
                    assert!(model.contains_key(k));
                    dbp.commit(&mut tp).unwrap();
                    dbs.commit(&mut ts).unwrap();
                    model.insert(*k, *v);
                }
                (Err(HanaError::NotFound(_)), Err(HanaError::NotFound(_))) => {
                    assert!(!model.contains_key(k));
                    dbp.abort(&mut tp).unwrap();
                    dbs.abort(&mut ts).unwrap();
                }
                (rp, rs) => panic!("diverged on update {k}: {rp:?} vs {rs:?}"),
            }
        }
        Op::Delete(k) => {
            let mut tp = dbp.begin(IsolationLevel::Transaction);
            let mut ts = dbs.begin(IsolationLevel::Transaction);
            let key = Value::Int(*k);
            let rp = pt.delete_where(&tp, &key);
            let rs = st.delete_where(&ts, ColumnId(0), &key);
            match (rp, rs) {
                (Ok(_), Ok(_)) => {
                    assert!(model.contains_key(k));
                    dbp.commit(&mut tp).unwrap();
                    dbs.commit(&mut ts).unwrap();
                    model.remove(k);
                }
                (Err(HanaError::NotFound(_)), Err(HanaError::NotFound(_))) => {
                    assert!(!model.contains_key(k));
                    dbp.abort(&mut tp).unwrap();
                    dbs.abort(&mut ts).unwrap();
                }
                (rp, rs) => panic!("diverged on delete {k}: {rp:?} vs {rs:?}"),
            }
        }
        Op::DrainL1 => {
            for p in pt.partitions() {
                p.drain_l1().unwrap();
            }
            st.drain_l1().unwrap();
        }
        Op::MergeClassic => merge_both(pt, st, MergeDecision::Classic),
        Op::MergeResort => merge_both(pt, st, MergeDecision::ReSorting),
        Op::MergePartial => merge_both(pt, st, MergeDecision::Partial),
    }
}

fn merge_both(pt: &PartitionedTable, st: &UnifiedTable, d: MergeDecision) {
    for p in pt.partitions() {
        p.merge_delta_as(d).unwrap();
    }
    st.merge_delta_as(d).unwrap();
}

fn sorted_rows(rows: Vec<hana_core::VisibleRow>) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows.into_iter().map(|r| r.values).collect();
    out.sort();
    out
}

/// Every read surface of the partitioned table must return bit-identical
/// results to the shadow under fresh snapshots of each database.
fn check_equiv(
    (dbp, pt): &(Arc<Database>, Arc<PartitionedTable>),
    (dbs, st): &(Arc<Database>, Arc<UnifiedTable>),
    model: &BTreeMap<i64, i64>,
) {
    let tp = dbp.begin(IsolationLevel::Transaction);
    let ts = dbs.begin(IsolationLevel::Transaction);
    let pread = pt.read(&tp);
    let sread = st.read(&ts);

    assert_eq!(pread.count(), model.len());
    assert_eq!(sread.count(), model.len());

    let prow = sorted_rows(pread.collect_rows());
    assert_eq!(prow, sorted_rows(sread.collect_rows()));
    let expect: Vec<Vec<Value>> = model.iter().map(|(k, v)| row(*k, *v)).collect();
    assert_eq!(prow, expect);

    // Filtered scans: a key range and a group-column equality, projected
    // and unprojected.
    let range = [hana_core::ColumnPredicate::Range(
        0,
        Bound::Included(Value::Int(10)),
        Bound::Excluded(Value::Int(40)),
    )];
    let (pr, _) = pread.scan_filtered(&range, None).unwrap();
    let (sr, _) = sread.scan_filtered(&range, None).unwrap();
    assert_eq!(sorted_rows(pr), sorted_rows(sr));
    let eq = [hana_core::ColumnPredicate::Eq(1, Value::Int(2))];
    let (pr, _) = pread.scan_filtered(&eq, Some(&[0, 1])).unwrap();
    let (sr, _) = sread.scan_filtered(&eq, Some(&[0, 1])).unwrap();
    assert_eq!(sorted_rows(pr), sorted_rows(sr));

    // Point lookups agree per live key (partitioned: routed to one shard).
    for (k, v) in model {
        let hit = pt.point(tp.read_snapshot(), &Value::Int(*k)).unwrap();
        assert_eq!(hit.len(), 1, "key {k}");
        assert_eq!(hit[0][2], Value::Int(*v));
        assert_eq!(hit, sread.point(0, &Value::Int(*k)).unwrap());
    }

    // Aggregates: numeric and grouped (both sorted by group key).
    assert_eq!(
        pread.aggregate_numeric(2).unwrap(),
        sread.aggregate_numeric(2).unwrap()
    );
    assert_eq!(
        pread.group_aggregate(1, 2).unwrap(),
        sread.group_aggregate(1, 2).unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Partitioned ≡ single shadow under random op/merge interleavings,
    /// including with uncommitted marks pending at check time.
    #[test]
    fn partitioned_matches_single_shadow(ops in prop::collection::vec(op_strategy(), 1..100)) {
        let (parted, single) = pair();
        let mut model = BTreeMap::new();
        for op in &ops {
            apply(&parted, &single, &mut model, op);
        }
        check_equiv(&parted, &single, &model);

        // MVCC edge: leave identical uncommitted marks on both sides — a
        // fresh insert, an update of the smallest live key, a delete of
        // the largest — and re-check. Readers must not see any of it, and
        // the writers themselves must see identical mid-transaction
        // states.
        let mut wp = parted.0.begin(IsolationLevel::Transaction);
        let mut ws = single.0.begin(IsolationLevel::Transaction);
        parted.1.insert(&wp, row(1000, 1)).unwrap();
        single.1.insert(&ws, row(1000, 1)).unwrap();
        if let (Some((&lo, _)), Some((&hi, _))) =
            (model.first_key_value(), model.last_key_value())
        {
            let upd = [(ColumnId(2), Value::Int(-9))];
            parted.1.update_where(&wp, &Value::Int(lo), &upd).unwrap();
            single.1.update_where(&ws, ColumnId(0), &Value::Int(lo), &upd).unwrap();
            if hi != lo {
                parted.1.delete_where(&wp, &Value::Int(hi)).unwrap();
                single.1.delete_where(&ws, ColumnId(0), &Value::Int(hi)).unwrap();
            }
        }
        // Other readers: marks invisible, model still holds bit for bit.
        check_equiv(&parted, &single, &model);
        // The writers see their own marks — identically on both sides.
        assert_eq!(
            sorted_rows(parted.1.read(&wp).collect_rows()),
            sorted_rows(single.1.read(&ws).collect_rows()),
        );
        parted.0.abort(&mut wp).unwrap();
        single.0.abort(&mut ws).unwrap();
        check_equiv(&parted, &single, &model);
    }
}

// ---------------------------------------------------------------------------
// Encoding coverage: the shadow's main is steered through all four
// encodings; the partitioned table must stay bit-identical on each.
// ---------------------------------------------------------------------------

enum Shape {
    HighEntropy,
    SortedRuns,
    Dominant,
    Blocky,
}

impl Shape {
    fn value(&self, i: i64) -> i64 {
        match self {
            Shape::HighEntropy => (i * 7919) % 509,
            Shape::SortedRuns => i / 100,
            Shape::Dominant => {
                if i % 331 == 0 {
                    i
                } else {
                    0
                }
            }
            Shape::Blocky => {
                let block = i / 64;
                if block % 4 == 0 {
                    block * 2 + (i % 2)
                } else {
                    block * 2
                }
            }
        }
    }

    fn expected(&self) -> hana_column::Encoding {
        match self {
            Shape::HighEntropy => hana_column::Encoding::BitPacked,
            Shape::SortedRuns => hana_column::Encoding::Rle,
            Shape::Dominant => hana_column::Encoding::Sparse,
            Shape::Blocky => hana_column::Encoding::Cluster,
        }
    }
}

#[test]
fn partitioned_matches_single_across_all_main_encodings() {
    for shape in [
        Shape::HighEntropy,
        Shape::SortedRuns,
        Shape::Dominant,
        Shape::Blocky,
    ] {
        let mut cfg = TableConfig::small().with_l1_max(512).with_l2_max(4096);
        // Block size matching Shape::Blocky's 64-wide blocks, so the
        // cluster encoding can win on that shape.
        cfg.block_size = 64;
        let dbp = Database::in_memory();
        let pt = dbp
            .create_partitioned_table(schema(), cfg.clone(), PartitionConfig::new(PARTS, 0))
            .unwrap();
        let dbs = Database::in_memory();
        let st = dbs.create_table(schema(), cfg).unwrap();
        let mut model = BTreeMap::new();
        let mut tp = dbp.begin(IsolationLevel::Transaction);
        let mut ts = dbs.begin(IsolationLevel::Transaction);
        for i in 0..2048i64 {
            let v = shape.value(i);
            pt.insert(&tp, row(i, v)).unwrap();
            st.insert(&ts, row(i, v)).unwrap();
            model.insert(i, v);
        }
        dbp.commit(&mut tp).unwrap();
        dbs.commit(&mut ts).unwrap();
        for p in pt.partitions() {
            p.force_full_merge().unwrap();
        }
        st.force_full_merge().unwrap();
        // The shadow's value column landed in the intended encoding; the
        // shards may each choose differently for their hash subset — the
        // results must agree regardless.
        assert!(
            st.main_encodings(2).contains(&shape.expected()),
            "shadow expected {:?}, found {:?}",
            shape.expected(),
            st.main_encodings(2)
        );
        check_equiv(&(dbp, pt), &(dbs, st), &model);
    }
}

// ---------------------------------------------------------------------------
// Merge fairness: digesting one partition must not stall a sibling.
// ---------------------------------------------------------------------------

/// The first `n` keys hashing to partition `part`.
fn keys_for(pt: &PartitionedTable, part: usize, n: usize) -> Vec<i64> {
    (0i64..)
        .filter(|k| pt.route_index(&Value::Int(*k)) == part)
        .take(n)
        .collect()
}

#[test]
fn daemon_merges_one_partition_while_sibling_accepts_writes() {
    let db = Database::in_memory();
    let pt = db
        .create_partitioned_table(
            schema(),
            TableConfig {
                l1_max_rows: 16,
                l2_max_rows: 64,
                ..TableConfig::default()
            },
            PartitionConfig::new(2, 0),
        )
        .unwrap();
    db.start_merge_daemon(std::time::Duration::from_millis(1));

    // A fat delta on partition 0 gives the daemon real work.
    let mut txn = db.begin(IsolationLevel::Transaction);
    for k in keys_for(&pt, 0, 2000) {
        pt.insert(&txn, row(k, k)).unwrap();
    }
    db.commit(&mut txn).unwrap();

    // While the daemon digests partition 0, single-row commits against
    // partition 1 must keep flowing — a cross-partition stall (any shared
    // write lock on the group) would block or deadlock here.
    let sibling = keys_for(&pt, 1, 400);
    let mut written = 0usize;
    for &k in &sibling {
        let mut txn = db.begin(IsolationLevel::Transaction);
        pt.insert(&txn, row(k, k)).unwrap();
        db.commit(&mut txn).unwrap();
        written += 1;
        if written >= 100 && pt.partitions()[0].stage_stats().main_rows > 0 {
            break;
        }
    }
    // Let the daemon finish settling partition 0 if it has not yet.
    for _ in 0..500 {
        if pt.partitions()[0].stage_stats().main_rows > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    db.stop_merge_daemon();

    assert!(
        pt.partitions()[0].stage_stats().main_rows > 0,
        "daemon never settled the fat partition"
    );
    let r = db.begin(IsolationLevel::Transaction);
    let read = pt.read(&r);
    assert_eq!(read.count(), 2000 + written);
    for &k in sibling.iter().take(written) {
        assert_eq!(
            pt.point(r.read_snapshot(), &Value::Int(k)).unwrap().len(),
            1,
            "sibling write {k} lost"
        );
    }
}
