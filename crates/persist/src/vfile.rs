//! Virtual files: arbitrarily long blobs over the page store.
//!
//! A [`VirtualFile`] is an ordered list of page ids holding one logical
//! blob — the "virtual file concept" the persistence layer is built on.
//! Savepoint images are written as virtual files; the manifest records their
//! page lists.

use crate::codec::{Decoder, Encoder};
use crate::page::{PageId, PageStore};
use hana_common::{HanaError, Result};

/// Count sentinel marking the delta-varint page-list encoding. A manifest
/// written before it carries an explicit `u32` page count here, and no
/// real file ever has `u32::MAX` pages, so decode disambiguates on sight.
const DELTA_LIST: u32 = u32::MAX;

fn put_varint(e: &mut Encoder, mut v: u64) {
    while v >= 0x80 {
        e.u8((v as u8) | 0x80);
        v >>= 7;
    }
    e.u8(v as u8);
}

fn get_varint(d: &mut Decoder<'_>) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = d.u8()?;
        if shift >= 64 {
            return Err(HanaError::Persist("varint overflows u64".into()));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// An ordered chain of pages holding one blob.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VirtualFile {
    /// Pages in order.
    pub pages: Vec<PageId>,
    /// Total blob length in bytes.
    pub len: u64,
}

impl VirtualFile {
    /// Write `blob` across freshly allocated pages. All-or-nothing: if any
    /// page write fails, every page allocated so far (including the one that
    /// failed) is returned to the free list before the error propagates.
    pub fn write(store: &PageStore, blob: &[u8]) -> Result<VirtualFile> {
        let cap = store.payload_size();
        let mut pages = Vec::with_capacity(blob.len().div_ceil(cap));
        for chunk in blob.chunks(cap.max(1)) {
            let p = store.alloc();
            if let Err(e) = store.write_page(p, chunk) {
                store.free(p);
                for &q in &pages {
                    store.free(q);
                }
                return Err(e);
            }
            pages.push(p);
        }
        Ok(VirtualFile {
            pages,
            len: blob.len() as u64,
        })
    }

    /// Read the blob back.
    pub fn read(&self, store: &PageStore) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len as usize);
        for &p in &self.pages {
            out.extend_from_slice(&store.read_page(p)?);
        }
        if out.len() as u64 != self.len {
            return Err(hana_common::HanaError::Persist(format!(
                "virtual file length mismatch: expected {}, read {}",
                self.len,
                out.len()
            )));
        }
        Ok(out)
    }

    /// Release all pages back to the store's free list.
    pub fn release(&self, store: &PageStore) {
        for &p in &self.pages {
            store.free(p);
        }
    }

    /// Encode the page list (for manifests) as zigzag-varint deltas
    /// between consecutive page ids. The manifest must fit one superblock
    /// page, so the explicit 8-bytes-per-page list capped a savepoint's
    /// image size; consecutive allocations (ascending fresh pages, or a
    /// LIFO free-list run descending) delta to ±1 and cost one byte each,
    /// lifting that cap by ~8x even for fully fragmented page sets.
    pub fn encode(&self, e: &mut Encoder) {
        e.u64(self.len);
        e.u32(DELTA_LIST);
        put_varint(e, self.pages.len() as u64);
        let mut prev = 0i64;
        for p in &self.pages {
            let id = p.0 as i64;
            put_varint(e, zigzag(id.wrapping_sub(prev)));
            prev = id;
        }
    }

    /// Decode a page list — the delta-varint form above, or the explicit
    /// `u32 count + u64 ids` list that pre-delta manifests carry.
    pub fn decode(d: &mut Decoder<'_>) -> Result<VirtualFile> {
        let len = d.u64()?;
        let n = d.u32()?;
        if n == DELTA_LIST {
            let n = get_varint(d)? as usize;
            let mut pages = Vec::with_capacity(n.min(d.remaining()));
            let mut prev = 0i64;
            for _ in 0..n {
                prev = prev.wrapping_add(unzigzag(get_varint(d)?));
                if prev < 0 {
                    return Err(HanaError::Persist(format!(
                        "virtual file delta list decodes to negative page id {prev}"
                    )));
                }
                pages.push(PageId(prev as u64));
            }
            Ok(VirtualFile { pages, len })
        } else {
            let n = n as usize;
            let mut pages = Vec::with_capacity(n.min(d.remaining() / 8 + 1));
            for _ in 0..n {
                pages.push(PageId(d.u64()?));
            }
            Ok(VirtualFile { pages, len })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn multi_page_blob_round_trip() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(&dir.path().join("p"), 128).unwrap();
        let blob: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        let vf = VirtualFile::write(&store, &blob).unwrap();
        assert!(vf.pages.len() > 1);
        assert_eq!(vf.read(&store).unwrap(), blob);
    }

    #[test]
    fn empty_blob() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(&dir.path().join("p"), 128).unwrap();
        let vf = VirtualFile::write(&store, &[]).unwrap();
        assert!(vf.pages.is_empty());
        assert_eq!(vf.read(&store).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn encode_decode_manifest_entry() {
        let vf = VirtualFile {
            pages: vec![PageId(5), PageId(9), PageId(2)],
            len: 300,
        };
        let mut e = Encoder::new();
        vf.encode(&mut e);
        let bytes = e.into_bytes();
        let got = VirtualFile::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(got, vf);
    }

    #[test]
    fn delta_list_round_trips_hostile_shapes() {
        let shapes: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            (0..4000).collect(),      // ascending fresh allocations
            (0..500).rev().collect(), // descending LIFO reuse
            vec![7, 3, 900_000_000_000, 1, 2, 4096], // scattered with a huge jump
        ];
        for ids in shapes {
            let vf = VirtualFile {
                pages: ids.iter().copied().map(PageId).collect(),
                len: ids.len() as u64 * 17,
            };
            let mut e = Encoder::new();
            vf.encode(&mut e);
            let bytes = e.into_bytes();
            let got = VirtualFile::decode(&mut Decoder::new(&bytes)).unwrap();
            assert_eq!(got, vf);
        }
    }

    #[test]
    fn delta_list_is_compact_for_contiguous_pages() {
        let vf = VirtualFile {
            pages: (100..1100).map(PageId).collect(),
            len: 4_000_000,
        };
        let mut e = Encoder::new();
        vf.encode(&mut e);
        // 1000 contiguous ids delta to +1 each (1 byte); the explicit list
        // would need 8000 bytes and overflow a 4 KiB manifest page.
        assert!(
            e.len() < 1100,
            "contiguous page list must stay near 1 byte/page, got {}",
            e.len()
        );
    }

    #[test]
    fn decodes_legacy_explicit_page_list() {
        // Hand-encode the pre-delta format: u64 len, u32 count, n x u64 ids.
        let mut e = Encoder::new();
        e.u64(300);
        e.u32(3);
        for id in [5u64, 9, 2] {
            e.u64(id);
        }
        let bytes = e.into_bytes();
        let got = VirtualFile::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(
            got,
            VirtualFile {
                pages: vec![PageId(5), PageId(9), PageId(2)],
                len: 300,
            }
        );
    }

    #[test]
    fn failed_write_releases_every_allocated_page() {
        use crate::fault::{FaultErrorKind, FaultPolicy, IoOp};
        let dir = tempdir().unwrap();
        let store = PageStore::open(&dir.path().join("p"), 128).unwrap();
        let blob = vec![5u8; 1000]; // spans several pages
                                    // Fail the 4th page write of the blob.
        store.injector().arm(FaultPolicy::fail_nth(
            IoOp::PageWrite,
            3,
            FaultErrorKind::Enospc,
        ));
        let before = store.allocated_pages();
        assert!(VirtualFile::write(&store, &blob).is_err());
        // Everything allocated during the failed write is free again.
        assert_eq!(
            store.allocated_pages() - before,
            store.free_pages(),
            "mid-blob failure must not leak pages"
        );
        assert_eq!(store.double_frees(), 0);
        // The store remains fully usable.
        store.injector().disarm();
        let vf = VirtualFile::write(&store, &blob).unwrap();
        assert_eq!(vf.read(&store).unwrap(), blob);
    }

    #[test]
    fn release_recycles_pages() {
        let dir = tempdir().unwrap();
        let store = PageStore::open(&dir.path().join("p"), 128).unwrap();
        let vf = VirtualFile::write(&store, &vec![1u8; 500]).unwrap();
        let first_pages = vf.pages.clone();
        vf.release(&store);
        let vf2 = VirtualFile::write(&store, &vec![2u8; 500]).unwrap();
        // Reuses the freed pages (in some order).
        let mut a = first_pages;
        let mut b = vf2.pages.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
