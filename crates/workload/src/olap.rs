//! The OLAP query set.
//!
//! Warehouse-style aggregations over the sales fact table — "aggregation
//! queries over a huge volume of data" touching few columns of many rows.
//! Each query runs either through the calc-graph layer against a unified
//! table, or as a hand-rolled full scan against the row baseline (which has
//! no columnar projection to exploit — that asymmetry *is* the experiment).

use crate::sales::fact_cols;
use hana_calc::{AggFunc, Executor, Predicate, Query, ResultSet};
use hana_common::{Result, Value};
use hana_core::UnifiedTable;
use hana_rowstore::RowTable;
use hana_txn::Snapshot;
use std::sync::Arc;

/// The benchmark query set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OlapQuery {
    /// Q1: `SELECT SUM(amount) FROM sales`.
    TotalRevenue,
    /// Q2: `SELECT city, COUNT(*), SUM(amount) FROM sales GROUP BY city`.
    RevenueByCity,
    /// Q3: `SELECT COUNT(*), SUM(amount) FROM sales WHERE city = 'Los Gatos'`.
    CityDrilldown,
    /// Q4: `SELECT status, COUNT(*) FROM sales GROUP BY status`.
    StatusHistogram,
    /// Q5: `SELECT SUM(amount*quantity) FROM sales WHERE amount BETWEEN …`.
    WeightedMidRange,
}

/// All queries, for sweep harnesses.
pub const ALL_QUERIES: &[OlapQuery] = &[
    OlapQuery::TotalRevenue,
    OlapQuery::RevenueByCity,
    OlapQuery::CityDrilldown,
    OlapQuery::StatusHistogram,
    OlapQuery::WeightedMidRange,
];

/// Runs the query set against either engine.
pub struct OlapRunner {
    snap: Snapshot,
}

impl OlapRunner {
    /// Runner under a snapshot.
    pub fn new(snap: Snapshot) -> Self {
        OlapRunner { snap }
    }

    /// Execute one query on a unified table through the calc layer.
    pub fn run_unified(&self, table: &Arc<UnifiedTable>, q: OlapQuery) -> Result<ResultSet> {
        let query = match q {
            OlapQuery::TotalRevenue => Query::scan(Arc::clone(table))
                .aggregate(vec![], vec![(AggFunc::Sum, fact_cols::AMOUNT)]),
            OlapQuery::RevenueByCity => Query::scan(Arc::clone(table)).aggregate(
                vec![fact_cols::CITY],
                vec![(AggFunc::Count, 0), (AggFunc::Sum, fact_cols::AMOUNT)],
            ),
            OlapQuery::CityDrilldown => Query::scan(Arc::clone(table))
                .filter(Predicate::Eq(fact_cols::CITY, Value::str("Los Gatos")))
                .aggregate(
                    vec![],
                    vec![(AggFunc::Count, 0), (AggFunc::Sum, fact_cols::AMOUNT)],
                ),
            OlapQuery::StatusHistogram => Query::scan(Arc::clone(table))
                .aggregate(vec![fact_cols::STATUS], vec![(AggFunc::Count, 0)]),
            OlapQuery::WeightedMidRange => Query::scan(Arc::clone(table))
                .filter(Predicate::Between(
                    fact_cols::AMOUNT,
                    Value::Int(1_000),
                    Value::Int(5_000),
                ))
                .project(vec![(
                    "weighted",
                    hana_calc::Expr::col(fact_cols::AMOUNT)
                        .mul(hana_calc::Expr::col(fact_cols::QUANTITY)),
                )])
                .aggregate(vec![], vec![(AggFunc::Sum, 0)]),
        };
        let mut g = query.compile();
        hana_calc::optimize(&mut g);
        Executor::new(self.snap).run(&g)
    }

    /// Execute the same query on the row baseline via full scan.
    pub fn run_row_baseline(&self, table: &RowTable, q: OlapQuery) -> ResultSet {
        match q {
            OlapQuery::TotalRevenue => {
                let mut sum = 0.0;
                table.scan(&self.snap, |_, row| {
                    sum += row[fact_cols::AMOUNT].as_numeric().unwrap_or(0.0);
                });
                ResultSet {
                    columns: vec!["sum".into()],
                    rows: vec![vec![Value::double(sum)]],
                }
            }
            OlapQuery::RevenueByCity => {
                let mut groups: std::collections::BTreeMap<Value, (i64, f64)> = Default::default();
                table.scan(&self.snap, |_, row| {
                    let e = groups
                        .entry(row[fact_cols::CITY].clone())
                        .or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += row[fact_cols::AMOUNT].as_numeric().unwrap_or(0.0);
                });
                ResultSet {
                    columns: vec!["city".into(), "count".into(), "sum".into()],
                    rows: groups
                        .into_iter()
                        .map(|(c, (n, s))| vec![c, Value::Int(n), Value::double(s)])
                        .collect(),
                }
            }
            OlapQuery::CityDrilldown => {
                let mut n = 0i64;
                let mut sum = 0.0;
                let city = Value::str("Los Gatos");
                table.scan(&self.snap, |_, row| {
                    if row[fact_cols::CITY] == city {
                        n += 1;
                        sum += row[fact_cols::AMOUNT].as_numeric().unwrap_or(0.0);
                    }
                });
                ResultSet {
                    columns: vec!["count".into(), "sum".into()],
                    rows: vec![vec![Value::Int(n), Value::double(sum)]],
                }
            }
            OlapQuery::StatusHistogram => {
                let mut groups: std::collections::BTreeMap<Value, i64> = Default::default();
                table.scan(&self.snap, |_, row| {
                    *groups.entry(row[fact_cols::STATUS].clone()).or_insert(0) += 1;
                });
                ResultSet {
                    columns: vec!["status".into(), "count".into()],
                    rows: groups
                        .into_iter()
                        .map(|(s, n)| vec![s, Value::Int(n)])
                        .collect(),
                }
            }
            OlapQuery::WeightedMidRange => {
                let mut sum = 0.0;
                table.scan(&self.snap, |_, row| {
                    let a = row[fact_cols::AMOUNT].as_int().unwrap_or(0);
                    if (1_000..5_000).contains(&a) {
                        sum += (a * row[fact_cols::QUANTITY].as_int().unwrap_or(0)) as f64;
                    }
                });
                ResultSet {
                    columns: vec!["sum".into()],
                    rows: vec![vec![Value::double(sum)]],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sales::{load_row_baseline, SalesDataset};
    use hana_common::TableConfig;
    use hana_core::Database;
    use hana_txn::TxnManager;

    /// Both engines over the same seed must produce identical answers for
    /// every query — the cross-engine oracle.
    #[test]
    fn engines_agree_on_all_queries() {
        let db = Database::in_memory();
        let ds = SalesDataset::load(&db, TableConfig::small(), 800, 100, 40, 99).unwrap();
        ds.settle().unwrap();
        let mgr2 = TxnManager::new();
        let baseline = load_row_baseline(Arc::clone(&mgr2), 800, 100, 40, 99).unwrap();

        let snap_u = Snapshot::at(db.txn_manager().now());
        let snap_r = Snapshot::at(mgr2.now());
        for &q in ALL_QUERIES {
            let u = OlapRunner::new(snap_u).run_unified(&ds.sales, q).unwrap();
            let r = OlapRunner::new(snap_r).run_row_baseline(&baseline, q);
            match q {
                OlapQuery::TotalRevenue | OlapQuery::WeightedMidRange => {
                    let a = u.rows[0][0].as_numeric().unwrap_or(0.0);
                    let b = r.rows[0].last().unwrap().as_numeric().unwrap_or(0.0);
                    assert!((a - b).abs() < 1e-6, "{q:?}: {a} vs {b}");
                }
                OlapQuery::CityDrilldown => {
                    assert_eq!(u.rows[0][0], r.rows[0][0], "{q:?} count");
                }
                OlapQuery::RevenueByCity | OlapQuery::StatusHistogram => {
                    assert_eq!(u.rows.len(), r.rows.len(), "{q:?} group count");
                    for (ur, rr) in u.rows.iter().zip(&r.rows) {
                        assert_eq!(ur[0], rr[0], "{q:?} group key");
                        assert_eq!(ur[1].as_numeric(), rr[1].as_numeric(), "{q:?} count");
                    }
                }
            }
        }
    }
}
