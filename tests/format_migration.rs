//! Format migration: a database written by the pre-checksum on-disk format
//! must open cleanly, replay its legacy log, and convert to the enveloped
//! format on its next savepoint.
//!
//! The fixture is built byte-by-byte in the legacy layout this repo used
//! before the integrity envelope landed:
//!
//! * pages: `[len u32][crc32 u32][payload]`, zero-padded to the page size;
//! * superblock slot: the manifest wrapped in `[crc32][bytes]` framing
//!   inside a legacy page;
//! * table-image blobs: raw encoded bytes (no envelope) chunked across
//!   pages;
//! * REDO log: `HANALOG1` magic, per-record CRC over the payload alone.
//!
//! Opening it exercises every legacy fallback path (page, manifest, image,
//! log); appending exercises legacy-frame writes; the savepoint + reopen
//! round trip proves the upgrade is transparent and checksummed.

use hana_common::{ColumnDef, CommitConfig, DataType, GovernorConfig, Schema, TableConfig, Value};
use hana_core::Database;
use hana_persist::{crc32, Encoder, DEFAULT_PAGE_SIZE};
use hana_txn::IsolationLevel;
use std::sync::Arc;

const LEGACY_PAGE_HEADER: usize = 8;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("v", DataType::Str),
        ],
    )
    .unwrap()
}

/// One page in the pre-envelope format: `[len][crc32(payload)][payload]`.
fn legacy_page(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= DEFAULT_PAGE_SIZE - LEGACY_PAGE_HEADER);
    let mut buf = vec![0u8; DEFAULT_PAGE_SIZE];
    buf[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    buf[4..8].copy_from_slice(&crc32(payload).to_le_bytes());
    buf[8..8 + payload.len()].copy_from_slice(payload);
    buf
}

/// Write a complete legacy-format database into `dir`: savepoint version 1
/// holding one table image, an empty `HANALOG1` log at epoch 1.
fn build_legacy_fixture(dir: &std::path::Path, rows: i64) {
    // Produce the image bytes with current code (the encoding of
    // TableImage itself is unchanged; only the wrapping moved from raw
    // bytes to an envelope).
    let src = Database::in_memory();
    let t = src.create_table(schema(), TableConfig::small()).unwrap();
    let mut txn = src.begin(IsolationLevel::Transaction);
    for i in 0..rows {
        t.insert(&txn, vec![Value::Int(i), Value::str(format!("v{i}"))])
            .unwrap();
    }
    src.commit(&mut txn).unwrap();
    let mut e = Encoder::new();
    t.to_image().encode(&mut e);
    let blob = e.into_bytes(); // raw: pre-checksum images had no envelope

    // Chunk the blob across pages 2.. at the legacy payload capacity.
    let cap = DEFAULT_PAGE_SIZE - LEGACY_PAGE_HEADER;
    let mut image_pages = Vec::new();
    let mut page_ids = Vec::new();
    for (i, chunk) in blob.chunks(cap).enumerate() {
        image_pages.push(legacy_page(chunk));
        page_ids.push(2 + i as u64);
    }

    // The manifest: version 1, a clock safely above every imaged commit
    // timestamp, default configs, one virtual file.
    let version: u64 = 1;
    let mut m = Encoder::new();
    m.u64(version);
    m.u64(1_000); // clock
    let cc = CommitConfig::default();
    m.bool(cc.group_commit);
    m.u64(cc.max_batch as u64);
    m.u64(cc.max_wait_us);
    let gc = GovernorConfig::default();
    m.bool(gc.enabled);
    m.u64(gc.max_concurrent_scans as u64);
    m.u64(gc.scan_queue_timeout_ms);
    m.u64(gc.oltp_p99_budget_us);
    m.u64(gc.min_scan_parallelism as u64);
    m.u32(1); // one virtual file
    m.u64(blob.len() as u64);
    m.u32(page_ids.len() as u32);
    for p in &page_ids {
        m.u64(*p);
    }
    let manifest = m.into_bytes();

    // Legacy manifests ride `[crc32][bytes]` framing inside their page.
    let mut f = Encoder::new();
    f.u32(crc32(&manifest));
    f.bytes(&manifest);
    let slot_payload = f.into_bytes();

    // Slot = version % 2 = 1; slot 0 stays unwritten (all zeroes).
    let mut pages_file = vec![0u8; DEFAULT_PAGE_SIZE];
    pages_file.extend_from_slice(&legacy_page(&slot_payload));
    for p in &image_pages {
        pages_file.extend_from_slice(p);
    }
    std::fs::write(dir.join("data.pages"), &pages_file).unwrap();

    // An empty legacy log whose epoch matches the manifest version.
    let mut log = Vec::with_capacity(16);
    log.extend_from_slice(b"HANALOG1");
    log.extend_from_slice(&version.to_le_bytes());
    std::fs::write(dir.join("redo.log"), &log).unwrap();
}

fn count(db: &Arc<Database>) -> usize {
    let t = db.table("t").unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    t.read(&r).count()
}

#[test]
fn legacy_image_opens_and_upgrades_through_a_savepoint() {
    let dir = tempfile::tempdir().unwrap();
    build_legacy_fixture(dir.path(), 30);

    // 1. The pre-checksum database opens cleanly and serves its rows;
    //    every artifact it read was detected as legacy, none as corrupt.
    {
        let db = Database::open(dir.path()).unwrap();
        assert_eq!(count(&db), 30);
        let stats = db.integrity_stats().unwrap();
        assert!(
            stats.pages_legacy >= 2,
            "manifest + image pages should count as legacy reads: {stats:?}"
        );
        assert_eq!(stats.images_legacy, 1, "{stats:?}");
        assert_eq!(stats.total_corruptions(), 0, "{stats:?}");
        assert!(!db.health_stats().unwrap().read_only);

        // 2. The opened instance keeps appending to the legacy log…
        let t = db.table("t").unwrap();
        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in 30..40 {
            t.insert(&txn, vec![Value::Int(i), Value::str(format!("v{i}"))])
                .unwrap();
        }
        db.commit(&mut txn).unwrap();
    }
    // …and those legacy-format records replay on the next open.
    {
        let db = Database::open(dir.path()).unwrap();
        assert_eq!(count(&db), 40);

        // 3. The first savepoint rewrites everything in the enveloped
        //    format (version 2 → slot 0) and rotates to a HANALOG2 log.
        assert_eq!(db.savepoint().unwrap(), 2);
    }
    let log = std::fs::read(dir.path().join("redo.log")).unwrap();
    assert_eq!(&log[..8], b"HANALOG2", "savepoint must upgrade the log");

    // 4. The upgraded database round-trips. The newest generation is
    //    enveloped; the *previous* (legacy v1) slot legitimately remains
    //    readable as the fallback until the next savepoint overwrites it.
    {
        let db = Database::open(dir.path()).unwrap();
        assert_eq!(count(&db), 40);
        let stats = db.integrity_stats().unwrap();
        assert!(stats.pages_verified > 0, "{stats:?}");
        assert!(stats.images_verified >= 1, "{stats:?}");
        // Still writable after the upgrade.
        let t = db.table("t").unwrap();
        let mut txn = db.begin(IsolationLevel::Transaction);
        t.insert(&txn, vec![Value::Int(99), Value::str("post")])
            .unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(count(&db), 41);
        // A second savepoint (version 3 → slot 1) retires the last legacy
        // artifact…
        assert_eq!(db.savepoint().unwrap(), 3);
    }
    // …after which an open touches nothing legacy at all.
    {
        let db = Database::open(dir.path()).unwrap();
        assert_eq!(count(&db), 41);
        let stats = db.integrity_stats().unwrap();
        assert_eq!(stats.pages_legacy, 0, "{stats:?}");
        assert_eq!(stats.images_legacy, 0, "{stats:?}");
        assert_eq!(stats.total_corruptions(), 0, "{stats:?}");
    }
}

/// A damaged legacy fixture must not open as an empty database: with the
/// only manifest unreadable but a log epoch proving a savepoint was once
/// published, the open fails closed rather than serving a half-loaded
/// table.
#[test]
fn damaged_legacy_manifest_fails_closed_not_garbage() {
    let dir = tempfile::tempdir().unwrap();
    build_legacy_fixture(dir.path(), 10);
    let mut pages = std::fs::read(dir.path().join("data.pages")).unwrap();
    // Zap the legacy manifest's framing CRC inside slot 1.
    pages[DEFAULT_PAGE_SIZE + LEGACY_PAGE_HEADER] ^= 0xFF;
    std::fs::write(dir.path().join("data.pages"), &pages).unwrap();
    let err = match Database::open(dir.path()) {
        Ok(_) => panic!("a damaged legacy database must not open"),
        Err(e) => e,
    };
    assert!(
        matches!(err, hana_common::HanaError::Corruption(_)),
        "expected fail-closed corruption error, got: {err}"
    );
}
