//! Column-format stages of the unified table.
//!
//! * [`L2Delta`] — the intermediate stage: column layout, **unsorted**
//!   per-column dictionaries, append-only value vectors, growable inverted
//!   indexes, MVCC stamps per row. A delta-to-main merge *closes* the
//!   current L2-delta and the table opens a fresh one (paper §3.1).
//! * [`MainPart`] / [`MainStore`] — the read-optimized stage: sorted
//!   dictionaries, bit-packed & compressed value indexes, CSR inverted
//!   indexes. A [`MainStore`] is a chain of parts implementing §4.3's
//!   partial merge: earlier (passive) parts own dictionary codes
//!   `0..n`, the active part continues at `n+1`-style offsets, and its
//!   value index may reference passive codes.
//! * [`HistoryStore`] — storage behind "historic" tables: superseded
//!   versions move here instead of being garbage collected, serving the
//!   paper's time-travel queries.

pub mod history;
pub mod l2delta;
pub mod mainstore;

pub use history::{HistoricVersion, HistoryStore};
pub use l2delta::{L2Delta, L2_NULL_CODE};
pub use mainstore::{MainColumnData, MainPart, MainStore, PartHit, VisBitmap};
