//! The partial merge (§4.3, Figs 9–10).
//!
//! "The core idea of the partial merge is to split the main into two (or
//! even more) independent main structures": the *passive* main stays
//! untouched; only the *active* main takes part in the merge with the
//! L2-delta. The new active dictionary "starts with a dictionary position
//! value of n + 1" (here: a per-column `base` offset past the passive
//! dictionaries) and "only holds new values not yet present in the passive
//! main's dictionary"; the active value index "may exhibit encoding values
//! of the passive main".
//!
//! The cost is `O(|old active| + |L2|)` instead of `O(|main| + |L2|)` — the
//! saving Fig 9's scheduling argument relies on, measured by the Fig-9
//! bench.

use crate::classic::{DeltaMergeOutcome, MergeMetrics};
use crate::parallel::{effective_workers, map_indexed};
use crate::survivors::{collect_survivors, survivor_value, MergeInput};
use hana_common::{Result, Value};
use hana_dict::{Code, MergeKind, SortedDict};
use hana_store::{HistoryStore, MainColumnData, MainPart, MainStore, PartHit};
use hana_txn::TxnManager;
use std::sync::Arc;
use std::time::Instant;

/// Run a partial merge: rebuild only the active main from (old active ∪ L2).
pub fn partial_merge(
    input: &MergeInput<'_>,
    mgr: &TxnManager,
    history: Option<&HistoryStore>,
) -> Result<DeltaMergeOutcome> {
    debug_assert!(input.l2.is_closed(), "merge consumes a closed L2-delta");
    let started = Instant::now();
    let passive: Vec<Arc<MainPart>> = input.main.passive_parts().to_vec();
    let passive_count = passive.len();
    let rows_in =
        input.main.active_part().map_or(0, |p| p.len()) + input.l2.published_len() as usize;

    // Only the active part's rows re-enter the merge.
    let active_hits = input
        .main
        .active_part()
        .map(|p| {
            let idx = passive_count;
            (0..p.len() as u32)
                .map(move |pos| PartHit { part: idx, pos })
                .collect::<Vec<_>>()
        })
        .unwrap_or_default();
    let survivors = collect_survivors(input, mgr, history, active_hits.into_iter())?;

    let arity = input.l2.schema().arity();
    let workers = effective_workers(input.parallel).min(arity.max(1));
    let columns = map_indexed(arity, workers, |col| {
        // Global base past all passive dictionaries — the paper's `n + 1`.
        let base: Code = passive.iter().map(|p| p.dict(col).len() as Code).sum();

        // Values of surviving rows; those already in a passive dictionary
        // keep their passive code, the rest form the new active dictionary.
        let values: Vec<Value> = survivors
            .rows
            .iter()
            .map(|r| survivor_value(input, r, col))
            .collect();
        let passive_code = |v: &Value| -> Option<Code> {
            for p in &passive {
                if let Some(local) = p.dict(col).code_of(v) {
                    return Some(p.base(col) + local);
                }
            }
            None
        };
        let new_values: Vec<Value> = values
            .iter()
            .filter(|v| !v.is_null() && passive_code(v).is_none())
            .cloned()
            .collect();
        let dict = SortedDict::from_values(new_values);
        let null_code = base + dict.len() as Code;
        let codes: Vec<Code> = values
            .iter()
            .map(|v| {
                if v.is_null() {
                    null_code
                } else if let Some(c) = passive_code(v) {
                    c
                } else {
                    base + dict
                        .code_of(v)
                        .expect("value entered the active dictionary")
                }
            })
            .collect();
        MainColumnData { dict, base, codes }
    });

    let active = MainPart::build(
        input.generation,
        columns,
        survivors.rows.iter().map(|r| r.row_id).collect(),
        survivors.rows.iter().map(|r| r.begin).collect(),
        survivors.rows.iter().map(|r| r.end).collect(),
        input.block_size,
    );
    let mut parts = passive;
    parts.push(Arc::new(active));
    let new_main = MainStore::with_active(input.l2.schema().clone(), parts, passive_count);
    let metrics = MergeMetrics::measure(rows_in, survivors.rows.len(), arity, workers, started);
    Ok(DeltaMergeOutcome {
        new_main,
        from_main: survivors.from_main,
        from_l2: survivors.from_l2,
        dropped: survivors.dropped,
        dict_paths: vec![MergeKind::General; arity],
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{classic_merge, l2_from_rows};
    use hana_common::{ColumnDef, DataType, RowId, Schema};
    use std::ops::Bound;

    fn schema() -> Schema {
        Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("city", DataType::Str),
            ],
        )
        .unwrap()
    }

    fn l2_of(gen: u64, rows: &[(i64, &str)]) -> hana_store::L2Delta {
        let rows: Vec<(RowId, Vec<Value>)> = rows
            .iter()
            .map(|&(id, c)| (RowId(id as u64), vec![Value::Int(id), Value::str(c)]))
            .collect();
        let l2 = l2_from_rows(schema(), gen, &rows, 5);
        l2.close();
        l2
    }

    fn mk_input<'a>(
        main: &'a MainStore,
        l2: &'a hana_store::L2Delta,
        generation: u64,
    ) -> MergeInput<'a> {
        MergeInput {
            main,
            l2,
            watermark: 1_000,
            block_size: 64,
            generation,
            parallel: 2,
        }
    }

    /// passive via classic, then two successive partial merges.
    #[test]
    fn chain_grows_and_queries_span_parts() {
        let mgr = TxnManager::new();
        // Bootstrap a passive main.
        let main0 = MainStore::empty(schema());
        let l2a = l2_of(0, &[(1, "Campbell"), (2, "Daily City"), (3, "Los Gatos")]);
        let passive = classic_merge(&mk_input(&main0, &l2a, 1), &mgr, None)
            .unwrap()
            .new_main;
        assert_eq!(passive.passive_parts().len(), 1);
        assert!(passive.active_part().is_none());

        // Partial merge 1: one repeated value (passive code) + one new.
        let l2b = l2_of(1, &[(4, "Campbell"), (5, "Los Altos")]);
        let m1 = partial_merge(&mk_input(&passive, &l2b, 2), &mgr, None)
            .unwrap()
            .new_main;
        assert_eq!(m1.passive_parts().len(), 1);
        let active = m1.active_part().unwrap();
        assert_eq!(active.len(), 2);
        // Active dictionary holds only the genuinely new value.
        assert_eq!(active.dict(1).len(), 1);
        assert_eq!(active.dict(1).value_of(0), Value::str("Los Altos"));
        // Its base continues the passive encoding.
        assert_eq!(active.base(1), 3);
        // The active value index references the passive code for Campbell.
        assert_eq!(active.code_at(0, 1), 0);

        // Point query on a passive-owned value finds hits in both parts.
        let hits = m1.positions_eq(1, &Value::str("Campbell"));
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].part, 0);
        assert_eq!(hits[1].part, 1);

        // Partial merge 2: active shrinks/grows, passive untouched (same Arc).
        let passive_ptr = Arc::as_ptr(&m1.passive_parts()[0]);
        let l2c = l2_of(2, &[(6, "Saratoga")]);
        let m2 = partial_merge(&mk_input(&m1, &l2c, 3), &mgr, None)
            .unwrap()
            .new_main;
        assert_eq!(Arc::as_ptr(&m2.passive_parts()[0]), passive_ptr);
        let active2 = m2.active_part().unwrap();
        assert_eq!(active2.len(), 3); // 4, 5, 6
        assert_eq!(active2.dict(1).len(), 2); // Los Altos, Saratoga

        // Fig 10 range query over both structures: C..M.
        let hits = m2.positions_range(
            1,
            Bound::Included(&Value::str("C")),
            Bound::Excluded(&Value::str("M")),
        );
        let mut vals: Vec<String> = hits
            .iter()
            .map(|&h| m2.value_at(h, 1).as_str().unwrap().to_string())
            .collect();
        vals.sort();
        assert_eq!(
            vals,
            vec![
                "Campbell",
                "Campbell",
                "Daily City",
                "Los Altos",
                "Los Gatos"
            ]
        );
    }

    #[test]
    fn partial_merge_on_empty_main_builds_first_active() {
        let mgr = TxnManager::new();
        let main = MainStore::empty(schema());
        let l2 = l2_of(0, &[(1, "a")]);
        let out = partial_merge(&mk_input(&main, &l2, 1), &mgr, None).unwrap();
        assert_eq!(out.new_main.passive_parts().len(), 0);
        assert_eq!(out.new_main.active_rows(), 1);
        assert_eq!(out.new_main.total_rows(), 1);
    }

    #[test]
    fn garbage_in_active_is_collected_passive_untouched() {
        let mgr = TxnManager::new();
        let main0 = MainStore::empty(schema());
        let l2a = l2_of(0, &[(1, "keep")]);
        let passive = classic_merge(&mk_input(&main0, &l2a, 1), &mgr, None)
            .unwrap()
            .new_main;
        let l2b = l2_of(1, &[(2, "dead")]);
        l2b.store_end(0, 10); // dead before watermark
        let m = partial_merge(&mk_input(&passive, &l2b, 2), &mgr, None).unwrap();
        assert_eq!(m.new_main.active_rows(), 0);
        assert_eq!(m.dropped, vec![RowId(2)]);
        assert_eq!(m.new_main.total_rows(), 1);
    }

    /// "The optimization strategy may be deployed as a classical merge
    /// scheme by setting the maximal size of the active main to 0 forcing a
    /// (classical) full merge in every step" — consolidation via classic
    /// over the chain.
    #[test]
    fn consolidation_collapses_the_chain() {
        let mgr = TxnManager::new();
        let main0 = MainStore::empty(schema());
        let l2a = l2_of(0, &[(1, "b"), (2, "d")]);
        let passive = classic_merge(&mk_input(&main0, &l2a, 1), &mgr, None)
            .unwrap()
            .new_main;
        let l2b = l2_of(1, &[(3, "a"), (4, "c")]);
        let chained = partial_merge(&mk_input(&passive, &l2b, 2), &mgr, None)
            .unwrap()
            .new_main;
        assert_eq!(chained.parts().len(), 2);
        // Full merge with an empty delta consolidates to one sorted part.
        let empty = l2_of(2, &[]);
        let consolidated = classic_merge(&mk_input(&chained, &empty, 3), &mgr, None)
            .unwrap()
            .new_main;
        assert_eq!(consolidated.parts().len(), 1);
        assert_eq!(consolidated.total_rows(), 4);
        let dict = consolidated.parts()[0].dict(1);
        assert_eq!(
            (0..4u32).map(|c| dict.value_of(c)).collect::<Vec<_>>(),
            ["a", "b", "c", "d"].map(Value::str).to_vec()
        );
        // All rows queryable.
        for (v, n) in [("a", 1), ("b", 1), ("c", 1), ("d", 1)] {
            assert_eq!(consolidated.positions_eq(1, &Value::str(v)).len(), n);
        }
    }
}
