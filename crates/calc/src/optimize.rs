//! Rule-based plan rewrites.
//!
//! §2.2: "the optimizer runs classical rule and cost-based optimization
//! procedures to restructure and transform the logical plan into a physical
//! plan." Implemented rules:
//!
//! 1. **Filter merging** — `Filter(Filter(x))` → one conjunctive filter;
//! 2. **Filter-into-scan fusion** — `Filter(TableSource)` folds the
//!    predicate into the scan node, where the executor resolves `Eq` /
//!    range conjuncts through the table's dictionaries and inverted indexes
//!    instead of scanning;
//! 3. **Projection collapsing** — `Project(Project(x))` composes the
//!    expressions when the inner projection is pure column selection.
//!
//! Rewrites only apply to nodes with a single consumer — a shared
//! subexpression must stay shared (its memoized result is the point).

use crate::expr::Expr;
use crate::graph::{CalcGraph, CalcNode, NodeId};

/// Optimize the graph in place; returns the number of rewrites applied.
pub fn optimize(g: &mut CalcGraph) -> usize {
    let mut total = 0;
    loop {
        let applied = pass(g);
        total += applied;
        if applied == 0 {
            return total;
        }
    }
}

fn pass(g: &mut CalcGraph) -> usize {
    // Consumer counts over nodes reachable from the root only: rewrites can
    // orphan nodes, and a dead edge must not pin its input as "shared".
    let mut reachable = vec![false; g.len()];
    if let Some(root) = g.root() {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.0], true) {
                continue;
            }
            stack.extend(g.inputs(id));
        }
    }
    let mut consumers = vec![0usize; g.len()];
    for (i, _) in reachable.iter().enumerate().filter(|(_, &r)| r) {
        for input in g.inputs(NodeId(i)) {
            consumers[input.0] += 1;
        }
    }
    let mut applied = 0;
    for i in (0..g.len()).filter(|&i| reachable[i]) {
        let id = NodeId(i);
        // Filter(x) rewrites.
        if let CalcNode::Filter { input, pred } = g.node(id).clone() {
            if consumers[input.0] > 1 || pred == crate::expr::Predicate::True {
                continue;
            }
            match g.node(input).clone() {
                // Rule 1: merge stacked filters.
                CalcNode::Filter {
                    input: inner_input,
                    pred: inner_pred,
                } => {
                    *g.node_mut(id) = CalcNode::Filter {
                        input: inner_input,
                        pred: inner_pred.and(pred),
                    };
                    applied += 1;
                }
                // Rule 2: fuse into the scan.
                CalcNode::TableSource {
                    table,
                    fused_filter,
                } => {
                    *g.node_mut(input) = CalcNode::TableSource {
                        table,
                        fused_filter: fused_filter.and(pred),
                    };
                    // The filter becomes a pass-through (identity filter).
                    *g.node_mut(id) = CalcNode::Filter {
                        input,
                        pred: crate::expr::Predicate::True,
                    };
                    applied += 1;
                }
                _ => {}
            }
        }
        // Rule 3: collapse Project(Project) when the inner is pure columns.
        if let CalcNode::Project { input, exprs } = g.node(id).clone() {
            if consumers[input.0] > 1 {
                continue;
            }
            if let CalcNode::Project {
                input: inner_input,
                exprs: inner_exprs,
            } = g.node(input).clone()
            {
                if let Some(composed) = compose_projections(&inner_exprs, &exprs) {
                    *g.node_mut(id) = CalcNode::Project {
                        input: inner_input,
                        exprs: composed,
                    };
                    applied += 1;
                }
            }
        }
    }
    applied
}

/// Compose `outer` over `inner` when every outer column reference can be
/// substituted with the inner expression.
fn compose_projections(
    inner: &[(String, Expr)],
    outer: &[(String, Expr)],
) -> Option<Vec<(String, Expr)>> {
    fn substitute(e: &Expr, inner: &[(String, Expr)]) -> Option<Expr> {
        Some(match e {
            Expr::Column(i) => inner.get(*i)?.1.clone(),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Add(a, b) => Expr::Add(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
        })
    }
    outer
        .iter()
        .map(|(n, e)| Some((n.clone(), substitute(e, inner)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig, Value};
    use hana_txn::TxnManager;
    use std::sync::Arc;

    fn table() -> Arc<hana_core::UnifiedTable> {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
        )
        .unwrap();
        hana_core::UnifiedTable::standalone(schema, TableConfig::default(), mgr)
    }

    #[test]
    fn filter_fuses_into_scan() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table(),
            fused_filter: Predicate::True,
        });
        let f = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Eq(0, Value::Int(1)),
        });
        g.set_root(f);
        let n = optimize(&mut g);
        assert!(n >= 1);
        match g.node(s) {
            CalcNode::TableSource { fused_filter, .. } => {
                assert_eq!(*fused_filter, Predicate::Eq(0, Value::Int(1)));
            }
            _ => panic!("scan expected"),
        }
        match g.node(f) {
            CalcNode::Filter { pred, .. } => assert_eq!(*pred, Predicate::True),
            _ => panic!("filter expected"),
        }
    }

    #[test]
    fn stacked_filters_merge_then_fuse() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table(),
            fused_filter: Predicate::True,
        });
        let f1 = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Gt(0, Value::Int(0)),
        });
        let f2 = g.add(CalcNode::Filter {
            input: f1,
            pred: Predicate::Lt(0, Value::Int(10)),
        });
        g.set_root(f2);
        optimize(&mut g);
        match g.node(s) {
            CalcNode::TableSource { fused_filter, .. } => match fused_filter {
                Predicate::And(ps) => assert_eq!(ps.len(), 2),
                p => panic!("expected conjunction, got {p:?}"),
            },
            _ => panic!("scan expected"),
        }
    }

    #[test]
    fn projections_collapse() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table(),
            fused_filter: Predicate::True,
        });
        let p1 = g.add(CalcNode::Project {
            input: s,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        let p2 = g.add(CalcNode::Project {
            input: p1,
            exprs: vec![("b2".into(), Expr::col(0).mul(Expr::lit(2)))],
        });
        g.set_root(p2);
        optimize(&mut g);
        match g.node(p2) {
            CalcNode::Project { input, exprs } => {
                assert_eq!(*input, s);
                // col(0) of the outer was substituted by col(1) of the inner.
                assert_eq!(exprs[0].1, Expr::col(1).mul(Expr::lit(2)));
            }
            _ => panic!("project expected"),
        }
    }

    #[test]
    fn shared_subexpressions_not_rewritten() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table(),
            fused_filter: Predicate::True,
        });
        let f = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Gt(0, Value::Int(0)),
        });
        // Two consumers of f.
        let p1 = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("a".into(), Expr::col(0))],
        });
        let p2 = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        let u = g.add(CalcNode::Union {
            inputs: vec![p1, p2],
        });
        g.set_root(u);
        // f feeds two consumers; its filter must NOT fuse into the scan via
        // one of them only... (fusion through f itself is fine since s has
        // one consumer). Check that the structure stays valid.
        optimize(&mut g);
        // Both projects still read from f.
        assert_eq!(g.inputs(p1), vec![f]);
        assert_eq!(g.inputs(p2), vec![f]);
    }
}
