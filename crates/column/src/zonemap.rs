//! Min/max zone maps over main-store code vectors.
//!
//! Because the main dictionary is sorted, per-part and per-chunk min/max
//! *codes* are order-consistent with values: a compiled code range that
//! falls entirely outside a zone's `[min, max]` span cannot match any row in
//! it, so whole parts and 16Ki-row chunks are skipped before any kernel
//! runs. NULLs are excluded from the span and tracked by a separate flag
//! (the NULL sentinel sorts above every real code and would otherwise
//! poison `max`).
//!
//! Zone maps are built once at merge time ([`ZoneMap::build`] is called from
//! `MainPart::build`) and persisted in savepoint images so recovery does not
//! recompute them.

use crate::{Code, Pos};

/// Rows per zone — matches the scan planner's chunk size so chunk `k` of a
/// part scan is zone `k` of the part's zone map.
pub const ZONE_CHUNK_ROWS: usize = 16 * 1024;

/// Min/max of the non-NULL codes in one zone, plus a NULL-presence flag.
///
/// An empty zone (or all-NULL zone) has `min > max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneEntry {
    /// Smallest non-NULL code in the zone.
    pub min: Code,
    /// Largest non-NULL code in the zone.
    pub max: Code,
    /// True if the zone contains at least one NULL row.
    pub has_nulls: bool,
}

impl ZoneEntry {
    /// The entry covering no non-NULL rows.
    pub const EMPTY: ZoneEntry = ZoneEntry {
        min: Code::MAX,
        max: 0,
        has_nulls: false,
    };

    /// Fold one code into the entry.
    #[inline]
    pub fn add(&mut self, code: Code, null_code: Code) {
        if code == null_code {
            self.has_nulls = true;
        } else {
            self.min = self.min.min(code);
            self.max = self.max.max(code);
        }
    }

    /// True if no non-NULL code was folded in.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// True if a filter with inclusive hull `[lo, hi]` could match a
    /// non-NULL row of this zone. `false` means the zone is provably free of
    /// matches and may be skipped (NULL rows never match a value filter).
    #[inline]
    pub fn overlaps(&self, lo: Code, hi: Code) -> bool {
        !self.is_empty() && lo <= self.max && hi >= self.min
    }
}

/// Zone maps for one column of one main part: a whole-part entry plus one
/// entry per [`ZONE_CHUNK_ROWS`] rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    part: ZoneEntry,
    chunks: Vec<ZoneEntry>,
}

impl ZoneMap {
    /// Scan `codes` once, folding each into its chunk entry and the
    /// whole-part entry. `null_code` rows set `has_nulls` only.
    pub fn build(codes: &[Code], null_code: Code) -> Self {
        let mut part = ZoneEntry::EMPTY;
        let mut chunks = Vec::with_capacity(codes.len().div_ceil(ZONE_CHUNK_ROWS));
        for chunk in codes.chunks(ZONE_CHUNK_ROWS) {
            let mut z = ZoneEntry::EMPTY;
            for &c in chunk {
                z.add(c, null_code);
            }
            part.min = part.min.min(z.min);
            part.max = part.max.max(z.max);
            part.has_nulls |= z.has_nulls;
            chunks.push(z);
        }
        if part.is_empty() {
            part = ZoneEntry {
                has_nulls: part.has_nulls,
                ..ZoneEntry::EMPTY
            };
        }
        ZoneMap { part, chunks }
    }

    /// Reassemble a zone map from persisted entries (savepoint recovery).
    pub fn from_entries(part: ZoneEntry, chunks: Vec<ZoneEntry>) -> Self {
        ZoneMap { part, chunks }
    }

    /// The whole-part entry.
    #[inline]
    pub fn part(&self) -> ZoneEntry {
        self.part
    }

    /// All chunk entries in row order (for persistence).
    #[inline]
    pub fn chunks(&self) -> &[ZoneEntry] {
        &self.chunks
    }

    /// The entry for the chunk containing part-local position `pos` — the
    /// scan planner's chunk `pos / ZONE_CHUNK_ROWS`.
    #[inline]
    pub fn chunk_at(&self, pos: Pos) -> ZoneEntry {
        self.chunks
            .get(pos as usize / ZONE_CHUNK_ROWS)
            .copied()
            .unwrap_or(ZoneEntry::EMPTY)
    }

    /// Number of chunk entries.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<ZoneEntry>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_exclude_nulls() {
        let null = 100;
        let codes = vec![5, 7, null, 3, null, 9];
        let zm = ZoneMap::build(&codes, null);
        assert_eq!(zm.part().min, 3);
        assert_eq!(zm.part().max, 9);
        assert!(zm.part().has_nulls);
        // Hull that only the NULL sentinel would fall into must not overlap.
        assert!(!zm.part().overlaps(50, 200));
    }

    #[test]
    fn all_null_zone_is_empty() {
        let zm = ZoneMap::build(&[4, 4, 4], 4);
        assert!(zm.part().is_empty());
        assert!(zm.part().has_nulls);
        assert!(!zm.part().overlaps(0, Code::MAX));
    }

    #[test]
    fn chunk_entries_align_with_scan_chunks() {
        // Two full chunks + a partial third, with distinct value bands.
        let mut codes = vec![10 as Code; ZONE_CHUNK_ROWS];
        codes.extend(std::iter::repeat_n(20 as Code, ZONE_CHUNK_ROWS));
        codes.extend(std::iter::repeat_n(30 as Code, 100));
        let zm = ZoneMap::build(&codes, Code::MAX - 1);
        assert_eq!(zm.chunk_count(), 3);
        assert_eq!(zm.chunk_at(0).min, 10);
        assert_eq!(zm.chunk_at(ZONE_CHUNK_ROWS as Pos).min, 20);
        assert_eq!(zm.chunk_at((2 * ZONE_CHUNK_ROWS) as Pos).max, 30);
        // Chunk pruning: a 20-only filter overlaps exactly one chunk.
        let hits: Vec<bool> = (0..3)
            .map(|k| zm.chunk_at((k * ZONE_CHUNK_ROWS) as Pos).overlaps(20, 20))
            .collect();
        assert_eq!(hits, vec![false, true, false]);
    }

    #[test]
    fn boundary_values_overlap_inclusively() {
        let zm = ZoneMap::build(&[5, 9], 100);
        // Hull touching min or max exactly must NOT be pruned.
        assert!(zm.part().overlaps(9, 9));
        assert!(zm.part().overlaps(5, 5));
        assert!(zm.part().overlaps(0, 5));
        assert!(zm.part().overlaps(9, 20));
        assert!(!zm.part().overlaps(0, 4));
        assert!(!zm.part().overlaps(10, 20));
    }
}
