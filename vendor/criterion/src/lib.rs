//! Offline shim for the `criterion` crate (see `vendor/parking_lot` for
//! why these shims exist).
//!
//! A deliberately small wall-clock harness: each `bench_function` runs a
//! short warmup, then `sample_size` timed samples, and prints
//! `group/id  median .. mean ..` one line per benchmark. No statistics
//! beyond that, no plots, no CLI filters — the repo's criterion benches
//! compile and produce comparable numbers, which is all the CI smoke runs
//! and EXPERIMENTS.md need. Honour `BENCH_SAMPLE_SIZE` to cut runtimes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim treats all variants alike
/// (one setup per measured invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput hint; recorded for the report line only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing context passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup: let caches/allocators settle.
        for _ in 0..self.sample_size.min(3) {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Caller-measured timing: `routine(iters)` runs `iters` iterations and
    /// returns their total elapsed time (real-criterion-compatible; used
    /// when the measured quantity is an instrument reading rather than the
    /// closure's own wall clock).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        black_box(routine(1)); // warmup
        for _ in 0..self.sample_size {
            self.samples.push(routine(1));
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        {
            let input = setup();
            black_box(routine(input));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }

    /// `iter_batched` variant passing the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t0 = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn env_sample_override() -> Option<usize> {
    std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size: env_sample_override().unwrap_or(sample_size).max(1),
    };
    f(&mut b);
    if b.samples.is_empty() {
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let name = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{group}/{}", id.id)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!(
        "{name:<60} median {:>12}  mean {:>12}{rate}",
        fmt_duration(median),
        fmt_duration(mean)
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &self.name,
            &id.into(),
            self.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {
        let _ = self.criterion;
    }
}

/// The harness entry point, created by [`criterion_main!`].
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n;
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        }
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let n = self.effective_sample_size();
        run_one("", &id.into(), n, None, &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0;
        g.bench_function(BenchmarkId::from_parameter("count"), |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn iter_batched_fresh_input() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |mut v| {
                    v.push(4);
                    assert_eq!(v.len(), 4);
                },
                BatchSize::LargeInput,
            )
        });
    }
}
