//! Shim crate exposing the repository-level `tests/` directory as cargo
//! integration-test targets (see `[[test]]` entries in Cargo.toml).
//! The suites: lifecycle end-to-end, transaction semantics, recovery and
//! failure injection, property-based model equivalence, the full query
//! stack over staged tables, and concurrency stress.
