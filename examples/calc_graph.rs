//! The calc-graph layer: the Fig-3 sample model, rebuilt and executed.
//!
//! Fig 3 shows a calc model with a shared subexpression feeding two
//! consumers, a "script" node with imperative logic, and a "conv" node
//! applying the built-in currency conversion. This example builds that
//! shape over a sales table, prints the plan before/after optimization, and
//! runs it — also through the split/combine parallel path and the OLAP
//! star-join operator.
//!
//! Run with `cargo run -p hana-examples --example calc_graph`.

use hana_calc::graph::PipeOp;
use hana_calc::{optimize, AggFunc, CalcGraph, CalcNode, Executor, Predicate, Query};
use hana_common::{TableConfig, Value};
use hana_core::Database;
use hana_engines::olap::{Dimension, StarJoin};
use hana_txn::{IsolationLevel, Snapshot};
use hana_workload::sales::{fact_cols, SalesDataset};
use std::sync::Arc;

fn main() -> hana_common::Result<()> {
    let db = Database::in_memory();
    let ds = SalesDataset::load(&db, TableConfig::small(), 5_000, 200, 50, 21)?;
    ds.settle()?;
    let snap = Snapshot::at(db.txn_manager().now());

    // --- The Fig-3 shape: one filtered scan, two consumers, conv, script.
    let mut g = CalcGraph::new();
    let scan = g.add(CalcNode::TableSource {
        table: Arc::clone(&ds.sales).into(),
        fused_filter: Predicate::True,
        projection: None,
    });
    let filter = g.add(CalcNode::Filter {
        input: scan,
        pred: Predicate::Gt(fact_cols::AMOUNT, Value::Int(5_000)),
    });
    // Consumer 1: currency-normalized revenue by city.
    let conv = g.add(CalcNode::Conv {
        input: filter,
        amount_col: fact_cols::AMOUNT,
        currency_col: fact_cols::CURRENCY,
        rates: [
            ("USD", 1.0),
            ("EUR", 1.09),
            ("KRW", 0.00072),
            ("GBP", 1.27),
            ("JPY", 0.0064),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect(),
    });
    let by_city = g.add(CalcNode::Aggregate {
        input: conv,
        group_by: vec![fact_cols::CITY],
        aggs: vec![(AggFunc::Count, 0), (AggFunc::Sum, fact_cols::AMOUNT)],
    });
    // Consumer 2: a "script" node with imperative logic over the same
    // filtered input (the shared subexpression).
    let script = g.add(CalcNode::Custom {
        input: filter,
        name: "top-3-amounts".into(),
        f: Arc::new(|mut rows| {
            rows.sort_by(|a, b| b[fact_cols::AMOUNT].cmp(&a[fact_cols::AMOUNT]));
            rows.truncate(3);
            Ok(rows)
        }),
    });
    let _ = script;
    g.set_root(by_city);

    println!("== plan ==\n{}", g.explain());
    let rewrites = optimize(&mut g);
    println!("after {rewrites} optimizer rewrite(s):\n{}", g.explain());

    let mut ex = Executor::new(snap);
    let rs = ex.run(&g)?;
    println!("revenue by city for large orders ({} groups):", rs.len());
    for row in rs.rows.iter().take(5) {
        println!("  {:<16} count={:<5} sum={:.0}", row[0], row[1], row[2]);
    }
    println!("executor stats: {:?}\n", ex.stats());

    // --- Split/combine parallelism: same aggregate, partitioned by city.
    let parallel = Query::scan(Arc::clone(&ds.sales))
        .split_combine(
            4,
            fact_cols::CITY,
            vec![PipeOp::PartialAggregate {
                group_by: vec![fact_cols::CITY],
                aggs: vec![(AggFunc::Count, 0), (AggFunc::Sum, fact_cols::AMOUNT)],
            }],
        )
        .compile();
    let rs = Executor::new(snap).run(&parallel)?;
    println!("split/combine over 4 workers: {} city groups", rs.len());

    // --- The OLAP star-join operator from the engine layer.
    let star = StarJoin {
        fact: Arc::clone(&ds.sales),
        dimensions: vec![Dimension {
            table: Arc::clone(&ds.products),
            dim_key_col: 0,
            fact_key_col: fact_cols::PRODUCT_ID,
            predicate: Predicate::Eq(1, Value::str("electronics")),
            group_attr: Some(1),
        }],
        measure_col: fact_cols::AMOUNT,
    };
    let res = star.execute(snap)?;
    println!(
        "star join: {} electronics sales, revenue {:.0}",
        res.matching_facts,
        res.groups.iter().map(|g| g.2).sum::<f64>()
    );

    // --- Everything above ran against live MVCC state: prove it.
    let mut txn = db.begin(IsolationLevel::Transaction);
    ds.sales.insert(
        &txn,
        hana_workload::SalesSchema::fact_row(&mut hana_workload::DataGen::new(5), 999_999, 200, 50),
    )?;
    db.commit(&mut txn)?;
    let rs_old = Executor::new(snap).run(
        &Query::scan(Arc::clone(&ds.sales))
            .aggregate(vec![], vec![(AggFunc::Count, 0)])
            .compile(),
    )?;
    let rs_new = Executor::new(Snapshot::at(db.txn_manager().now())).run(
        &Query::scan(Arc::clone(&ds.sales))
            .aggregate(vec![], vec![(AggFunc::Count, 0)])
            .compile(),
    )?;
    println!(
        "snapshot isolation: old snapshot sees {} rows, new one {}",
        rs_old.rows[0][0], rs_new.rows[0][0]
    );
    Ok(())
}
