//! The persistence façade: savepoints + log + recovery.
//!
//! Layout in the database directory:
//!
//! * `data.pages` — the page store. Pages 0 and 1 are the two alternating
//!   superblock slots holding the savepoint manifest (version counter,
//!   clock, virtual-file list, CRC-protected). A savepoint writes all table
//!   images as virtual files, then flips the superblock, then truncates the
//!   REDO log — crash-safe at every step: until the new superblock is
//!   synced, recovery still sees the previous savepoint plus the old log.
//! * `redo.log` — the REDO log since the last savepoint.

use crate::codec::{crc32, Decoder, Encoder};
use crate::group::{GroupCommit, LogStats};
use crate::image::TableImage;
use crate::log::{LogRecord, RedoLog};
use crate::page::{PageId, PageStore, DEFAULT_PAGE_SIZE};
use crate::vfile::VirtualFile;
use hana_common::{CommitConfig, HanaError, Result, Timestamp};
use parking_lot::Mutex;
use std::path::Path;

/// Everything recovery reconstructs.
pub struct RecoveredState {
    /// Clock value at savepoint time (recovery advances it past replayed
    /// commits).
    pub clock: Timestamp,
    /// Savepoint version that was loaded (0 = none existed).
    pub savepoint_version: u64,
    /// Per-table images from the savepoint.
    pub images: Vec<TableImage>,
    /// Intact log records since that savepoint.
    pub log_records: Vec<LogRecord>,
    /// Commit-pipeline configuration persisted by the savepoint (defaults
    /// when no savepoint existed).
    pub commit_config: CommitConfig,
}

struct Manifest {
    version: u64,
    clock: Timestamp,
    commit_config: CommitConfig,
    files: Vec<VirtualFile>,
}

/// The durable side of a database instance.
pub struct Persistence {
    pages: PageStore,
    log: RedoLog,
    group: GroupCommit,
    /// Version counter + the previous savepoint's virtual files (released
    /// after the next successful savepoint).
    state: Mutex<(u64, Vec<VirtualFile>)>,
}

impl Persistence {
    /// Open (or initialize) persistence in `dir` with the default page size.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with_page_size(dir, DEFAULT_PAGE_SIZE)
    }

    /// Open with an explicit page size ("visible page limits of configurable
    /// size").
    pub fn open_with_page_size(dir: &Path, page_size: usize) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let pages = PageStore::open(&dir.join("data.pages"), page_size)?;
        let log = RedoLog::open(&dir.join("redo.log"))?;
        let current = read_best_manifest(&pages);
        let state = match current {
            Some(m) => (m.version, m.files),
            None => (0, Vec::new()),
        };
        Ok(Persistence {
            pages,
            log,
            group: GroupCommit::new(),
            state: Mutex::new(state),
        })
    }

    /// The REDO log handle.
    pub fn log(&self) -> &RedoLog {
        &self.log
    }

    /// Sequence one commit/abort record through the group-commit pipeline
    /// and return only once it is durable (see [`crate::group`]). `seq`
    /// runs under the pipeline's sequencing lock, so the order it
    /// establishes (commit-clock order) is the on-disk record order.
    pub fn commit_record<T>(
        &self,
        cfg: &CommitConfig,
        seq: impl FnOnce() -> Result<(LogRecord, T)>,
    ) -> Result<T> {
        self.group.submit(&self.log, cfg, seq)
    }

    /// Counters of the group-commit pipeline.
    pub fn log_stats(&self) -> LogStats {
        self.group.stats()
    }

    /// The page store (exposed for introspection/benches).
    pub fn pages(&self) -> &PageStore {
        &self.pages
    }

    /// Write a savepoint: persist `images`, flip the superblock, truncate
    /// the log. The database-wide `commit_config` rides along in the
    /// manifest (like the per-table merge/scan knobs ride in each table's
    /// image). Returns the new savepoint version.
    pub fn savepoint(
        &self,
        clock: Timestamp,
        commit_config: &CommitConfig,
        images: &[TableImage],
    ) -> Result<u64> {
        let mut state = self.state.lock();
        let (prev_version, prev_files) = (&state.0, state.1.clone());
        let version = *prev_version + 1;

        // 1. Write each table image as a virtual file.
        let mut files = Vec::with_capacity(images.len());
        for img in images {
            let mut e = Encoder::new();
            img.encode(&mut e);
            files.push(VirtualFile::write(&self.pages, &e.into_bytes())?);
        }
        self.pages.sync()?;

        // 2. Flip the superblock (slot = version % 2).
        let mut m = Encoder::new();
        m.u64(version);
        m.u64(clock);
        encode_commit_config(&mut m, commit_config);
        m.u32(files.len() as u32);
        for f in &files {
            f.encode(&mut m);
        }
        let payload = m.into_bytes();
        let mut framed = Encoder::new();
        framed.u32(crc32(&payload));
        framed.bytes(&payload);
        self.pages
            .write_page(PageId(version % 2), &framed.into_bytes())?;
        self.pages.sync()?;

        // 3. Truncate the log and release the previous savepoint's pages.
        self.log.truncate()?;
        for f in &prev_files {
            f.release(&self.pages);
        }
        *state = (version, files);
        Ok(version)
    }

    /// Recover the durable state from `dir`.
    pub fn recover(dir: &Path) -> Result<RecoveredState> {
        Self::recover_with_page_size(dir, DEFAULT_PAGE_SIZE)
    }

    /// Recover with an explicit page size.
    pub fn recover_with_page_size(dir: &Path, page_size: usize) -> Result<RecoveredState> {
        let pages_path = dir.join("data.pages");
        let (clock, savepoint_version, commit_config, images) = if pages_path.exists() {
            let pages = PageStore::open(&pages_path, page_size)?;
            match read_best_manifest(&pages) {
                Some(m) => {
                    let mut images = Vec::with_capacity(m.files.len());
                    for f in &m.files {
                        let blob = f.read(&pages)?;
                        images.push(TableImage::decode(&mut Decoder::new(&blob))?);
                    }
                    (m.clock, m.version, m.commit_config, images)
                }
                None => (0, 0, CommitConfig::default(), Vec::new()),
            }
        } else {
            (0, 0, CommitConfig::default(), Vec::new())
        };
        let log_records = RedoLog::read_all(&dir.join("redo.log"))?;
        Ok(RecoveredState {
            clock,
            savepoint_version,
            images,
            log_records,
            commit_config,
        })
    }
}

fn encode_commit_config(e: &mut Encoder, c: &CommitConfig) {
    e.bool(c.group_commit);
    e.u64(c.max_batch as u64);
    e.u64(c.max_wait_us);
}

fn decode_commit_config(d: &mut Decoder<'_>) -> Result<CommitConfig> {
    Ok(CommitConfig {
        group_commit: d.bool()?,
        max_batch: d.u64()? as usize,
        max_wait_us: d.u64()?,
    })
}

fn read_manifest_slot(pages: &PageStore, slot: u64) -> Option<Manifest> {
    let framed = pages.read_page(PageId(slot)).ok()?;
    let mut d = Decoder::new(&framed);
    let stored_crc = d.u32().ok()?;
    let payload = d.bytes().ok()?;
    if crc32(payload) != stored_crc {
        return None;
    }
    let mut d = Decoder::new(payload);
    let version = d.u64().ok()?;
    let clock = d.u64().ok()?;
    let commit_config = decode_commit_config(&mut d).ok()?;
    let n = d.u32().ok()? as usize;
    let mut files = Vec::with_capacity(n);
    for _ in 0..n {
        files.push(VirtualFile::decode(&mut d).ok()?);
    }
    Some(Manifest {
        version,
        clock,
        commit_config,
        files,
    })
}

fn read_best_manifest(pages: &PageStore) -> Option<Manifest> {
    let a = read_manifest_slot(pages, 0);
    let b = read_manifest_slot(pages, 1);
    match (a, b) {
        (Some(x), Some(y)) => Some(if x.version >= y.version { x } else { y }),
        (Some(x), None) => Some(x),
        (None, Some(y)) => Some(y),
        (None, None) => None,
    }
}

/// Validate a recovered manifest chain invariant (used by tests/tools).
pub fn check_recovered(state: &RecoveredState) -> Result<()> {
    for img in &state.images {
        for p in &img.main_parts {
            if p.row_ids.len() != p.begins.len() || p.begins.len() != p.ends.len() {
                return Err(HanaError::Persist(format!(
                    "inconsistent part image in table {}",
                    img.schema.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{DeltaImage, RowImage};
    use hana_common::TableId;
    use hana_common::{ColumnDef, DataType, RowId, Schema, TableConfig, TxnId, Value};
    use tempfile::tempdir;

    fn image(name: &str, rows: usize) -> TableImage {
        let schema = Schema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Str),
            ],
        )
        .unwrap();
        TableImage {
            table_id: 1,
            schema,
            config: TableConfig::default(),
            next_row_id: rows as u64,
            next_generation: 1,
            l1_rows: (0..rows)
                .map(|i| RowImage {
                    row_id: RowId(i as u64),
                    begin: 5,
                    end: u64::MAX,
                    values: vec![Value::Int(i as i64), Value::str(format!("v{i}"))],
                })
                .collect(),
            l2: DeltaImage::default(),
            main_parts: vec![],
            passive_count: 0,
            history: vec![],
        }
    }

    #[test]
    fn savepoint_then_recover() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.log()
            .append(&LogRecord::Commit {
                txn: TxnId(1),
                ts: 9,
            })
            .unwrap();
        p.log().flush().unwrap();
        let v = p
            .savepoint(10, &CommitConfig::default(), &[image("t", 100)])
            .unwrap();
        assert_eq!(v, 1);
        // Log truncated by the savepoint.
        assert_eq!(p.log().len_bytes().unwrap(), 0);
        // Post-savepoint activity lands in the log.
        p.log()
            .append(&LogRecord::Delete {
                table: TableId(1),
                row_id: RowId(0),
                txn: TxnId(2),
            })
            .unwrap();
        p.log().flush().unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 1);
        assert_eq!(rec.clock, 10);
        assert_eq!(rec.images.len(), 1);
        assert_eq!(rec.images[0].l1_rows.len(), 100);
        assert_eq!(rec.log_records.len(), 1);
        check_recovered(&rec).unwrap();
    }

    #[test]
    fn commit_config_round_trips_through_manifest() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        let cfg = CommitConfig::serial()
            .with_max_batch(17)
            .with_max_wait_us(250);
        p.savepoint(3, &cfg, &[image("t", 1)]).unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.commit_config, cfg);
        // No savepoint ⇒ defaults.
        let dir2 = tempdir().unwrap();
        let rec2 = Persistence::recover_with_page_size(dir2.path(), 256).unwrap();
        assert_eq!(rec2.commit_config, CommitConfig::default());
    }

    #[test]
    fn recover_empty_directory() {
        let dir = tempdir().unwrap();
        let rec = Persistence::recover(dir.path()).unwrap();
        assert_eq!(rec.savepoint_version, 0);
        assert!(rec.images.is_empty());
        assert!(rec.log_records.is_empty());
    }

    #[test]
    fn successive_savepoints_alternate_and_supersede() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(5, &CommitConfig::default(), &[image("t", 10)])
            .unwrap();
        p.savepoint(8, &CommitConfig::default(), &[image("t", 20)])
            .unwrap();
        let v3 = p
            .savepoint(12, &CommitConfig::default(), &[image("t", 30)])
            .unwrap();
        assert_eq!(v3, 3);
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 3);
        assert_eq!(rec.clock, 12);
        assert_eq!(rec.images[0].l1_rows.len(), 30);
    }

    #[test]
    fn crash_before_superblock_flip_keeps_old_savepoint() {
        // Simulate: savepoint 1 completes; then new image pages are written
        // but the superblock never flips (crash). Recovery must see v1.
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(5, &CommitConfig::default(), &[image("t", 10)])
            .unwrap();
        // Write orphan pages (as an interrupted savepoint would).
        let orphan = VirtualFile::write(p.pages(), &vec![9u8; 600]).unwrap();
        let _ = orphan;
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 1);
        assert_eq!(rec.images[0].l1_rows.len(), 10);
    }

    #[test]
    fn corrupt_newest_superblock_falls_back() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(5, &CommitConfig::default(), &[image("t", 10)])
            .unwrap(); // slot 1
        p.savepoint(8, &CommitConfig::default(), &[image("t", 20)])
            .unwrap(); // slot 0 (v2)
        drop(p);
        // Corrupt slot 0 (the newest, version 2).
        let path = dir.path().join("data.pages");
        let mut raw = std::fs::read(&path).unwrap();
        for b in raw.iter_mut().take(64) {
            *b ^= 0xFF;
        }
        std::fs::write(&path, &raw).unwrap();
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        // Falls back to version 1.
        assert_eq!(rec.savepoint_version, 1);
        assert_eq!(rec.images[0].l1_rows.len(), 10);
    }

    #[test]
    fn multiple_tables_per_savepoint() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(5, &CommitConfig::default(), &[image("a", 3), image("b", 7)])
            .unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.images.len(), 2);
        assert_eq!(rec.images[0].schema.name, "a");
        assert_eq!(rec.images[1].l1_rows.len(), 7);
    }
}
