//! Growable bitmaps for deletion vectors and NULL masks.

/// A simple growable bitset over row positions.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Bitmap {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    /// Logical length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no bits exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let w = self.len / 64;
        if w >= self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << (self.len % 64);
            self.ones += 1;
        }
        self.len += 1;
    }

    /// Grow to at least `len` bits (new bits are zero).
    pub fn grow(&mut self, len: usize) {
        if len > self.len {
            self.len = len;
            let need = len.div_ceil(64);
            if need > self.words.len() {
                self.words.resize(need, 0);
            }
        }
    }

    /// Read bit `i`; positions beyond the end read as 0.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set bit `i`, growing as needed.
    pub fn set(&mut self, i: usize) {
        self.grow(i + 1);
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask == 0 {
            self.words[i / 64] |= mask;
            self.ones += 1;
        }
    }

    /// Clear bit `i` (no-op past the end).
    pub fn clear(&mut self, i: usize) {
        if i >= self.len {
            return;
        }
        let mask = 1u64 << (i % 64);
        if self.words[i / 64] & mask != 0 {
            self.words[i / 64] &= !mask;
            self.ones -= 1;
        }
    }

    /// Set every bit in `[lo, hi)`, growing as needed. Word-at-a-time, so
    /// run-granular kernels (RLE, cluster, sparse) pay O(bits/64).
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        self.grow(hi);
        let (lw, hw) = (lo / 64, (hi - 1) / 64);
        for w in lw..=hw {
            let mut mask = u64::MAX;
            if w == lw {
                mask &= u64::MAX << (lo % 64);
            }
            if w == hw {
                let top = (hi - 1) % 64;
                mask &= u64::MAX >> (63 - top);
            }
            self.ones += (mask & !self.words[w]).count_ones() as usize;
            self.words[w] |= mask;
        }
    }

    /// Iterate positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let len = self.len;
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let base = wi * 64;
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let p = base + rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(p)
            })
            .filter(move |&p| p < len)
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn set_clear_idempotent() {
        let mut b = Bitmap::zeros(10);
        b.set(7);
        b.set(7);
        assert_eq!(b.count_ones(), 1);
        b.clear(7);
        b.clear(7);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(7));
    }

    #[test]
    fn set_grows() {
        let mut b = Bitmap::new();
        b.set(100);
        assert_eq!(b.len(), 101);
        assert!(b.get(100));
        assert!(!b.get(99));
        assert!(!b.get(500)); // out of range reads as 0
    }

    #[test]
    fn iter_ones_in_order() {
        let mut b = Bitmap::new();
        for p in [3usize, 64, 65, 128, 200] {
            b.set(p);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![3, 64, 65, 128, 200]);
    }

    #[test]
    fn iter_ones_empty() {
        assert_eq!(Bitmap::zeros(100).iter_ones().count(), 0);
    }

    #[test]
    fn set_range_matches_bitwise_set() {
        for (lo, hi) in [(0, 0), (0, 1), (3, 67), (64, 128), (5, 200), (63, 65)] {
            let mut a = Bitmap::zeros(256);
            a.set(10); // pre-set bit inside some ranges: ones must not double-count
            a.set_range(lo, hi);
            let mut b = Bitmap::zeros(256);
            b.set(10);
            for i in lo..hi {
                b.set(i);
            }
            assert_eq!(a.count_ones(), b.count_ones(), "[{lo},{hi})");
            for i in 0..256 {
                assert_eq!(a.get(i), b.get(i), "bit {i} of [{lo},{hi})");
            }
        }
    }

    #[test]
    fn set_range_grows() {
        let mut b = Bitmap::new();
        b.set_range(100, 130);
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 30);
        assert!(b.get(100) && b.get(129) && !b.get(99));
    }
}
