//! Scalar expressions, predicates and aggregate functions.

use hana_common::{HanaError, Result, Value};

/// A scalar expression evaluated against one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of a column (by position).
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Numeric addition.
    Add(Box<Expr>, Box<Expr>),
    /// Numeric subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Numeric multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Numeric division (NULL on division by zero).
    Div(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Shorthand for a column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Multiply two expressions.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }

    /// Add two expressions.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| HanaError::Query(format!("column {i} out of range"))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Add(a, b) => numeric(a.eval(row)?, b.eval(row)?, |x, y| x + y),
            Expr::Sub(a, b) => numeric(a.eval(row)?, b.eval(row)?, |x, y| x - y),
            Expr::Mul(a, b) => numeric(a.eval(row)?, b.eval(row)?, |x, y| x * y),
            Expr::Div(a, b) => {
                let (x, y) = (a.eval(row)?, b.eval(row)?);
                match (x.as_numeric(), y.as_numeric()) {
                    (Some(_), Some(0.0)) => Ok(Value::Null),
                    _ => numeric(x, y, |x, y| x / y),
                }
            }
        }
    }

    /// Column positions referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Column(i) => out.push(*i),
            Expr::Literal(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
        }
    }
}

fn numeric(a: Value, b: Value, f: impl Fn(f64, f64) -> f64) -> Result<Value> {
    match (a.as_numeric(), b.as_numeric()) {
        (Some(x), Some(y)) => {
            // Integer arithmetic stays integral when both sides are ints and
            // the result is whole.
            let r = f(x, y);
            if matches!((&a, &b), (Value::Int(_), Value::Int(_))) && r.fract() == 0.0 {
                Ok(Value::Int(r as i64))
            } else {
                Ok(Value::double(r))
            }
        }
        _ if a.is_null() || b.is_null() => Ok(Value::Null),
        _ => Err(HanaError::Query(format!(
            "non-numeric operands {a} and {b}"
        ))),
    }
}

/// A row predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `col = v`.
    Eq(usize, Value),
    /// `col <> v` (NULL-rejecting).
    Ne(usize, Value),
    /// `col < v`.
    Lt(usize, Value),
    /// `col <= v`.
    Le(usize, Value),
    /// `col > v`.
    Gt(usize, Value),
    /// `col >= v`.
    Ge(usize, Value),
    /// `lo <= col < hi` (half-open, matching dictionary code ranges).
    Between(usize, Value, Value),
    /// `col IN (…)`.
    InSet(usize, Vec<Value>),
    /// `col IS NULL`.
    IsNull(usize),
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Evaluate against a row. NULL comparisons are false (SQL semantics),
    /// except `IsNull`.
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(c, v) => !row[*c].is_null() && &row[*c] == v,
            Predicate::Ne(c, v) => !row[*c].is_null() && &row[*c] != v,
            Predicate::Lt(c, v) => !row[*c].is_null() && row[*c] < *v,
            Predicate::Le(c, v) => !row[*c].is_null() && row[*c] <= *v,
            Predicate::Gt(c, v) => !row[*c].is_null() && row[*c] > *v,
            Predicate::Ge(c, v) => !row[*c].is_null() && row[*c] >= *v,
            Predicate::Between(c, lo, hi) => !row[*c].is_null() && row[*c] >= *lo && row[*c] < *hi,
            Predicate::InSet(c, vs) => !row[*c].is_null() && vs.contains(&row[*c]),
            Predicate::IsNull(c) => row[*c].is_null(),
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(row)),
            Predicate::Not(p) => !p.eval(row),
        }
    }

    /// Conjoin two predicates.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut a)) => {
                a.insert(0, p);
                Predicate::And(a)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// Column positions referenced.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::True => {}
            Predicate::Eq(c, _)
            | Predicate::Ne(c, _)
            | Predicate::Lt(c, _)
            | Predicate::Le(c, _)
            | Predicate::Gt(c, _)
            | Predicate::Ge(c, _)
            | Predicate::Between(c, _, _)
            | Predicate::InSet(c, _)
            | Predicate::IsNull(c) => out.push(*c),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.referenced_columns(out);
                }
            }
            Predicate::Not(p) => p.referenced_columns(out),
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (column ignored for counting, NULLs included).
    Count,
    /// Numeric sum over non-null values.
    Sum,
    /// Numeric average over non-null values.
    Avg,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

/// Running state for one aggregate.
#[derive(Debug, Clone)]
pub struct AggState {
    func: AggFunc,
    count: u64,
    sum: f64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Fresh state for `func`.
    pub fn new(func: AggFunc) -> Self {
        AggState {
            func,
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        }
    }

    /// Fold one input value.
    pub fn update(&mut self, v: &Value) {
        match self.func {
            AggFunc::Count => self.count += 1,
            AggFunc::Sum | AggFunc::Avg => {
                if let Some(x) = v.as_numeric() {
                    self.count += 1;
                    self.sum += x;
                }
            }
            AggFunc::Min => {
                if !v.is_null() && self.min.as_ref().is_none_or(|m| v < m) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if !v.is_null() && self.max.as_ref().is_none_or(|m| v > m) {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    /// Merge another state (combine step of split/combine).
    pub fn merge(&mut self, other: &AggState) {
        debug_assert_eq!(self.func, other.func);
        self.count += other.count;
        self.sum += other.sum;
        if let Some(m) = &other.min {
            if self.min.as_ref().is_none_or(|s| m < s) {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            if self.max.as_ref().is_none_or(|s| m > s) {
                self.max = Some(m.clone());
            }
        }
    }

    /// Final value.
    pub fn finish(&self) -> Value {
        match self.func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => Value::double(self.sum),
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::double(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::str("Campbell"),
            Value::double(2.5),
            Value::Null,
        ]
    }

    #[test]
    fn expr_arithmetic() {
        let r = row();
        assert_eq!(
            Expr::col(0).mul(Expr::lit(3)).eval(&r).unwrap(),
            Value::Int(30)
        );
        assert_eq!(
            Expr::col(0).add(Expr::col(2)).eval(&r).unwrap(),
            Value::double(12.5)
        );
        // NULL propagates.
        assert_eq!(
            Expr::col(3).add(Expr::lit(1)).eval(&r).unwrap(),
            Value::Null
        );
        // Division by zero → NULL.
        assert_eq!(
            Expr::Div(Box::new(Expr::lit(1)), Box::new(Expr::lit(0)))
                .eval(&r)
                .unwrap(),
            Value::Null
        );
        // Type errors surface.
        assert!(Expr::col(1).add(Expr::lit(1)).eval(&r).is_err());
        assert!(Expr::col(9).eval(&r).is_err());
    }

    #[test]
    fn predicate_semantics() {
        let r = row();
        assert!(Predicate::Eq(1, Value::str("Campbell")).eval(&r));
        assert!(Predicate::Between(0, Value::Int(5), Value::Int(11)).eval(&r));
        assert!(!Predicate::Between(0, Value::Int(5), Value::Int(10)).eval(&r)); // half-open
        assert!(Predicate::InSet(0, vec![Value::Int(9), Value::Int(10)]).eval(&r));
        assert!(Predicate::IsNull(3).eval(&r));
        // NULL comparisons are false, and NOT(false)=true.
        assert!(!Predicate::Eq(3, Value::Int(1)).eval(&r));
        assert!(!Predicate::Ne(3, Value::Int(1)).eval(&r));
        assert!(Predicate::Not(Box::new(Predicate::Eq(0, Value::Int(9)))).eval(&r));
        assert!(Predicate::And(vec![
            Predicate::Gt(0, Value::Int(5)),
            Predicate::Lt(0, Value::Int(15))
        ])
        .eval(&r));
        assert!(Predicate::Or(vec![
            Predicate::Eq(0, Value::Int(0)),
            Predicate::Eq(0, Value::Int(10))
        ])
        .eval(&r));
    }

    #[test]
    fn predicate_and_composition() {
        let p = Predicate::True.and(Predicate::Eq(0, Value::Int(1)));
        assert_eq!(p, Predicate::Eq(0, Value::Int(1)));
        let q = Predicate::Eq(0, Value::Int(1)).and(Predicate::Eq(1, Value::Int(2)));
        assert!(matches!(q, Predicate::And(ref v) if v.len() == 2));
    }

    #[test]
    fn referenced_columns() {
        let mut cols = Vec::new();
        Expr::col(2).mul(Expr::col(0)).referenced_columns(&mut cols);
        assert_eq!(cols, vec![2, 0]);
        let mut cols = Vec::new();
        Predicate::And(vec![Predicate::Eq(1, Value::Int(1)), Predicate::IsNull(3)])
            .referenced_columns(&mut cols);
        assert_eq!(cols, vec![1, 3]);
    }

    #[test]
    fn aggregates_fold_and_merge() {
        let vals = [Value::Int(3), Value::Int(1), Value::Null, Value::Int(6)];
        for (f, want) in [
            (AggFunc::Count, Value::Int(4)),
            (AggFunc::Sum, Value::double(10.0)),
            (AggFunc::Min, Value::Int(1)),
            (AggFunc::Max, Value::Int(6)),
        ] {
            let mut s = AggState::new(f);
            for v in &vals {
                s.update(v);
            }
            assert_eq!(s.finish(), want, "{f:?}");
        }
        // Avg skips NULLs.
        let mut s = AggState::new(AggFunc::Avg);
        for v in &vals {
            s.update(v);
        }
        assert_eq!(s.finish(), Value::double(10.0 / 3.0));
        // Merge equals a single pass.
        let mut a = AggState::new(AggFunc::Sum);
        let mut b = AggState::new(AggFunc::Sum);
        a.update(&Value::Int(3));
        b.update(&Value::Int(7));
        a.merge(&b);
        assert_eq!(a.finish(), Value::double(10.0));
        // Empty aggregates.
        assert_eq!(AggState::new(AggFunc::Avg).finish(), Value::Null);
        assert_eq!(AggState::new(AggFunc::Min).finish(), Value::Null);
    }
}
