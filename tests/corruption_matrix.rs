//! The bit-flip corruption matrix: every persisted artifact class crossed
//! with every interesting byte region, one flipped bit per case.
//!
//! Fixture history (built once, files kept in memory, restored per case):
//!
//! * savepoint **v1**: keys 0..40 = `a{i}`
//! * savepoint **v2**: keys 0..20 updated to `b{i}`, keys 40..50 inserted
//! * **tail**: one post-savepoint transaction inserting keys 50..55 (lives
//!   only in the REDO log)
//!
//! After flipping one bit in `data.pages` or `redo.log`, reopening the
//! database must land in exactly one of:
//!
//! * the full state (**v2+tail**) — the flip hit dead bytes or a clean
//!   torn-tail region (truncated, all its transactions lost whole);
//! * exactly **v2** — the log was detectably unusable but stale-safe
//!   (epoch mismatch ⇒ ignored), or its tail tore at a transaction edge;
//! * exactly **v1** — the newest savepoint failed verification and
//!   recovery fell back to the previous generation;
//! * `HanaError::Corruption` — no consistent state survives, so the open
//!   **fails closed**.
//!
//! Serving damaged or chimeric rows is never acceptable; the assertion is
//! exact-set equality against the recorded snapshots.
//!
//! Per-push this samples the matrix; `CORRUPTION_MATRIX_FULL=1` (nightly)
//! sweeps every live page, every offset class, every bit.

use hana_common::{ColumnDef, ColumnId, DataType, HanaError, Schema, TableConfig, Value};
use hana_core::Database;
use hana_persist::DEFAULT_PAGE_SIZE;
use hana_txn::IsolationLevel;
use std::collections::BTreeMap;
use std::sync::Arc;

type Rows = BTreeMap<i64, String>;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("v", DataType::Str),
        ],
    )
    .unwrap()
}

fn rows_of(db: &Arc<Database>) -> Rows {
    let t = db.table("t").unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    t.read(&r)
        .collect_rows()
        .into_iter()
        .map(|vr| match (&vr.values[0], &vr.values[1]) {
            (Value::Int(k), Value::Str(s)) => (*k, s.to_string()),
            other => panic!("unexpected row shape {other:?}"),
        })
        .collect()
}

/// The pristine fixture: raw file bytes plus the three consistent states
/// a recovery is allowed to land in and the live-page corruption surface.
struct Fixture {
    pages: Vec<u8>,
    log: Vec<u8>,
    v1: Rows,
    v2: Rows,
    v2_tail: Rows,
    live_pages: Vec<u64>,
}

fn build_fixture() -> Fixture {
    let dir = tempfile::tempdir().unwrap();
    let (v1, v2, v2_tail, live_pages) = {
        let db = Database::open(dir.path()).unwrap();
        let t = db.create_table(schema(), TableConfig::small()).unwrap();

        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in 0..40 {
            t.insert(&txn, vec![Value::Int(i), Value::str(format!("a{i}"))])
                .unwrap();
        }
        db.commit(&mut txn).unwrap();
        // Push rows through the lifecycle so the savepoint images cover
        // more than the L1-delta.
        t.force_full_merge().unwrap();
        assert_eq!(db.savepoint().unwrap(), 1);
        let v1 = rows_of(&db);

        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in 0..20 {
            t.update_where(
                &txn,
                ColumnId(0),
                &Value::Int(i),
                &[(ColumnId(1), Value::str(format!("b{i}")))],
            )
            .unwrap();
        }
        for i in 40..50 {
            t.insert(&txn, vec![Value::Int(i), Value::str(format!("a{i}"))])
                .unwrap();
        }
        db.commit(&mut txn).unwrap();
        assert_eq!(db.savepoint().unwrap(), 2);
        let v2 = rows_of(&db);

        // Exactly ONE tail transaction: a torn log then recovers to v2 or
        // v2+tail, never to a mid-tail hybrid.
        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in 50..55 {
            t.insert(&txn, vec![Value::Int(i), Value::str(format!("c{i}"))])
                .unwrap();
        }
        db.commit(&mut txn).unwrap();
        let v2_tail = rows_of(&db);

        let live_pages = db.persistence().unwrap().live_page_ids();
        assert!(!live_pages.is_empty(), "fixture must have live image pages");
        (v1, v2, v2_tail, live_pages)
    };
    assert_ne!(v1, v2);
    assert_ne!(v2, v2_tail);
    Fixture {
        pages: std::fs::read(dir.path().join("data.pages")).unwrap(),
        log: std::fs::read(dir.path().join("redo.log")).unwrap(),
        v1,
        v2,
        v2_tail,
        live_pages,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Outcome {
    FullState,
    ExactV2,
    ExactV1,
    FailedClosed,
}

/// Restore the pristine files, flip one bit in one of them, reopen, and
/// classify the result. Panics on anything outside the acceptable set.
fn run_case(fx: &Fixture, file: &str, offset: usize, bit: u8) -> Outcome {
    let dir = tempfile::tempdir().unwrap();
    let mut pages = fx.pages.clone();
    let mut log = fx.log.clone();
    match file {
        "data.pages" => pages[offset] ^= 1 << bit,
        "redo.log" => log[offset] ^= 1 << bit,
        other => panic!("unknown file {other}"),
    }
    std::fs::write(dir.path().join("data.pages"), &pages).unwrap();
    std::fs::write(dir.path().join("redo.log"), &log).unwrap();

    let ctx = format!("{file} offset {offset} bit {bit}");
    match Database::open(dir.path()) {
        Ok(db) => {
            let rows = rows_of(&db);
            if rows == fx.v2_tail {
                Outcome::FullState
            } else if rows == fx.v2 {
                Outcome::ExactV2
            } else if rows == fx.v1 {
                Outcome::ExactV1
            } else {
                panic!(
                    "{ctx}: recovered to a state that is none of v1/v2/v2+tail \
                     ({} rows) — corrupt rows may have been served",
                    rows.len()
                );
            }
        }
        Err(HanaError::Corruption(_)) => Outcome::FailedClosed,
        Err(e) => panic!("{ctx}: failed with a non-corruption error: {e}"),
    }
}

/// Offsets within one page: envelope header bytes (magic, version, kind,
/// flags, length, CRC) and the first payload bytes.
fn page_offsets(base: usize, full: bool) -> Vec<usize> {
    let rel: &[usize] = if full {
        &[0, 1, 2, 3, 4, 5, 8, 11, 12, 13, 40]
    } else {
        &[0, 8, 12]
    };
    rel.iter().map(|r| base + r).collect()
}

#[test]
fn bit_flip_matrix_never_serves_corrupt_rows() {
    let full = std::env::var("CORRUPTION_MATRIX_FULL").is_ok_and(|v| v == "1");
    let fx = build_fixture();
    let bits: Vec<u8> = if full { (0..8).collect() } else { vec![0, 7] };

    // Page-artifact targets: both superblock slots (manifests) and the
    // live table-image pages. Sampled mode takes the slots plus the first
    // and last live page; full mode takes every live page.
    let mut page_targets: Vec<u64> = vec![0, 1];
    if full {
        page_targets.extend(fx.live_pages.iter().copied());
    } else {
        page_targets.push(*fx.live_pages.first().unwrap());
        page_targets.push(*fx.live_pages.last().unwrap());
    }

    let mut cases: Vec<(&str, usize, u8)> = Vec::new();
    for &pid in &page_targets {
        for off in page_offsets(pid as usize * DEFAULT_PAGE_SIZE, full) {
            assert!(off < fx.pages.len(), "page {pid} offset out of file");
            for &b in &bits {
                cases.push(("data.pages", off, b));
            }
        }
    }
    // Log targets: header magic, header epoch, first frame's length / CRC /
    // payload, a mid-file byte and the final byte.
    let llen = fx.log.len();
    assert!(llen > 28, "fixture log must contain the tail transaction");
    let mut log_offsets = vec![0, 8, 16, 20, 24, llen / 2, llen - 1];
    if full {
        log_offsets.extend([1, 7, 9, 15, 17, 21, 25, llen / 3, llen - 2]);
    }
    log_offsets.sort_unstable();
    log_offsets.dedup();
    for off in log_offsets {
        for &b in &bits {
            cases.push(("redo.log", off, b));
        }
    }

    let mut seen: BTreeMap<&'static str, u64> = BTreeMap::new();
    for (file, off, bit) in &cases {
        let outcome = run_case(&fx, file, *off, *bit);
        let key = match outcome {
            Outcome::FullState => "full",
            Outcome::ExactV2 => "v2",
            Outcome::ExactV1 => "v1",
            Outcome::FailedClosed => "corruption",
        };
        *seen.entry(key).or_default() += 1;
    }
    println!(
        "corruption matrix: {} cases ({}) -> {:?}",
        cases.len(),
        if full { "full" } else { "sampled" },
        seen
    );

    // The matrix must exercise both recovery paths: redundancy fallback
    // (older savepoint generation) and the fail-closed refusal.
    assert!(
        seen.contains_key("v1"),
        "no case fell back to the previous savepoint generation"
    );
    assert!(
        seen.contains_key("corruption"),
        "no case failed closed with HanaError::Corruption"
    );
}

/// Pin the headline fallback path: damaging the newest manifest page
/// recovers the previous savepoint exactly, and the reopened database is
/// fully writable afterwards.
#[test]
fn newest_manifest_damage_falls_back_one_generation() {
    let fx = build_fixture();
    // Savepoint v2 lives in slot 0 (version % 2).
    assert_eq!(
        run_case(&fx, "data.pages", 12, 0),
        Outcome::ExactV1,
        "flipping the newest manifest's first payload bit must fall back to v1"
    );
}

/// Pin the fail-closed path: a complete log record whose checksum no
/// longer matches must refuse recovery with the named error (a torn tail
/// would truncate; rot must not).
#[test]
fn mid_log_rot_refuses_to_open_with_named_error() {
    let fx = build_fixture();
    let dir = tempfile::tempdir().unwrap();
    let mut log = fx.log.clone();
    let off = 24; // first frame's payload
    log[off] ^= 0x10;
    std::fs::write(dir.path().join("data.pages"), &fx.pages).unwrap();
    std::fs::write(dir.path().join("redo.log"), &log).unwrap();
    let err = match Database::open(dir.path()) {
        Ok(_) => panic!("a database with mid-log rot must not open"),
        Err(e) => e,
    };
    match err {
        HanaError::Corruption(m) => {
            assert!(m.contains("checksum"), "message should name the cause: {m}")
        }
        other => panic!("expected HanaError::Corruption, got {other}"),
    }
}
