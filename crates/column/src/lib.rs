//! Compressed column vectors, inverted indexes and scan kernels.
//!
//! The main store represents every column as dictionary codes "stored in a
//! bit-packed manner" with "a combination of different compression
//! techniques – ranging from simple run-length coding schemes to more complex
//! compression techniques" on top (paper §3). This crate provides:
//!
//! * [`BitPackedVec`] — ⌈ld C⌉-bit packed code vector, the default layout;
//! * [`Rle`] — run-length encoding for sorted/low-cardinality columns;
//! * [`Sparse`] — dominant-value encoding with an exception list;
//! * [`Cluster`] — fixed-size blocks, single-valued blocks stored once;
//! * [`CodeVector`] — the enum over all encodings with a uniform access and
//!   scan API plus a statistics-driven chooser (after Lemke et al. [9],
//!   Paradies et al. [10]);
//! * [`InvertedIndex`] / [`GrowableInvertedIndex`] — code → positions lists
//!   backing the paper's "inverted indexes for the delta and main structures"
//!   used for unique-constraint checks and point queries;
//! * [`Bitmap`] — deletion/null bitmaps.

pub mod bitmap;
pub mod bitpack;
pub mod cluster;
pub mod encoding;
pub mod invidx;
pub mod kernel;
pub mod rle;
pub mod sparse;
pub mod stats;
pub mod zonemap;

pub use bitmap::Bitmap;
pub use bitpack::BitPackedVec;
pub use cluster::Cluster;
pub use encoding::{CodeVector, Encoding};
pub use invidx::{GrowableInvertedIndex, InvertedIndex};
pub use kernel::{BlockPlan, CodeFilter, CodeMatcher};
pub use rle::Rle;
pub use sparse::Sparse;
pub use stats::CodeStats;
pub use zonemap::{ZoneEntry, ZoneMap, ZONE_CHUNK_ROWS};

/// Dictionary code type (mirrors `hana_dict::Code`).
pub type Code = u32;

/// Row position within a store.
pub type Pos = u32;

/// Number of bits needed to represent codes `0..=max`.
#[inline]
pub fn bits_for(max: Code) -> u8 {
    (Code::BITS - max.leading_zeros()).max(1) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_matches_ceil_log2() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX), 32);
    }
}
