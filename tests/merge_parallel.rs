//! Determinism of the column-parallel delta-to-main merge: for every merge
//! strategy, the parallel fan-out must produce a main that is bit-identical
//! to the serial merge — same dictionaries, same codes, same row order.

use hana_common::{ColumnDef, DataType, MergeConfig, Schema, TableConfig, Value};
use hana_core::{Database, UnifiedTable};
use hana_merge::MergeDecision;
use hana_persist::TableImage;
use hana_txn::IsolationLevel;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("v", DataType::Int),
            ColumnDef::new("s", DataType::Str),
            ColumnDef::new("w", DataType::Int),
        ],
    )
    .unwrap()
}

fn load(db: &Database, table: &Arc<UnifiedTable>, rows: &[(i64, String, i64)], first_id: i64) {
    if rows.is_empty() {
        return;
    }
    let batch: Vec<Vec<Value>> = rows
        .iter()
        .enumerate()
        .map(|(i, (v, s, w))| {
            vec![
                Value::Int(first_id + i as i64),
                Value::Int(*v),
                Value::str(s.as_str()),
                Value::Int(*w),
            ]
        })
        .collect();
    let mut txn = db.begin(IsolationLevel::Transaction);
    table.bulk_load(&txn, batch).unwrap();
    db.commit(&mut txn).unwrap();
}

/// Build a table, merge the first half classically into a main, load the
/// second half and merge it with `decision` under the given column
/// parallelism, then export the savepoint image of the result.
fn merged_image(
    parallelism: usize,
    rows: &[(i64, String, i64)],
    decision: MergeDecision,
) -> TableImage {
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    }
    .with_merge(MergeConfig::default().with_column_parallelism(parallelism));
    let table = db.create_table(schema(), cfg).unwrap();
    let (first, second) = rows.split_at(rows.len() / 2);
    load(&db, &table, first, 0);
    if !first.is_empty() {
        table.merge_delta_as(MergeDecision::Classic).unwrap();
    }
    load(&db, &table, second, first.len() as i64);
    table.merge_delta_as(decision).unwrap();
    table.to_image()
}

fn assert_same_main(serial: &TableImage, parallel: &TableImage) {
    assert_eq!(serial.main_parts.len(), parallel.main_parts.len());
    assert_eq!(serial.passive_count, parallel.passive_count);
    for (s, p) in serial.main_parts.iter().zip(&parallel.main_parts) {
        assert_eq!(s.columns, p.columns, "dicts/bases/codes must match");
        assert_eq!(s.row_ids, p.row_ids, "row order must match");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Classic, re-sorting and partial merges all yield identical mains
    /// whether the per-column work runs on 1 or 4 workers.
    #[test]
    fn parallel_merge_matches_serial(
        rows in prop::collection::vec(
            (0i64..20, "[a-e]{1,3}", -1000i64..1000),
            2..40,
        )
    ) {
        for decision in [
            MergeDecision::Classic,
            MergeDecision::ReSorting,
            MergeDecision::Partial,
        ] {
            let serial = merged_image(1, &rows, decision);
            let parallel = merged_image(4, &rows, decision);
            assert_same_main(&serial, &parallel);
        }
    }
}

/// The recorded metrics reflect the merge that actually ran.
#[test]
fn merge_metrics_recorded() {
    let rows: Vec<(i64, String, i64)> = (0..100)
        .map(|i| (i % 7, format!("s{}", i % 5), i * 3))
        .collect();
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    }
    .with_merge(MergeConfig::default().with_column_parallelism(3));
    let table = db.create_table(schema(), cfg).unwrap();
    assert!(table.last_merge_metrics().is_none());
    load(&db, &table, &rows, 0);
    table.merge_delta_as(MergeDecision::Classic).unwrap();
    let m = table.last_merge_metrics().expect("metrics after merge");
    assert_eq!(m.rows_in, 100);
    assert_eq!(m.rows_out, 100);
    assert_eq!(m.columns, 4);
    assert_eq!(m.parallel_workers, 3);
}

/// Explicitly oversubscribed parallelism (more workers than columns) still
/// produces the serial result.
#[test]
fn oversubscribed_workers_match_serial() {
    let rows: Vec<(i64, String, i64)> = (0..60).map(|i| (i % 4, "x".into(), i)).collect();
    let serial = merged_image(1, &rows, MergeDecision::Classic);
    let wide = merged_image(64, &rows, MergeDecision::Classic);
    assert_same_main(&serial, &wide);
}
