//! Shared fixtures for the figure benches and the `repro` harness.
//!
//! Each bench regenerates the behavioural claim of one paper figure (see
//! DESIGN.md §4). The helpers here build tables in precisely controlled
//! lifecycle states so benches measure exactly one mechanism.

use hana_common::{TableConfig, Value};
use hana_core::{Database, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;
use hana_workload::{DataGen, SalesSchema};
use std::sync::Arc;

/// Standard bench scale knobs.
pub const CUSTOMERS: i64 = 1_000;
/// Product dimension cardinality.
pub const PRODUCTS: i64 = 200;

/// A database + sales table with `rows` fact rows, all resident in the
/// requested stage.
pub struct StagedTable {
    /// The owning database.
    pub db: Arc<Database>,
    /// The fact table.
    pub table: Arc<UnifiedTable>,
    /// Rows loaded.
    pub rows: i64,
}

/// Which stage the fixture leaves its rows in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// All rows in the L1-delta.
    L1,
    /// All rows in the L2-delta.
    L2,
    /// All rows in a single-part main.
    Main,
}

/// Build a sales table with all `rows` rows in `stage`.
pub fn staged_sales(rows: i64, stage: Stage, seed: u64) -> StagedTable {
    staged_sales_merge(rows, stage, seed, hana_common::MergeConfig::default())
}

/// [`staged_sales`] with an explicit merge configuration (used by the F7c
/// bench to compare publication protocols on identical tables).
pub fn staged_sales_merge(
    rows: i64,
    stage: Stage,
    seed: u64,
    merge: hana_common::MergeConfig,
) -> StagedTable {
    let db = Database::in_memory();
    // Thresholds high enough that nothing merges behind our back.
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    }
    .with_merge(merge);
    let table = db.create_table(SalesSchema::fact(), cfg).unwrap();
    let mut gen = DataGen::new(seed);
    let mut txn = db.begin(IsolationLevel::Transaction);
    match stage {
        Stage::L1 => {
            for i in 0..rows {
                table
                    .insert(
                        &txn,
                        SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS),
                    )
                    .unwrap();
            }
            db.commit(&mut txn).unwrap();
        }
        Stage::L2 | Stage::Main => {
            let batch: Vec<Vec<Value>> = (0..rows)
                .map(|i| SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS))
                .collect();
            table.bulk_load(&txn, batch).unwrap();
            db.commit(&mut txn).unwrap();
            if stage == Stage::Main {
                table.merge_delta_as(MergeDecision::Classic).unwrap();
            }
        }
    }
    StagedTable { db, table, rows }
}

/// Fill the table's L1 with `n` additional committed rows starting at
/// `first_id` (used to prepare merge inputs).
pub fn fill_l1(st: &StagedTable, first_id: i64, n: i64, seed: u64) {
    let mut gen = DataGen::new(seed);
    let mut txn = st.db.begin(IsolationLevel::Transaction);
    for i in 0..n {
        st.table
            .insert(
                &txn,
                SalesSchema::fact_row(&mut gen, first_id + i, CUSTOMERS, PRODUCTS),
            )
            .unwrap();
    }
    st.db.commit(&mut txn).unwrap();
}

/// Bulk-load `n` additional rows straight into the L2.
pub fn fill_l2(st: &StagedTable, first_id: i64, n: i64, seed: u64) {
    let mut gen = DataGen::new(seed);
    let batch: Vec<Vec<Value>> = (0..n)
        .map(|i| SalesSchema::fact_row(&mut gen, first_id + i, CUSTOMERS, PRODUCTS))
        .collect();
    let mut txn = st.db.begin(IsolationLevel::Transaction);
    st.table.bulk_load(&txn, batch).unwrap();
    st.db.commit(&mut txn).unwrap();
}

/// Render a markdown table (used by the repro harness).
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// True when the harness runs in quick (CI smoke) mode: `REPRO_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("REPRO_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Scale a row count for the current mode: quick mode caps every dataset
/// so the whole harness finishes in seconds on a CI runner.
pub fn scale(rows: i64) -> i64 {
    if quick_mode() {
        rows.min(4_000)
    } else {
        rows
    }
}

/// Scale a wall-clock measurement window for the current mode.
pub fn scale_duration(d: std::time::Duration) -> std::time::Duration {
    if quick_mode() {
        d.min(std::time::Duration::from_millis(250))
    } else {
        d
    }
}

/// Machine-readable mirror of the repro harness's markdown tables. Each
/// recorded section becomes one JSON object; [`report::write_json`] dumps
/// them to the path in `REPRO_JSON` so CI can archive the numbers.
pub mod report {
    use std::sync::Mutex;

    struct Section {
        name: String,
        headers: Vec<String>,
        rows: Vec<Vec<String>>,
    }

    static SECTIONS: Mutex<Vec<Section>> = Mutex::new(Vec::new());

    /// Print a section's markdown table and record it for the JSON dump.
    pub fn emit(name: &str, headers: &[&str], rows: &[Vec<String>]) {
        println!("{}", super::markdown_table(headers, rows));
        SECTIONS.lock().expect("report mutex").push(Section {
            name: name.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: rows.to_vec(),
        });
    }

    fn json_escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    fn json_array(items: impl Iterator<Item = String>) -> String {
        format!("[{}]", items.collect::<Vec<_>>().join(","))
    }

    /// Serialize every recorded section. Rows become objects keyed by the
    /// column headers.
    pub fn to_json() -> String {
        let sections = SECTIONS.lock().expect("report mutex");
        let body = json_array(sections.iter().map(|s| {
            let rows = json_array(s.rows.iter().map(|row| {
                let fields: Vec<String> = s
                    .headers
                    .iter()
                    .zip(row)
                    .map(|(h, v)| format!("\"{}\":\"{}\"", json_escape(h), json_escape(v)))
                    .collect();
                format!("{{{}}}", fields.join(","))
            }));
            format!(
                "{{\"section\":\"{}\",\"rows\":{}}}",
                json_escape(&s.name),
                rows
            )
        }));
        format!("{{\"sections\":{body}}}\n")
    }

    /// Write the JSON dump to the path in `REPRO_JSON`, if set.
    pub fn write_json() -> std::io::Result<()> {
        if let Ok(path) = std::env::var("REPRO_JSON") {
            if !path.is_empty() {
                std::fs::write(&path, to_json())?;
                eprintln!("repro: wrote JSON report to {path}");
            }
        }
        Ok(())
    }
}
