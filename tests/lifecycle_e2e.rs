//! End-to-end record-lifecycle tests spanning core + merge + store crates.

use hana_common::{ColumnDef, ColumnId, DataType, MergeStrategy, Schema, TableConfig, Value};
use hana_core::{Database, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("city", DataType::Str),
            ColumnDef::new("amount", DataType::Int),
        ],
    )
    .unwrap()
}

fn insert_range(db: &Arc<Database>, t: &Arc<UnifiedTable>, lo: i64, hi: i64) {
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in lo..hi {
        t.insert(
            &txn,
            vec![
                Value::Int(i),
                Value::str(format!("city{}", i % 7)),
                Value::Int(i * 10),
            ],
        )
        .unwrap();
    }
    db.commit(&mut txn).unwrap();
}

/// Every row remains point-queryable, aggregable and countable while being
/// pushed through every stage and every merge flavour.
#[test]
fn queries_stable_across_whole_lifecycle() {
    for strategy in [
        MergeStrategy::Classic,
        MergeStrategy::ReSorting,
        MergeStrategy::Partial,
        MergeStrategy::Auto,
    ] {
        let db = Database::in_memory();
        let cfg = TableConfig {
            l1_max_rows: 50,
            l2_max_rows: 200,
            merge_strategy: strategy,
            active_main_max_fraction: 0.3,
            ..TableConfig::default()
        };
        let t = db.create_table(schema(), cfg).unwrap();
        for round in 0..5 {
            insert_range(&db, &t, round * 300, (round + 1) * 300);
            while t.maybe_merge_once().unwrap() {}
            let r = db.begin(IsolationLevel::Transaction);
            let read = t.read(&r);
            let expected = ((round + 1) * 300) as usize;
            assert_eq!(read.count(), expected, "{strategy:?} round {round}");
            let (c, s) = read.aggregate_numeric(2).unwrap();
            assert_eq!(c as usize, expected);
            let n = (round + 1) * 300;
            assert_eq!(s, (0..n).map(|i| (i * 10) as f64).sum::<f64>());
            for probe in [0, n / 2, n - 1] {
                assert_eq!(
                    read.point(0, &Value::Int(probe)).unwrap().len(),
                    1,
                    "{strategy:?} probe {probe}"
                );
            }
        }
    }
}

/// Updates hitting rows in every stage are never lost by merges.
#[test]
fn updates_survive_merges_in_every_stage() {
    let db = Database::in_memory();
    let t = db
        .create_table(
            schema(),
            TableConfig::small().with_l1_max(20).with_l2_max(60),
        )
        .unwrap();
    insert_range(&db, &t, 0, 100);
    t.drain_l1().unwrap();
    t.merge_delta_as(MergeDecision::Classic).unwrap(); // 100 rows in main
    insert_range(&db, &t, 100, 150);
    t.drain_l1().unwrap(); // 50 rows in L2
    insert_range(&db, &t, 150, 170); // 20 rows in L1

    // Update one row per stage.
    let mut txn = db.begin(IsolationLevel::Transaction);
    for id in [5i64, 120, 160] {
        t.update_where(
            &txn,
            ColumnId(0),
            &Value::Int(id),
            &[(ColumnId(2), Value::Int(-1))],
        )
        .unwrap();
    }
    db.commit(&mut txn).unwrap();

    // Full merge everything and verify.
    t.force_full_merge().unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    let read = t.read(&r);
    assert_eq!(read.count(), 170);
    for id in [5i64, 120, 160] {
        let rows = read.point(0, &Value::Int(id)).unwrap();
        assert_eq!(rows.len(), 1, "id {id}");
        assert_eq!(rows[0][2], Value::Int(-1), "id {id}");
    }
    // Untouched neighbours unchanged.
    assert_eq!(read.point(0, &Value::Int(6)).unwrap()[0][2], Value::Int(60));
}

/// The unique constraint holds across stages: a key deleted from the main
/// can be reinserted; a live key can't be duplicated from any stage.
#[test]
fn unique_constraint_across_stages() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    insert_range(&db, &t, 0, 30);
    t.force_full_merge().unwrap();

    // Duplicate of a main-resident key: rejected.
    let txn = db.begin(IsolationLevel::Transaction);
    let err = t
        .insert(&txn, vec![Value::Int(5), Value::str("x"), Value::Int(0)])
        .unwrap_err();
    assert!(matches!(err, hana_common::HanaError::Constraint(_)));
    drop(txn);

    // Delete then reinsert the same key.
    let mut txn = db.begin(IsolationLevel::Transaction);
    t.delete_where(&txn, ColumnId(0), &Value::Int(5)).unwrap();
    db.commit(&mut txn).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    t.insert(
        &txn,
        vec![Value::Int(5), Value::str("again"), Value::Int(1)],
    )
    .unwrap();
    db.commit(&mut txn).unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    let rows = t.read(&r).point(0, &Value::Int(5)).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][1], Value::str("again"));
}

/// Bulk loads bypass the L1 and are immediately visible and mergeable.
#[test]
fn bulk_load_bypasses_l1() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    let rows: Vec<Vec<Value>> = (0..500)
        .map(|i| vec![Value::Int(i), Value::str("bulk"), Value::Int(i)])
        .collect();
    t.bulk_load(&txn, rows).unwrap();
    db.commit(&mut txn).unwrap();
    let s = t.stage_stats();
    assert_eq!(s.l1_rows, 0, "bulk load must not touch the L1");
    assert_eq!(s.l2_rows, 500);
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), 500);
    t.merge_delta_as(MergeDecision::Classic).unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), 500);
    assert_eq!(t.stage_stats().main_rows, 500);
}

/// A long-running reader pinned before a cascade of merges keeps its exact
/// view (paper §4.1's old-version retention).
#[test]
fn long_reader_survives_merge_cascade() {
    let db = Database::in_memory();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    insert_range(&db, &t, 0, 200);
    let reader = db.begin(IsolationLevel::Transaction);
    let view = t.read(&reader);

    // Churn: merges, updates, deletes, more merges.
    t.drain_l1().unwrap();
    t.merge_delta_as(MergeDecision::Classic).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 0..100 {
        t.delete_where(&txn, ColumnId(0), &Value::Int(i)).unwrap();
    }
    db.commit(&mut txn).unwrap();
    insert_range(&db, &t, 200, 400);
    t.force_full_merge().unwrap();

    // The pinned view is untouched.
    assert_eq!(view.count(), 200);
    let (c, _) = view.aggregate_numeric(2).unwrap();
    assert_eq!(c, 200);
    assert_eq!(view.point(0, &Value::Int(50)).unwrap().len(), 1);
    // A fresh view sees the churned state: 200 - 100 + 200.
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), 300);
}

/// Partitioned tables route and merge independently.
#[test]
fn partitioned_lifecycle() {
    use hana_core::partition::PartitionedTable;
    let mgr = hana_txn::TxnManager::new();
    let pt = PartitionedTable::new(
        schema(),
        ColumnId(0),
        4,
        TableConfig::small(),
        Arc::clone(&mgr),
    )
    .unwrap();
    let mut txn = mgr.begin(IsolationLevel::Transaction);
    for i in 0..400 {
        pt.insert(&txn, vec![Value::Int(i), Value::str("p"), Value::Int(1)])
            .unwrap();
    }
    txn.commit().unwrap();
    while pt.maybe_merge_all().unwrap() {}
    let snap = hana_txn::Snapshot::at(mgr.now());
    assert_eq!(pt.parallel_scan(snap).len(), 400);
    let (c, s) = pt.parallel_aggregate(snap, 2).unwrap();
    assert_eq!((c, s), (400, 400.0));
    // Rows merged somewhere down the pipeline in each partition.
    let merged: usize = pt
        .partitions()
        .iter()
        .map(|p| p.stage_stats().main_rows)
        .sum();
    assert!(merged > 0);
}
