//! The append-only, unsorted dictionary of the L2-delta.
//!
//! Per the paper, the L2-delta dictionary is *unsorted* for performance:
//! inserting a never-seen value appends it at the end, so no existing code
//! ever changes and in-flight readers are never invalidated. Point lookups go
//! through a hash side-index (the paper's "secondary index structures").

use crate::Code;
use hana_common::Value;
use rustc_hash::FxHashMap;

/// Append-only dictionary mapping non-null [`Value`]s to dense codes.
#[derive(Debug, Clone, Default)]
pub struct UnsortedDict {
    values: Vec<Value>,
    index: FxHashMap<Value, Code>,
}

impl UnsortedDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty dictionary with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        UnsortedDict {
            values: Vec::with_capacity(cap),
            index: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Number of distinct values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no values have been inserted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Code for `v`, inserting it at the end if missing.
    ///
    /// # Panics
    /// Panics on `Value::Null`: NULLs never enter dictionaries.
    pub fn get_or_insert(&mut self, v: &Value) -> Code {
        assert!(!v.is_null(), "NULL must not enter a dictionary");
        if let Some(&c) = self.index.get(v) {
            return c;
        }
        let c = self.values.len() as Code;
        self.values.push(v.clone());
        self.index.insert(v.clone(), c);
        c
    }

    /// Code for `v`, if it is present.
    #[inline]
    pub fn code_of(&self, v: &Value) -> Option<Code> {
        self.index.get(v).copied()
    }

    /// Value for an existing code.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    #[inline]
    pub fn value_of(&self, c: Code) -> &Value {
        &self.values[c as usize]
    }

    /// All values in insertion (code) order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Permutation of codes that sorts the dictionary by value. Used when
    /// the unified-table access layer needs this delta's values in global
    /// sort order (paper §3.1: delta dictionaries are "sorted … on the fly"),
    /// and by the delta-to-main merge.
    pub fn sorted_codes(&self) -> Vec<Code> {
        let mut perm: Vec<Code> = (0..self.values.len() as Code).collect();
        perm.sort_unstable_by(|&a, &b| self.values[a as usize].cmp(&self.values[b as usize]));
        perm
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        let vals: usize = self.values.iter().map(Value::heap_size).sum();
        // Hash index: entry ≈ value + code + bucket overhead.
        vals * 2 + self.index.len() * std::mem::size_of::<Code>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_assigns_codes_in_arrival_order() {
        let mut d = UnsortedDict::new();
        // The paper's Fig 7 example: delta dictionary in arrival order.
        assert_eq!(d.get_or_insert(&Value::str("Los Gatos")), 0);
        assert_eq!(d.get_or_insert(&Value::str("Campbell")), 1);
        assert_eq!(d.get_or_insert(&Value::str("Saratoga")), 2);
        // Re-inserting returns the existing code.
        assert_eq!(d.get_or_insert(&Value::str("Campbell")), 1);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn code_lookup_both_directions() {
        let mut d = UnsortedDict::new();
        d.get_or_insert(&Value::Int(10));
        d.get_or_insert(&Value::Int(20));
        assert_eq!(d.code_of(&Value::Int(20)), Some(1));
        assert_eq!(d.code_of(&Value::Int(30)), None);
        assert_eq!(d.value_of(0), &Value::Int(10));
    }

    #[test]
    fn sorted_codes_is_a_sorting_permutation() {
        let mut d = UnsortedDict::new();
        for v in ["pear", "apple", "zebra", "mango"] {
            d.get_or_insert(&Value::str(v));
        }
        let perm = d.sorted_codes();
        let sorted: Vec<&Value> = perm.iter().map(|&c| d.value_of(c)).collect();
        assert_eq!(
            sorted,
            vec![
                &Value::str("apple"),
                &Value::str("mango"),
                &Value::str("pear"),
                &Value::str("zebra")
            ]
        );
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn null_rejected() {
        UnsortedDict::new().get_or_insert(&Value::Null);
    }

    #[test]
    fn heap_size_nonzero_after_insert() {
        let mut d = UnsortedDict::new();
        d.get_or_insert(&Value::str("x"));
        assert!(d.heap_size() > 0);
    }
}
