//! Hash-partitioned tables with a fully sharded lifecycle.
//!
//! §4.3: "the partitioning concept can be used to separate recent data sets
//! from more stable data sets" — and the engine layer's split/combine
//! operators distribute work across partitions. [`PartitionedTable`] routes
//! rows by a hash of the partition key to N unified tables. Each partition
//! is a complete unified table — its own L1/L2/main, row locks, merge
//! policy state, zone maps and inverted indexes — so N writers on N
//! partitions share nothing on the hot path except commit sequencing
//! (which stays on the database's group-commit pipeline). Because every
//! partition carries its own `TableId` and writes note it on the
//! transaction, commit/abort visit exactly the (table, partition) pairs a
//! transaction actually wrote.
//!
//! Reads fan out through [`PartitionedRead`]: one pinned [`TableRead`] per
//! partition under one shared snapshot, executed over the bounded
//! [`map_indexed`] pool and combined in partition-index order — each
//! partition's result is bit-identical to its serial scan, so the combined
//! output is deterministic regardless of worker count.

use crate::filter::{ColumnPredicate, ScanStats};
use crate::read::{TableRead, VisibleRow};
use crate::table::UnifiedTable;
use hana_common::{
    ColumnId, HanaError, PartitionSpec, Result, RowId, Schema, TableConfig, TableId, Value,
};
use hana_merge::{effective_workers, map_indexed};
use hana_txn::{Snapshot, Transaction, TxnManager};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A table hash-partitioned over N unified tables.
pub struct PartitionedTable {
    schema: Schema,
    key_col: ColumnId,
    partitions: Vec<Arc<UnifiedTable>>,
}

fn hash_value(v: &Value) -> u64 {
    let mut h = rustc_hash::FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

/// Derive one partition's `TableConfig` from the logical table's: the
/// delta thresholds are the *logical* budget, divided across partitions so
/// partitioning shards the delta instead of multiplying it, and the
/// [`PartitionSpec`] is stamped so the config codec persists the
/// partition's identity into log records and savepoint images.
pub fn shard_config(
    config: &TableConfig,
    group: &str,
    key_col: ColumnId,
    i: u32,
    n: u32,
) -> TableConfig {
    let mut c = config.clone();
    c.l1_max_rows = (config.l1_max_rows / n as usize).max(1);
    c.l2_max_rows = (config.l2_max_rows / n as usize).max(1);
    c.partition = Some(PartitionSpec {
        group: group.to_string(),
        hash_column: key_col.idx() as u32,
        index: i,
        of: n,
    });
    c
}

/// The catalog name of partition `i` of logical table `group`.
pub fn partition_name(group: &str, i: u32) -> String {
    format!("{group}::p{i}")
}

impl PartitionedTable {
    /// Create `n` standalone partitions keyed by `key_col` (demo/test
    /// constructor — catalog-registered partitioned tables are created via
    /// `Database::create_partitioned_table`).
    pub fn new(
        schema: Schema,
        key_col: ColumnId,
        n: usize,
        config: TableConfig,
        mgr: Arc<TxnManager>,
    ) -> Result<Self> {
        if n == 0 {
            return Err(HanaError::Schema("at least one partition required".into()));
        }
        // Standalone partitions share one private governor so the fan-out
        // clamp sees the whole logical table (database-registered shards
        // share the database-wide governor instead).
        let governor =
            crate::governor::ResourceGovernor::new(hana_common::GovernorConfig::default());
        let partitions = (0..n)
            .map(|i| {
                let mut shard_schema = schema.clone();
                shard_schema.name = partition_name(&schema.name, i as u32);
                UnifiedTable::create(
                    TableId(i as u32),
                    shard_schema,
                    shard_config(&config, &schema.name, key_col, i as u32, n as u32),
                    Arc::clone(&mgr),
                    None,
                    Arc::new(parking_lot::RwLock::new(())),
                    Arc::clone(&governor),
                )
            })
            .collect();
        Ok(PartitionedTable {
            schema,
            key_col,
            partitions,
        })
    }

    /// Assemble a partitioned table from already-built partitions (the
    /// database's create and recovery paths; `partitions` must be in
    /// partition-index order).
    pub fn from_parts(
        schema: Schema,
        key_col: ColumnId,
        partitions: Vec<Arc<UnifiedTable>>,
    ) -> Result<Self> {
        if partitions.is_empty() {
            return Err(HanaError::Schema("at least one partition required".into()));
        }
        Ok(PartitionedTable {
            schema,
            key_col,
            partitions,
        })
    }

    /// The logical schema (carries the logical table name).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The hash/routing column.
    pub fn key_col(&self) -> ColumnId {
        self.key_col
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// The partition index a key routes to.
    pub fn route_index(&self, key: &Value) -> usize {
        (hash_value(key) % self.partitions.len() as u64) as usize
    }

    /// The partition a key routes to.
    pub fn route(&self, key: &Value) -> &Arc<UnifiedTable> {
        &self.partitions[self.route_index(key)]
    }

    /// All partitions.
    pub fn partitions(&self) -> &[Arc<UnifiedTable>] {
        &self.partitions
    }

    /// Insert, routing by the partition key.
    pub fn insert(&self, txn: &Transaction, row: Vec<Value>) -> Result<RowId> {
        self.schema.check_row(&row)?;
        self.route(&row[self.key_col.idx()].clone())
            .insert(txn, row)
    }

    /// Point query on the partition key: touches exactly one partition.
    pub fn point(&self, snap: Snapshot, key: &Value) -> Result<Vec<Vec<Value>>> {
        self.route(key).read_at(snap).point(self.key_col.idx(), key)
    }

    /// Update by partition key.
    pub fn update_where(
        &self,
        txn: &Transaction,
        key: &Value,
        updates: &[(ColumnId, Value)],
    ) -> Result<RowId> {
        self.route(key)
            .update_where(txn, self.key_col, key, updates)
    }

    /// Delete by partition key.
    pub fn delete_where(&self, txn: &Transaction, key: &Value) -> Result<RowId> {
        self.route(key).delete_where(txn, self.key_col, key)
    }

    /// Open a partition-fanned read view for one statement of `txn`.
    pub fn read(&self, txn: &Transaction) -> PartitionedRead {
        self.read_at(txn.read_snapshot())
    }

    /// Open a partition-fanned read view under an explicit snapshot. Shard
    /// views are marked serial so only the partition level fans out — the
    /// pool is sized once here instead of once per shard (nested fan-out
    /// oversubscribed small hosts badly; see `ResourceGovernor`).
    pub fn read_at(&self, snap: Snapshot) -> PartitionedRead {
        PartitionedRead {
            reads: self
                .partitions
                .iter()
                .map(|p| {
                    let mut r = p.read_at(snap);
                    r.set_serial_shard();
                    r
                })
                .collect(),
            scan_parallelism: self.partitions[0].config().scan.scan_parallelism,
            governor: Arc::clone(self.partitions[0].governor()),
        }
    }

    /// Parallel full scan across partitions (delegates to the read view's
    /// compressed-domain machinery: per-partition visibility summaries and
    /// cached bitmaps, combined in partition order).
    pub fn parallel_scan(&self, snap: Snapshot) -> Vec<VisibleRow> {
        self.read_at(snap).collect_rows()
    }

    /// Parallel filtered scan: per-partition `scan_filtered` with zone-map
    /// pruning, per-partition `ScanStats` summed into one block.
    pub fn parallel_scan_filtered(
        &self,
        snap: Snapshot,
        preds: &[ColumnPredicate],
        proj: Option<&[usize]>,
    ) -> Result<(Vec<VisibleRow>, ScanStats)> {
        self.read_at(snap).scan_filtered(preds, proj)
    }

    /// Parallel numeric aggregate `(count, sum)` across partitions, through
    /// each partition's columnar code-domain aggregation path.
    pub fn parallel_aggregate(&self, snap: Snapshot, col: usize) -> Result<(u64, f64)> {
        self.read_at(snap).aggregate_numeric(col)
    }

    /// Run the lifecycle policy on every partition.
    pub fn maybe_merge_all(&self) -> Result<bool> {
        let mut did = false;
        for p in &self.partitions {
            did |= p.maybe_merge_once()?;
        }
        Ok(did)
    }
}

/// A consistent read view over every partition of a [`PartitionedTable`]
/// under one shared snapshot: one pinned [`TableRead`] per partition.
///
/// Every operation fans out over [`map_indexed`] and combines results in
/// partition-index order, each partition in its canonical scan order — the
/// combined result is deterministic and bit-identical to executing the
/// partitions serially.
pub struct PartitionedRead {
    reads: Vec<TableRead>,
    scan_parallelism: usize,
    governor: Arc<crate::governor::ResourceGovernor>,
}

impl PartitionedRead {
    /// The per-partition read views (partition-index order).
    pub fn partition_reads(&self) -> &[TableRead] {
        &self.reads
    }

    /// The governor shared by every partition of this view.
    pub fn governor(&self) -> &Arc<crate::governor::ResourceGovernor> {
        &self.governor
    }

    /// Fan-out degree for `n` partition jobs, honoring the table's scan
    /// parallelism knob (`1` forces serial, `0` auto-sizes from the CPUs)
    /// and the governor's clamp: never more shard scans than cores, and
    /// down to `min_scan_parallelism` while OLTP is hot.
    fn workers(&self) -> usize {
        let n = self.reads.len();
        if n <= 1 || self.scan_parallelism == 1 {
            return 1;
        }
        self.governor
            .effective_parallelism(effective_workers(self.scan_parallelism))
            .min(n)
    }

    fn fan_out<T: Send>(&self, f: impl Fn(&TableRead) -> T + Send + Sync) -> Vec<T> {
        map_indexed(self.reads.len(), self.workers(), |i| f(&self.reads[i]))
    }

    /// All visible rows, partitions combined in partition-index order.
    pub fn collect_rows(&self) -> Vec<VisibleRow> {
        self.fan_out(|r| r.collect_rows())
            .into_iter()
            .flatten()
            .collect()
    }

    /// [`collect_rows`](Self::collect_rows) with a projection pushed into
    /// materialization.
    pub fn collect_rows_projected(&self, proj: Option<&[usize]>) -> Vec<VisibleRow> {
        self.fan_out(|r| r.collect_rows_projected(proj))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Partition-parallel filtered scan: each partition runs the full
    /// compressed-domain path (zone maps, code-domain kernels, visibility
    /// bitmaps); per-partition [`ScanStats`] are summed so pruning and
    /// cache observability survive sharding.
    pub fn scan_filtered(
        &self,
        preds: &[ColumnPredicate],
        proj: Option<&[usize]>,
    ) -> Result<(Vec<VisibleRow>, ScanStats)> {
        let per = self.fan_out(|r| r.scan_filtered(preds, proj));
        let mut out = Vec::new();
        let mut stats = ScanStats::default();
        for res in per {
            let (rows, st) = res?;
            out.extend(rows);
            stats.merge(&st);
        }
        Ok((out, stats))
    }

    /// Count visible rows across all partitions.
    pub fn count(&self) -> usize {
        self.fan_out(|r| r.count()).into_iter().sum()
    }

    /// Point query: routes through each partition's dictionaries and
    /// inverted indexes (all partitions are consulted — use
    /// [`PartitionedTable::point`] for key-column lookups, which touch
    /// exactly one).
    pub fn point(&self, col: usize, v: &Value) -> Result<Vec<Vec<Value>>> {
        let per = self.fan_out(|r| r.point(col, v));
        let mut out = Vec::new();
        for res in per {
            out.extend(res?);
        }
        Ok(out)
    }

    /// Columnar `(count, sum)` aggregate over one numeric column. Partials
    /// combine in partition-index order, so the float sum is independent of
    /// the worker count.
    pub fn aggregate_numeric(&self, col: usize) -> Result<(u64, f64)> {
        let per = self.fan_out(|r| r.aggregate_numeric(col));
        let (mut count, mut sum) = (0u64, 0.0f64);
        for res in per {
            let (c, s) = res?;
            count += c;
            sum += s;
        }
        Ok((count, sum))
    }

    /// Group-by aggregation across all partitions: per-partition columnar
    /// group-by, group keys merged in partition-index order, output sorted
    /// by key (the same contract as the single-table path).
    pub fn group_aggregate(
        &self,
        group_col: usize,
        agg_col: usize,
    ) -> Result<Vec<(Value, u64, f64)>> {
        let per = self.fan_out(|r| r.group_aggregate(group_col, agg_col));
        let mut groups: rustc_hash::FxHashMap<Value, (u64, f64)> = Default::default();
        for res in per {
            for (key, c, s) in res? {
                let e = groups.entry(key).or_insert((0, 0.0));
                e.0 += c;
                e.1 += s;
            }
        }
        let mut out: Vec<(Value, u64, f64)> =
            groups.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// `(hits, misses)` of the visibility-bitmap caches summed over every
    /// partition's read view.
    pub fn vis_cache_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = (0u64, 0u64);
        for r in &self.reads {
            let (rh, rm) = r.vis_cache_stats();
            h += rh;
            m += rm;
        }
        (h, m)
    }

    /// Rows per stage `(L1, L2, main)` summed over partitions.
    pub fn stage_row_counts(&self) -> (usize, usize, usize) {
        let (mut a, mut b, mut c) = (0, 0, 0);
        for r in &self.reads {
            let (x, y, z) = r.stage_row_counts();
            a += x;
            b += y;
            c += z;
        }
        (a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType};
    use hana_txn::IsolationLevel;

    fn setup(n: usize) -> (Arc<TxnManager>, PartitionedTable) {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "orders",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("amount", DataType::Int),
            ],
        )
        .unwrap();
        let pt = PartitionedTable::new(
            schema,
            ColumnId(0),
            n,
            TableConfig::small(),
            Arc::clone(&mgr),
        )
        .unwrap();
        (mgr, pt)
    }

    #[test]
    fn routing_is_stable_and_covers_partitions() {
        let (_mgr, pt) = setup(4);
        assert_eq!(pt.partition_count(), 4);
        let a = pt.route(&Value::Int(42)) as *const _;
        let b = pt.route(&Value::Int(42)) as *const _;
        assert_eq!(a, b);
        // Many keys hit more than one partition.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            seen.insert(Arc::as_ptr(pt.route(&Value::Int(i))));
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn shards_carry_partition_specs_and_divided_budgets() {
        let (_mgr, pt) = setup(4);
        for (i, p) in pt.partitions().iter().enumerate() {
            let spec = p.config().partition.clone().expect("spec stamped");
            assert_eq!(spec.group, "orders");
            assert_eq!(spec.index, i as u32);
            assert_eq!(spec.of, 4);
            assert_eq!(spec.hash_column, 0);
            assert_eq!(p.config().l1_max_rows, 4); // 16 / 4
            assert_eq!(p.schema().name, format!("orders::p{i}"));
        }
    }

    #[test]
    fn insert_point_update_delete_through_partitions() {
        let (mgr, pt) = setup(3);
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 0..30 {
            pt.insert(&txn, vec![Value::Int(i), Value::Int(i * 2)])
                .unwrap();
        }
        txn.commit().unwrap();
        let snap = hana_txn::Snapshot::at(mgr.now());
        for i in [0i64, 13, 29] {
            let rows = pt.point(snap, &Value::Int(i)).unwrap();
            assert_eq!(rows.len(), 1);
            assert_eq!(rows[0][1], Value::Int(i * 2));
        }
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        pt.update_where(&txn, &Value::Int(5), &[(ColumnId(1), Value::Int(0))])
            .unwrap();
        pt.delete_where(&txn, &Value::Int(6)).unwrap();
        txn.commit().unwrap();
        let snap = hana_txn::Snapshot::at(mgr.now());
        assert_eq!(pt.point(snap, &Value::Int(5)).unwrap()[0][1], Value::Int(0));
        assert!(pt.point(snap, &Value::Int(6)).unwrap().is_empty());
    }

    #[test]
    fn parallel_scan_and_aggregate_combine_partitions() {
        let (mgr, pt) = setup(4);
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 0..100 {
            pt.insert(&txn, vec![Value::Int(i), Value::Int(1)]).unwrap();
        }
        txn.commit().unwrap();
        // Push some partitions through merges to mix stages.
        pt.maybe_merge_all().unwrap();
        let snap = hana_txn::Snapshot::at(mgr.now());
        let rows = pt.parallel_scan(snap);
        assert_eq!(rows.len(), 100);
        let (count, sum) = pt.parallel_aggregate(snap, 1).unwrap();
        assert_eq!(count, 100);
        assert_eq!(sum, 100.0);
    }

    #[test]
    fn filtered_scan_merges_stats_and_matches_per_partition_results() {
        let (mgr, pt) = setup(4);
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 0..200 {
            pt.insert(&txn, vec![Value::Int(i), Value::Int(i % 10)])
                .unwrap();
        }
        txn.commit().unwrap();
        // Settle everything into the main so zone maps exist.
        for p in pt.partitions() {
            p.force_full_merge().unwrap();
        }
        let snap = hana_txn::Snapshot::at(mgr.now());
        let preds = [ColumnPredicate::Range(
            0,
            std::ops::Bound::Included(Value::Int(20)),
            std::ops::Bound::Included(Value::Int(39)),
        )];
        let (rows, stats) = pt.parallel_scan_filtered(snap, &preds, None).unwrap();
        assert_eq!(rows.len(), 20);
        // The merged stats must equal the sum of per-partition runs.
        let mut expect = ScanStats::default();
        let mut expect_rows = 0;
        for p in pt.partitions() {
            let (r, st) = p.read_at(snap).scan_filtered(&preds, None).unwrap();
            expect_rows += r.len();
            expect.merge(&st);
        }
        assert_eq!(rows.len(), expect_rows);
        assert_eq!(stats.code_filtered_rows, expect.code_filtered_rows);
        assert_eq!(stats.parts_pruned, expect.parts_pruned);
        // Aggregates and group-bys agree with a full scan.
        let read = pt.read_at(snap);
        assert_eq!(read.count(), 200);
        let (c, s) = read.aggregate_numeric(1).unwrap();
        assert_eq!(c, 200);
        assert_eq!(s, (0..200).map(|i| (i % 10) as f64).sum::<f64>());
        let groups = read.group_aggregate(1, 0).unwrap();
        assert_eq!(groups.len(), 10);
        assert!(groups.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn zero_partitions_rejected() {
        let mgr = TxnManager::new();
        let schema = Schema::new("t", vec![ColumnDef::new("x", DataType::Int).unique()]).unwrap();
        assert!(
            PartitionedTable::new(schema, ColumnId(0), 0, TableConfig::default(), mgr).is_err()
        );
        assert!(PartitionedTable::from_parts(
            Schema::new("t", vec![ColumnDef::new("x", DataType::Int)]).unwrap(),
            ColumnId(0),
            vec![]
        )
        .is_err());
    }
}
