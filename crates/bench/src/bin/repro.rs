//! The reproduction harness: prints one markdown section per paper figure
//! with the measured numbers that EXPERIMENTS.md records.
//!
//! Run with `cargo run -p hana-bench --release --bin repro` (append a
//! figure id like `fig11` to run one section).
//!
//! Environment knobs:
//! * `REPRO_QUICK=1` — CI smoke mode: every dataset is capped so the whole
//!   harness finishes in seconds (numbers are NOT representative).
//! * `REPRO_JSON=path` — additionally write every table as JSON to `path`.

use hana_bench::{
    fill_l1, fill_l2, report, scale, scale_duration, staged_sales, Stage, CUSTOMERS, PRODUCTS,
};
use hana_common::{
    ColumnDef, ColumnId, DataType, GovernorConfig, MergeConfig, ScanConfig, Schema, TableConfig,
    Value,
};
use hana_core::Database;
use hana_merge::MergeDecision;
use hana_txn::{IsolationLevel, Snapshot, TxnManager};
use hana_workload::olap::ALL_QUERIES;
use hana_workload::oltp::{RowOltp, UnifiedOltp};
use hana_workload::sales::{fact_cols, load_row_baseline};
use hana_workload::{
    DataGen, MixedReport, MixedWorkload, OlapRunner, OltpDriver, SalesDataset, SalesSchema,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

fn main() -> hana_common::Result<()> {
    let only: Option<String> = std::env::args().nth(1);
    let run = |name: &str| only.as_deref().is_none_or(|o| o == name);
    if hana_bench::quick_mode() {
        println!("(REPRO_QUICK: datasets capped, numbers not representative)");
    }

    if run("fig03") {
        fig03()?;
    }
    if run("fig04") {
        fig04()?;
    }
    if run("fig05") {
        fig05()?;
    }
    if run("fig06") {
        fig06()?;
    }
    if run("fig07") {
        fig07()?;
    }
    if run("fig07c") {
        fig07c()?;
    }
    if run("fig08") {
        fig08()?;
    }
    if run("fig09") {
        fig09()?;
    }
    if run("fig10") {
        fig10()?;
    }
    if run("fig10b") {
        fig10b()?;
    }
    if run("fig11") {
        fig11()?;
    }
    if run("fig11p") {
        fig11p()?;
    }
    if run("fig12") {
        fig12()?;
    }
    if run("fig13") {
        fig13()?;
    }
    if run("myth") {
        myth()?;
    }
    if let Err(e) = report::write_json() {
        eprintln!("repro: failed to write JSON report: {e}");
    }
    Ok(())
}

/// Fig 3: shared subexpressions and filter fusion in the calc graph.
fn fig03() -> hana_common::Result<()> {
    use hana_calc::{optimize, Executor, Predicate, Query};
    println!("\n## F3 — calc graph (shared subexpressions, fusion)\n");
    let st = staged_sales(scale(30_000), Stage::Main, 7);
    let snap = Snapshot::at(st.db.txn_manager().now());

    let naive = Query::scan(Arc::clone(&st.table))
        .filter(Predicate::Eq(fact_cols::ORDER_ID, Value::Int(123)))
        .compile();
    let mut fused = Query::scan(Arc::clone(&st.table))
        .filter(Predicate::Eq(fact_cols::ORDER_ID, Value::Int(123)))
        .compile();
    optimize(&mut fused);
    let (t_naive, _) = time(|| Executor::new(snap).run(&naive).unwrap());
    let (t_fused, _) = time(|| Executor::new(snap).run(&fused).unwrap());
    report::emit(
        "F3 calc graph",
        &["plan", "point-filter latency (ms)"],
        &[
            vec!["naive full scan".into(), ms(t_naive)],
            vec!["fused index scan".into(), ms(t_fused)],
        ],
    );
    Ok(())
}

/// Fig 4: point + scan latency per stage.
fn fig04() -> hana_common::Result<()> {
    let n = scale(20_000);
    println!("\n## F4 — unified table access per stage ({n} rows)\n");
    let mut rows = Vec::new();
    for stage in [Stage::L1, Stage::L2, Stage::Main] {
        let st = staged_sales(n, stage, 7);
        let snap = Snapshot::at(st.db.txn_manager().now());
        // Point: average over 200 lookups.
        let (t_point, _) = time(|| {
            for k in 0..200i64 {
                let read = st.table.read_at(snap);
                let r = read
                    .point(fact_cols::ORDER_ID, &Value::Int(k * 97 % n))
                    .unwrap();
                assert_eq!(r.len(), 1);
            }
        });
        let (t_scan, _) = time(|| {
            let read = st.table.read_at(snap);
            read.aggregate_numeric(fact_cols::AMOUNT).unwrap()
        });
        rows.push(vec![
            format!("{stage:?}"),
            format!("{:.1}", t_point.as_secs_f64() * 1e6 / 200.0),
            ms(t_scan),
        ]);
    }
    report::emit(
        "F4 access per stage",
        &["stage", "point lookup (µs)", "column scan (ms)"],
        &rows,
    );

    fig04_parallel()?;
    fig04_kernels();
    Ok(())
}

/// F4c: the scan kernel itself — scalar per-row reference vs the
/// word-parallel (SWAR / `std::arch`) filter over bit-packed codes, per
/// code width and predicate shape. This is the ≥2x acceptance metric for
/// the word-parallel kernels; both paths produce bit-identical hit bitmaps
/// (asserted here and property-tested in `tests/prop_kernels.rs`).
fn fig04_kernels() {
    use hana_column::{BitPackedVec, Bitmap, CodeFilter, CodeMatcher};
    let n = scale(2_000_000) as usize;
    // Keep total decoded work roughly constant so quick mode still times
    // something measurable.
    let iters = (8_000_000 / n).max(1);
    println!("\n## F4c — scan kernels: scalar vs word-parallel ({n} rows × {iters} iters)\n");
    let mut rows = Vec::new();
    for bits in [8u8, 13, 16, 32] {
        let max = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        let codes: Vec<u32> = (0..n as u64)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as u32 & max)
            .collect();
        let v = BitPackedVec::from_codes_with_bits(&codes, bits);
        let null = max; // in-domain sentinel, exercised like a real column
        let quarter = (max as u64 / 4) as u32;
        for (pred, m) in [
            ("eq", CodeMatcher::new(CodeFilter::eq(quarter), null)),
            (
                "range 25%",
                CodeMatcher::new(CodeFilter::range(quarter..quarter.saturating_mul(2)), null),
            ),
        ] {
            // Best of three so a background hiccup doesn't skew a ratio.
            let run = |scalar: bool| {
                let mut best = f64::INFINITY;
                let mut ones = 0usize;
                for _ in 0..3 {
                    let (t, o) = time(|| {
                        let mut o = 0usize;
                        for _ in 0..iters {
                            let mut hits = Bitmap::zeros(n);
                            if scalar {
                                v.filter_range_scalar(0, n, &m, &mut hits);
                            } else {
                                v.filter_range(0, n, &m, &mut hits);
                            }
                            o += hits.count_ones();
                        }
                        o
                    });
                    best = best.min(t.as_secs_f64() * 1e3 / iters as f64);
                    ones = o;
                }
                (best, ones)
            };
            let (t_scalar, ones_scalar) = run(true);
            let (t_word, ones_word) = run(false);
            assert_eq!(ones_scalar, ones_word, "kernel mismatch at {bits} bits");
            rows.push(vec![
                bits.to_string(),
                pred.into(),
                format!("{t_scalar:.3}"),
                format!("{t_word:.3}"),
                format!("{:.2}x", t_scalar / t_word),
            ]);
        }
    }
    report::emit(
        "F4c scan kernels",
        &[
            "code bits",
            "predicate",
            "scalar (ms)",
            "word-parallel (ms)",
            "speedup",
        ],
        &rows,
    );
}

/// F4b: the same main-resident column scan, serial vs the chunk-parallel
/// fan-out, plus the snapshot-visibility bitmap cache (cold first statement
/// vs warm repeats under one snapshot).
fn fig04_parallel() -> hana_common::Result<()> {
    let n = scale(1_000_000);
    println!("\n## F4b — parallel scan & visibility bitmap cache ({n} rows)\n");
    let build =
        |parallelism: usize| -> hana_common::Result<(Arc<Database>, Arc<hana_core::UnifiedTable>)> {
            let db = Database::in_memory();
            let cfg = TableConfig {
                l1_max_rows: usize::MAX / 2,
                l2_max_rows: usize::MAX / 2,
                ..TableConfig::default()
            }
            .with_scan(ScanConfig::default().with_scan_parallelism(parallelism));
            let table = db.create_table(SalesSchema::fact(), cfg)?;
            let mut gen = DataGen::new(7);
            let batch: Vec<Vec<Value>> = (0..n)
                .map(|i| SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS))
                .collect();
            let mut txn = db.begin(IsolationLevel::Transaction);
            table.bulk_load(&txn, batch)?;
            db.commit(&mut txn)?;
            table.merge_delta_as(MergeDecision::Classic)?;
            Ok((db, table))
        };
    let scan = |db: &Database, table: &Arc<hana_core::UnifiedTable>| {
        let read = table.read_at(Snapshot::at(db.txn_manager().now()));
        let (t, _) = time(|| read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
        t
    };
    let (db_s, table_s) = build(1)?;
    let (db_p, table_p) = build(0)?;
    let t_serial = scan(&db_s, &table_s);
    let t_par = scan(&db_p, &table_p);
    let workers = hana_merge::effective_workers(0);
    report::emit(
        "F4b parallel scan",
        &["scan", "workers", "scan (ms)", "speedup"],
        &[
            vec!["serial".into(), "1".into(), ms(t_serial), "1.00x".into()],
            vec![
                "chunk-parallel".into(),
                workers.to_string(),
                ms(t_par),
                format!("{:.2}x", t_serial.as_secs_f64() / t_par.as_secs_f64()),
            ],
        ],
    );

    // A committed delete ends the wholly-visible fast path: the first
    // statement under a snapshot builds the bitmap, later ones reuse it.
    let (db, table) = (db_p, table_p);
    let mut d = db.begin(IsolationLevel::Transaction);
    table.delete_where(&d, ColumnId(fact_cols::ORDER_ID as u16), &Value::Int(123))?;
    db.commit(&mut d)?;
    let snap = Snapshot::at(db.txn_manager().now());
    let cold_read = table.read_at(snap);
    let (t_cold, _) = time(|| cold_read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
    let (cold_hits, cold_misses) = cold_read.vis_cache_stats();
    let warm_read = table.read_at(snap);
    let (t_warm, _) = time(|| warm_read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
    let (warm_hits, warm_misses) = warm_read.vis_cache_stats();
    report::emit(
        "F4b visibility bitmap cache",
        &["statement", "bitmap hits", "bitmap misses", "scan (ms)"],
        &[
            vec![
                "first under snapshot (cold)".into(),
                cold_hits.to_string(),
                cold_misses.to_string(),
                ms(t_cold),
            ],
            vec![
                "repeat under snapshot (warm)".into(),
                warm_hits.to_string(),
                warm_misses.to_string(),
                ms(t_warm),
            ],
        ],
    );
    Ok(())
}

/// Fig 5: log bytes/record, savepoint, recovery.
fn fig05() -> hana_common::Result<()> {
    println!("\n## F5 — persistency (log once, savepoint, replay)\n");
    let n = scale(10_000);
    let tail = scale(4_000);
    let dir = tempfile::tempdir().unwrap();
    let db = Database::open(dir.path())?;
    let table = db.create_table(SalesSchema::fact(), TableConfig::default())?;
    let mut gen = DataGen::new(7);
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 0..n {
        table.insert(
            &txn,
            SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS),
        )?;
    }
    db.commit(&mut txn)?;
    let log_bytes = {
        let p = dir.path().join("redo.log");
        std::fs::metadata(p).map(|m| m.len()).unwrap_or(0)
    };
    println!(
        "- {n} inserts → {log_bytes} log bytes ({:.1} B/record)",
        log_bytes as f64 / n as f64
    );

    // Merges move the data but add only event records.
    let before = log_bytes;
    table.force_full_merge()?;
    if let Some(p) = Some(dir.path().join("redo.log")) {
        let after = std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        println!(
            "- full merge of all {n} rows added {} log bytes (merge events only)",
            after - before
        );
    }

    let (t_save, _) = time(|| db.savepoint().unwrap());
    println!(
        "- savepoint of the merged table: {} ms; log truncated to 0",
        ms(t_save)
    );

    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in n..n + tail {
        table.insert(
            &txn,
            SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS),
        )?;
    }
    db.commit(&mut txn)?;
    drop(table);
    drop(db);
    let (t_rec, db) = time(|| Database::open(dir.path()).unwrap());
    let t = db.table("sales")?;
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), (n + tail) as usize);
    println!(
        "- recovery (savepoint + {tail}-record log tail): {} ms, {} rows back\n",
        ms(t_rec),
        n + tail
    );

    fig05_filter()?;
    Ok(())
}

/// F5b: compressed-domain predicate execution — filters compiled to
/// dictionary-code ranges run inside the encoded code vectors with zone-map
/// pruning, vs materializing every row and filtering on values.
fn fig05_filter() -> hana_common::Result<()> {
    use hana_core::ColumnPredicate;
    use std::ops::Bound;
    let n = scale(200_000);
    println!("\n## F5b — compressed-domain filtering vs materialize-then-filter ({n} rows)\n");
    let st = staged_sales(n, Stage::Main, 7);
    let snap = Snapshot::at(st.db.txn_manager().now());
    let mut rows = Vec::new();
    for (name, hits) in [("0.1%", n / 1000), ("1%", n / 100), ("50%", n / 2)] {
        let preds = vec![ColumnPredicate::Range(
            fact_cols::ORDER_ID,
            Bound::Included(Value::Int(0)),
            Bound::Excluded(Value::Int(hits)),
        )];
        let read = st.table.read_at(snap);
        let (t_code, (matched, stats)) = time(|| read.scan_filtered(&preds, None).unwrap());
        let read = st.table.read_at(snap);
        let (t_value, kept) = time(|| {
            let mut all = read.collect_rows();
            all.retain(|r| preds.iter().all(|p| p.matches_value(&r.values[p.column()])));
            all.len()
        });
        assert_eq!(matched.len(), kept);
        rows.push(vec![
            name.into(),
            matched.len().to_string(),
            ms(t_code),
            ms(t_value),
            format!("{:.2}x", t_value.as_secs_f64() / t_code.as_secs_f64()),
            stats.zone_pruned_rows.to_string(),
            stats.code_filtered_rows.to_string(),
        ]);
    }
    report::emit(
        "F5b compressed-domain filtering",
        &[
            "selectivity",
            "rows out",
            "code-domain (ms)",
            "materialize+filter (ms)",
            "speedup",
            "zone-pruned rows",
            "code-filtered rows",
        ],
        &rows,
    );
    Ok(())
}

/// Fig 6: L1→L2 merge cost scaling.
fn fig06() -> hana_common::Result<()> {
    println!("\n## F6 — incremental L1→L2 merge\n");
    let mut rows = Vec::new();
    for batch in [scale(1_000), scale(4_000), scale(16_000)] {
        let st = staged_sales(0, Stage::L2, 7);
        fill_l1(&st, 0, batch, 11);
        let (t, moved) = time(|| st.table.drain_l1().unwrap());
        assert_eq!(moved as i64, batch);
        rows.push(vec![
            batch.to_string(),
            "0".into(),
            ms(t),
            format!("{:.0}", batch as f64 / t.as_secs_f64()),
        ]);
    }
    let batch = scale(4_000);
    for l2 in [scale(20_000), scale(100_000)] {
        let st = staged_sales(0, Stage::L2, 7);
        fill_l2(&st, 0, l2, 13);
        fill_l1(&st, l2, batch, 17);
        let (t, moved) = time(|| st.table.drain_l1().unwrap());
        assert_eq!(moved as i64, batch);
        rows.push(vec![
            batch.to_string(),
            l2.to_string(),
            ms(t),
            format!("{:.0}", batch as f64 / t.as_secs_f64()),
        ]);
    }
    report::emit(
        "F6 L1-to-L2 merge",
        &["L1 batch", "pre-existing L2 rows", "merge (ms)", "rows/s"],
        &rows,
    );
    Ok(())
}

/// Fig 7: classic merge cost vs main size, dictionary fast paths, and the
/// parallel column-wise fan-out vs the serial merge.
fn fig07() -> hana_common::Result<()> {
    let delta = scale(5_000);
    println!("\n## F7 — classic delta-to-main merge (delta = {delta} rows)\n");
    let mut rows = Vec::new();
    for main_rows in [scale(10_000), scale(40_000), scale(160_000)] {
        let st = staged_sales(main_rows, Stage::Main, 7);
        fill_l2(&st, main_rows, delta, 13);
        let (t, _) = time(|| st.table.merge_delta_as(MergeDecision::Classic).unwrap());
        rows.push(vec![main_rows.to_string(), ms(t)]);
    }
    report::emit(
        "F7 classic merge",
        &["old main rows", "classic merge (ms)"],
        &rows,
    );

    use hana_dict::{merge_dicts, MergeKind, SortedDict, UnsortedDict};
    let dict_n = scale(200_000);
    let probe = scale(5_000);
    let main = SortedDict::from_values((0..dict_n).map(|i| Value::Int(i * 2)).collect());
    let mk = |vals: Vec<i64>| {
        let mut d = UnsortedDict::new();
        for v in vals {
            d.get_or_insert(&Value::Int(v));
        }
        d
    };
    let cases = [
        (
            "delta ⊆ main (stable positions)",
            mk((0..probe).map(|i| (i * 17 % dict_n) * 2).collect()),
        ),
        (
            "delta > main (timestamp append)",
            mk((2 * dict_n..2 * dict_n + probe).collect()),
        ),
        (
            "general (interleaved)",
            mk((0..probe).map(|i| i * 2 + 1).collect()),
        ),
    ];
    let mut rows = Vec::new();
    for (name, delta) in &cases {
        let (t, m) = time(|| merge_dicts(&main, delta));
        let kind = match m.kind {
            MergeKind::DeltaSubset => "DeltaSubset",
            MergeKind::DeltaAppend => "DeltaAppend",
            MergeKind::General => "General",
        };
        rows.push(vec![
            (*name).into(),
            kind.into(),
            format!("{:.0}", t.as_secs_f64() * 1e6),
        ]);
    }
    report::emit(
        "F7 dictionary fast paths",
        &["dictionary case", "path taken", "dict merge (µs)"],
        &rows,
    );

    fig07_parallel()?;
    Ok(())
}

/// F7b: the same classic merge over a 16-column table, serial vs the
/// column-parallel fan-out (speedup tracks the core count; on one core the
/// two are expected to tie).
fn fig07_parallel() -> hana_common::Result<()> {
    let wide_rows = scale(1_000_000);
    const WIDE_COLS: usize = 16;
    println!("\n## F7b — parallel column-wise merge (16 columns, {wide_rows} rows)\n");
    let build = |parallelism: usize| -> hana_common::Result<(Duration, usize)> {
        let db = Database::in_memory();
        let cols: Vec<ColumnDef> = std::iter::once(ColumnDef::new("id", DataType::Int).unique())
            .chain((1..WIDE_COLS).map(|c| ColumnDef::new(format!("c{c}"), DataType::Int)))
            .collect();
        let schema = Schema::new("wide", cols)?;
        let cfg = TableConfig {
            l1_max_rows: usize::MAX / 2,
            l2_max_rows: usize::MAX / 2,
            ..TableConfig::default()
        }
        .with_merge(MergeConfig::default().with_column_parallelism(parallelism));
        let table = db.create_table(schema, cfg)?;
        let batch: Vec<Vec<Value>> = (0..wide_rows)
            .map(|i| {
                std::iter::once(Value::Int(i))
                    .chain((1..WIDE_COLS as i64).map(|c| Value::Int((i * 31 + c) % 997)))
                    .collect()
            })
            .collect();
        let mut txn = db.begin(IsolationLevel::Transaction);
        table.bulk_load(&txn, batch)?;
        db.commit(&mut txn)?;
        let (t, _) = time(|| table.merge_delta_as(MergeDecision::Classic).unwrap());
        let workers = table.last_merge_metrics().map_or(1, |m| m.parallel_workers);
        Ok((t, workers))
    };
    let (t_serial, _) = build(1)?;
    let (t_par, workers) = build(0)?;
    report::emit(
        "F7b parallel merge",
        &["merge", "workers", "merge (ms)", "speedup"],
        &[
            vec!["serial".into(), "1".into(), ms(t_serial), "1.00x".into()],
            vec![
                "column-parallel".into(),
                workers.to_string(),
                ms(t_par),
                format!("{:.2}x", t_serial.as_secs_f64() / t_par.as_secs_f64()),
            ],
        ],
    );
    Ok(())
}

/// One arm of the F7c experiment: concurrent writers updating a fixed
/// working set while the merge daemon cycles, with the given publication
/// protocol. Returns (commits, p99 µs, max µs, merges, gc stats).
struct F7cArm {
    commits: u64,
    p99_us: u64,
    max_stall_ns: u64,
    mean_stall_ns: u64,
    merges: u64,
    gc: Option<hana_core::GcStats>,
}

fn f7c_arm(legacy: bool, working: i64, window: Duration) -> hana_common::Result<F7cArm> {
    // Two phases. (1) Churn: concurrent writers + the merge daemon build a
    // realistic main and pending-write traffic; writer wall-clock latency is
    // recorded here. (2) Quiesced measurement: writers and daemon stopped,
    // then a few merges run single-threaded and only their exclusive-section
    // holds are recorded. On a 1-CPU container any thread can be descheduled
    // for a full scheduler quantum (~10ms) *while holding the lock*, which
    // drowns the protocol difference if the stall is measured under
    // contention — with no other runnable threads the hold is pure CPU work:
    // O(main index build) for the legacy protocol, O(residue) + pointer swap
    // for the non-blocking one.
    use std::sync::atomic::{AtomicBool, Ordering};
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: 256,
        l2_max_rows: 4_096,
        ..TableConfig::default()
    }
    .with_merge(MergeConfig::default().with_legacy_blocking_publication(legacy));
    let schema = Schema::new(
        "churn",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("hits", DataType::Int).not_null(),
        ],
    )?;
    let table = db.create_table(schema, cfg)?;
    let mut txn = db.begin(IsolationLevel::Transaction);
    let rows: Vec<Vec<Value>> = (0..working)
        .map(|i| vec![Value::Int(i), Value::Int(0)])
        .collect();
    table.bulk_load(&txn, rows)?;
    db.commit(&mut txn)?;
    table.merge_delta_as(MergeDecision::Classic)?;
    if !legacy {
        // GC rides only on the "after" system — it is part of what the
        // non-blocking pipeline buys (sustained churn without growth).
        db.enable_gc();
    }
    db.start_merge_daemon(Duration::from_millis(1));

    let stop = AtomicBool::new(false);
    let latencies: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|w| {
                let db = Arc::clone(&db);
                let table = Arc::clone(&table);
                let stop = &stop;
                scope.spawn(move || {
                    let mut seed = w.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(3);
                    let mut local = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let key = (seed % working as u64) as i64;
                        let t0 = Instant::now();
                        let mut txn = db.begin(IsolationLevel::Transaction);
                        let ok = table
                            .update_where(
                                &txn,
                                ColumnId(0),
                                &Value::Int(key),
                                &[(ColumnId(1), Value::Int(t0.elapsed().subsec_micros() as i64))],
                            )
                            .is_ok();
                        if ok {
                            db.commit(&mut txn).unwrap();
                            local.push(t0.elapsed().as_micros() as u64);
                        } else {
                            let _ = db.abort(&mut txn);
                        }
                    }
                    local
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let merges = db.merge_daemon_stats().map_or(0, |s| s.merges_done);
    let gc = db.gc_stats();
    db.stop_merge_daemon();

    let mut all: Vec<u64> = latencies.into_iter().flatten().collect();
    all.sort_unstable();
    let commits = all.len() as u64;
    let p99 = all
        .get((all.len().saturating_sub(1)) * 99 / 100)
        .copied()
        .unwrap_or(0);

    // Phase 2: quiesced measurement (see the function comment). Each round
    // refills the delta, then merges with a single short-lived racer thread
    // that end-stamps a few rows while the (off-lock, ms-scale) build runs
    // and exits well before publication: the raced stamps are what force
    // the legacy protocol to replay pending ends — an index build over the
    // whole new main — inside the exclusive section, while the
    // non-blocking protocol reconciles them off-lock and publishes in
    // constant time.
    table.reset_publication_stall();
    for round in 0..4i64 {
        let mut txn = db.begin(IsolationLevel::Transaction);
        for k in 0..512i64 {
            let key = (round * 512 + k) % working;
            table.update_where(
                &txn,
                ColumnId(0),
                &Value::Int(key),
                &[(ColumnId(1), Value::Int(k))],
            )?;
        }
        db.commit(&mut txn)?;
        table.drain_l1()?;
        let merge_done = AtomicBool::new(false);
        std::thread::scope(|scope| -> hana_common::Result<()> {
            let racer = scope.spawn(|| {
                while !merge_done.load(Ordering::Relaxed) && table.stage_stats().l2_frozen_rows == 0
                {
                    std::thread::yield_now();
                }
                if !merge_done.load(Ordering::Relaxed) {
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    for k in 0..8i64 {
                        let key = working - 1 - (round * 8 + k) % working;
                        let _ = table.update_where(
                            &txn,
                            ColumnId(0),
                            &Value::Int(key),
                            &[(ColumnId(1), Value::Int(-1))],
                        );
                    }
                    let _ = db.commit(&mut txn);
                }
            });
            let merged = table.merge_delta_as(MergeDecision::Classic);
            merge_done.store(true, Ordering::Relaxed);
            racer.join().unwrap();
            merged
        })?;
    }
    Ok(F7cArm {
        commits,
        p99_us: p99,
        max_stall_ns: table.max_publication_stall_ns(),
        mean_stall_ns: table.mean_publication_stall_ns(),
        merges,
        gc,
    })
}

/// Fig 7c: writer-observed stall during merge publication — the legacy
/// blocking protocol (per-column work inside the exclusive section) vs the
/// non-blocking off-side build + constant-time swap — plus the background
/// MVCC GC's reclaim counters under the same churn.
fn fig07c() -> hana_common::Result<()> {
    let working = scale(24_000);
    let window = scale_duration(Duration::from_millis(1_500));
    println!(
        "\n## F7c — writer stall during merges ({working}-row working set, 4 writers, {:.1}s window)\n",
        window.as_secs_f64()
    );
    let l = f7c_arm(true, working, window)?;
    let n = f7c_arm(false, working, window)?;
    let reduction = l.max_stall_ns as f64 / n.max_stall_ns.max(1) as f64;
    report::emit(
        "F7c merge stall",
        &[
            "publication",
            "commits",
            "merges",
            "p99 write (µs)",
            "max publication lock (µs)",
            "mean publication lock (µs)",
            "stall reduction",
        ],
        &[
            vec![
                "blocking (legacy)".into(),
                l.commits.to_string(),
                l.merges.to_string(),
                l.p99_us.to_string(),
                format!("{:.1}", l.max_stall_ns as f64 / 1_000.0),
                format!("{:.1}", l.mean_stall_ns as f64 / 1_000.0),
                "1.00x".into(),
            ],
            vec![
                "non-blocking".into(),
                n.commits.to_string(),
                n.merges.to_string(),
                n.p99_us.to_string(),
                format!("{:.1}", n.max_stall_ns as f64 / 1_000.0),
                format!("{:.1}", n.mean_stall_ns as f64 / 1_000.0),
                format!("{reduction:.2}x"),
            ],
        ],
    );
    let gc = n.gc.unwrap_or_default();
    report::emit(
        "F7c gc reclaim",
        &["counter", "value"],
        &[
            vec!["gc cycles".into(), gc.cycles.to_string()],
            vec!["marks resolved".into(), gc.marks_resolved.to_string()],
            vec![
                "txn entries trimmed".into(),
                gc.txn_entries_trimmed.to_string(),
            ],
            vec![
                "vis-cache entries evicted".into(),
                gc.vis_entries_evicted.to_string(),
            ],
            vec!["dead versions (gauge)".into(), gc.dead_versions.to_string()],
            vec![
                "dead dict codes (gauge)".into(),
                gc.dead_dict_codes.to_string(),
            ],
        ],
    );
    Ok(())
}

/// Fig 8: re-sorting merge — cost vs compression.
fn fig08() -> hana_common::Result<()> {
    let n = scale(60_000);
    println!("\n## F8 — re-sorting merge ({n} rows)\n");
    let mut rows = Vec::new();
    for (name, decision) in [
        ("classic", MergeDecision::Classic),
        ("re-sorting", MergeDecision::ReSorting),
    ] {
        let st = staged_sales(0, Stage::L2, 7);
        fill_l2(&st, 0, n, 13);
        let (t, _) = time(|| st.table.merge_delta_as(decision).unwrap());
        let stats = st.table.stage_stats();
        let snap = Snapshot::at(st.db.txn_manager().now());
        let (t_scan, _) = time(|| {
            let read = st.table.read_at(snap);
            read.group_aggregate(fact_cols::CITY, fact_cols::AMOUNT)
                .unwrap()
        });
        rows.push(vec![
            name.into(),
            ms(t),
            stats.main_data_bytes.to_string(),
            ms(t_scan),
        ]);
    }
    report::emit(
        "F8 re-sorting merge",
        &[
            "merge",
            "merge cost (ms)",
            "main data bytes",
            "group scan (ms)",
        ],
        &rows,
    );
    Ok(())
}

/// Fig 9: partial vs full merge cost as the main grows.
fn fig09() -> hana_common::Result<()> {
    let delta = scale(5_000);
    println!("\n## F9 — partial merge (delta = {delta} rows)\n");
    let mut rows = Vec::new();
    for main_rows in [scale(20_000), scale(80_000), scale(240_000)] {
        let mut line = vec![main_rows.to_string()];
        for decision in [MergeDecision::Classic, MergeDecision::Partial] {
            let st = staged_sales(main_rows, Stage::Main, 7);
            fill_l2(&st, main_rows, delta, 13);
            let (t, _) = time(|| st.table.merge_delta_as(decision).unwrap());
            line.push(ms(t));
        }
        rows.push(line);
    }
    report::emit(
        "F9 partial merge",
        &["main rows", "full merge (ms)", "partial merge (ms)"],
        &rows,
    );
    Ok(())
}

/// Fig 10: queries over single vs passive+active main.
fn fig10() -> hana_common::Result<()> {
    use std::ops::Bound;
    let base = scale(80_000);
    let delta = scale(20_000);
    println!("\n## F10 — queries over passive + active main ({base} + {delta} rows)\n");
    let mut rows = Vec::new();
    for split in [false, true] {
        let st = staged_sales(base, Stage::Main, 7);
        fill_l2(&st, base, delta, 13);
        st.table.merge_delta_as(if split {
            MergeDecision::Partial
        } else {
            MergeDecision::Classic
        })?;
        let snap = Snapshot::at(st.db.txn_manager().now());
        let (t_point, _) = time(|| {
            for k in 0..500i64 {
                let read = st.table.read_at(snap);
                let r = read
                    .point(fact_cols::ORDER_ID, &Value::Int(k * 181 % (base + delta)))
                    .unwrap();
                assert_eq!(r.len(), 1);
            }
        });
        let (t_range, n) = time(|| {
            let read = st.table.read_at(snap);
            read.range(
                fact_cols::CITY,
                Bound::Included(&Value::str("C")),
                Bound::Excluded(&Value::str("M")),
            )
            .unwrap()
            .len()
        });
        rows.push(vec![
            if split {
                "passive + active (2 parts)"
            } else {
                "single main"
            }
            .into(),
            format!("{:.1}", t_point.as_secs_f64() * 1e6 / 500.0),
            format!("{} rows in {}", n, ms(t_range)),
        ]);
    }
    report::emit(
        "F10 passive+active main",
        &["main layout", "point lookup (µs)", "range C%..M% (ms)"],
        &rows,
    );
    Ok(())
}

/// F10b: group-commit REDO logging — durable OLTP commit throughput vs
/// writer threads, fsync-per-commit vs the leader-based pipeline. The
/// durability contract is identical in both modes; the gap is batching.
fn fig10b() -> hana_common::Result<()> {
    use hana_common::CommitConfig;
    use hana_workload::oltp::DurableOltp;
    let orders = scale(10_000);
    let per_thread = (scale(8_000) / 4).max(200) as usize;
    println!("\n## F10b — group commit: durable OLTP writers ({per_thread} ops/thread, insert-heavy mix)\n");
    let mut rows = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        for (mode, cfg) in [
            ("fsync/commit", CommitConfig::serial()),
            ("group", CommitConfig::default()),
        ] {
            let dir = tempfile::tempdir()
                .map_err(|e| hana_common::HanaError::Persist(format!("tempdir: {e}")))?;
            let db = Database::open(dir.path())?;
            db.set_commit_config(cfg);
            // Keep the L1 small via the lifecycle daemon (as M1 does), so
            // insert cost stays flat and the commit path dominates.
            let tcfg = TableConfig {
                l1_max_rows: 256,
                l2_max_rows: 1_000_000,
                ..TableConfig::default()
            };
            let ds = SalesDataset::load(&db, tcfg, orders, CUSTOMERS, PRODUCTS, 7)?;
            db.start_merge_daemon(Duration::from_millis(1));
            let before = db.log_stats().unwrap_or_default();
            let engine = DurableOltp {
                db: Arc::clone(&db),
                table: Arc::clone(&ds.sales),
            };
            // Insert-heavy, conflict-free mix: measures the commit path,
            // not Zipf-hot-key contention (that is M1's subject).
            let driver = OltpDriver::new(orders, CUSTOMERS, PRODUCTS, 0.9).with_mix((85, 0, 15, 0));
            let (t, rep) = time(|| driver.run_concurrent(&engine, threads, per_thread, 99));
            let rep = rep?;
            db.stop_merge_daemon();
            let after = db.log_stats().unwrap_or_default();
            let records = after.records - before.records;
            let fsyncs = after.fsyncs - before.fsyncs;
            rows.push(vec![
                format!("{threads}"),
                mode.into(),
                format!("{:.0}", rep.committed as f64 / t.as_secs_f64()),
                format!("{records}"),
                format!("{fsyncs}"),
                format!("{:.1}", records as f64 / fsyncs.max(1) as f64),
            ]);
        }
    }
    report::emit(
        "F10b group commit",
        &[
            "writers",
            "mode",
            "commits/s",
            "log records",
            "fsyncs",
            "records/fsync",
        ],
        &rows,
    );
    Ok(())
}

/// Fig 11: the lifecycle characteristics matrix.
fn fig11() -> hana_common::Result<()> {
    let n = scale(20_000);
    let probe = scale(5_000);
    println!("\n## F11 — lifecycle characteristics matrix ({n} rows/stage)\n");
    let mut rows = Vec::new();
    for stage in [Stage::L1, Stage::L2, Stage::Main] {
        let st = staged_sales(n, stage, 7);
        let snap = Snapshot::at(st.db.txn_manager().now());
        // Write rate into this stage. The L1 rate is measured the way the
        // system actually runs it — against a *small* L1 (the lifecycle
        // keeps it at 10k–100k rows by merging); inserting into a bloated
        // L1 degrades quadratically through the uniqueness scan.
        let write_rate = match stage {
            Stage::L1 => {
                let fresh = staged_sales(0, Stage::L1, 77);
                let (t, _) = time(|| fill_l1(&fresh, 1_000_000, probe, 31));
                probe as f64 / t.as_secs_f64()
            }
            Stage::L2 | Stage::Main => {
                let (t, _) = time(|| fill_l2(&st, 1_000_000, probe, 31));
                probe as f64 / t.as_secs_f64()
            }
        };
        let (t_point, _) = time(|| {
            for k in 0..200i64 {
                let read = st.table.read_at(snap);
                read.point(fact_cols::ORDER_ID, &Value::Int(k * 97 % n))
                    .unwrap();
            }
        });
        let (t_scan, _) = time(|| {
            let read = st.table.read_at(snap);
            read.group_aggregate(fact_cols::CITY, fact_cols::AMOUNT)
                .unwrap()
        });
        let stats = st.table.stage_stats();
        let bytes_per_row = match stage {
            Stage::L1 => stats.l1_bytes as f64 / (stats.l1_rows.max(1)) as f64,
            Stage::L2 => stats.l2_bytes as f64 / (stats.l2_rows.max(1)) as f64,
            Stage::Main => stats.main_bytes as f64 / (stats.main_rows.max(1)) as f64,
        };
        rows.push(vec![
            format!("{stage:?}"),
            format!("{write_rate:.0}"),
            format!("{:.1}", t_point.as_secs_f64() * 1e6 / 200.0),
            ms(t_scan),
            format!("{bytes_per_row:.0}"),
        ]);
    }
    report::emit(
        "F11 lifecycle matrix",
        &[
            "stage",
            "write rows/s",
            "point lookup (µs)",
            "group scan (ms)",
            "bytes/row",
        ],
        &rows,
    );
    Ok(())
}

/// F11p: hash partitioning — the sharded write path and partition scans.
///
/// OLTP throughput at 1/2/4/8 hash-routed writers against the same logical
/// table held as 1 vs 8 partitions. The logical delta budget is divided
/// across the shards (`l1_max_rows / N`), so the O(L1) uniqueness probe on
/// every insert/update walks 1/Nth of the delta; on a multi-core box the
/// shards additionally merge and scan in parallel. The second table times a
/// partition-parallel filtered scan of the settled main stores.
fn fig11p() -> hana_common::Result<()> {
    use hana_common::PartitionConfig;
    use hana_core::ColumnPredicate;
    use hana_workload::oltp::PartitionedOltp;
    use std::ops::Bound;

    let per_thread = (scale(8_000) / 8).max(100) as usize;
    println!(
        "\n## F11p — partition scaling ({per_thread} ops/thread, insert-heavy mix, best of 3)\n"
    );
    let mut rows = Vec::new();
    let mut base = 1.0f64; // 1-partition commits/s at the current writer count
    for &threads in &[1usize, 2, 4, 8] {
        for &parts in &[1usize, 8] {
            let mut best = 0.0f64;
            for round in 0..3u64 {
                let db = Database::in_memory();
                // One logical delta budget; `create_partitioned_table`
                // divides it across the shards.
                let tcfg = TableConfig {
                    l1_max_rows: 8_192,
                    l2_max_rows: 1_000_000,
                    ..TableConfig::default()
                };
                let table = db.create_partitioned_table(
                    SalesSchema::fact(),
                    tcfg,
                    PartitionConfig::new(parts, fact_cols::ORDER_ID),
                )?;
                db.start_merge_daemon(Duration::from_millis(1));
                let engine = PartitionedOltp {
                    db: Arc::clone(&db),
                    table,
                };
                // Insert-heavy, conflict-free mix (as F10b): measures the
                // sharded write path, not hot-key contention.
                let driver = OltpDriver::new(0, CUSTOMERS, PRODUCTS, 0.9).with_mix((85, 0, 15, 0));
                let (t, rep) = time(|| {
                    driver.run_concurrent_partitioned(&engine, threads, per_thread, 99 + round)
                });
                let rep = rep?;
                db.stop_merge_daemon();
                best = best.max(rep.total.committed as f64 / t.as_secs_f64());
            }
            if parts == 1 {
                base = best;
            }
            rows.push(vec![
                format!("{threads}"),
                format!("{parts}"),
                format!("{best:.0}"),
                format!("{:.2}", best / base),
            ]);
        }
    }
    report::emit(
        "F11p partition write scaling",
        &["writers", "partitions", "commits/s", "vs 1 part"],
        &rows,
    );

    // Partition-parallel analytical scan over settled main stores.
    let n = scale(120_000);
    println!("\n## F11p — partition-parallel filtered scan ({n} rows in main)\n");
    let mut scan_rows = Vec::new();
    let mut scan_base = 1.0f64;
    for &parts in &[1usize, 8] {
        let db = Database::in_memory();
        let table = db.create_partitioned_table(
            SalesSchema::fact(),
            TableConfig::default(),
            PartitionConfig::new(parts, fact_cols::ORDER_ID),
        )?;
        let mut gen = DataGen::new(7);
        let mut id = 0i64;
        while id < n {
            let mut txn = db.begin(IsolationLevel::Transaction);
            for _ in 0..1_000.min(n - id) {
                table.insert(
                    &txn,
                    SalesSchema::fact_row(&mut gen, id, CUSTOMERS, PRODUCTS),
                )?;
                id += 1;
            }
            db.commit(&mut txn)?;
            for p in table.partitions() {
                p.drain_l1()?;
            }
        }
        for p in table.partitions() {
            p.force_full_merge()?;
        }
        let preds = vec![ColumnPredicate::Range(
            fact_cols::ORDER_ID,
            Bound::Included(Value::Int(0)),
            Bound::Excluded(Value::Int(n / 10)),
        )];
        let snap = Snapshot::at(db.txn_manager().now());
        let mut best = Duration::MAX;
        let mut matched = 0usize;
        for _ in 0..3 {
            let read = table.read_at(snap);
            let (t, (hits, _stats)) = time(|| read.scan_filtered(&preds, None).unwrap());
            matched = hits.len();
            best = best.min(t);
        }
        if parts == 1 {
            scan_base = best.as_secs_f64();
        }
        scan_rows.push(vec![
            format!("{parts}"),
            matched.to_string(),
            ms(best),
            format!("{:.2}", scan_base / best.as_secs_f64()),
        ]);
    }
    report::emit(
        "F11p partition scan",
        &["partitions", "matched", "scan (ms)", "speedup"],
        &scan_rows,
    );
    Ok(())
}

/// One F12 arm: a fresh durable database per round, governor configured as
/// requested, 4 writers + `readers` OLAP threads for the measurement window.
/// Returns the round with the lowest OLTP p99, the best OLAP throughput seen
/// across rounds, and the governor counters of the last round.
fn fig12_arm(
    gcfg: GovernorConfig,
    writers: usize,
    readers: usize,
    orders: i64,
    window: Duration,
    rounds: u32,
) -> hana_common::Result<(MixedReport, f64, hana_common::GovernorStats)> {
    let cfg = TableConfig {
        l1_max_rows: 256,
        l2_max_rows: 1_000_000,
        ..TableConfig::default()
    };
    let mut best: Option<MixedReport> = None;
    let mut best_olap = 0.0f64;
    let mut stats = hana_common::GovernorStats::default();
    for _ in 0..rounds {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::open(dir.path())?;
        db.set_governor_config(gcfg);
        let ds = SalesDataset::load(&db, cfg.clone(), orders, CUSTOMERS, PRODUCTS, 7)?;
        ds.settle()?;
        db.start_merge_daemon(Duration::from_millis(1));
        let rep = MixedWorkload {
            writers,
            readers,
            duration: window,
            skew: 0.9,
        }
        .run(&db, &ds)?;
        db.stop_merge_daemon();
        stats = db.governor_stats();
        best_olap = best_olap.max(rep.olap_throughput());
        if best
            .as_ref()
            .is_none_or(|b| rep.oltp_latency.p99_us < b.oltp_latency.p99_us)
        {
            best = Some(rep);
        }
    }
    Ok((best.unwrap(), best_olap, stats))
}

/// Fig 12 (extension): HTAP workload isolation. Sweeps OLAP readers over a
/// fixed OLTP writer pool with the resource governor on vs off and reports
/// per-class latency percentiles — the paper's §5 claim ("resource
/// consumption of the merge is the price" / analytics must not stall the
/// transactional path) made measurable. `REPRO_SOAK=<secs>` switches to the
/// nightly soak: one long 4w+4r run asserting the OLTP p99 stays flat.
fn fig12() -> hana_common::Result<()> {
    if std::env::var("REPRO_SOAK").is_ok() {
        return fig12_soak();
    }
    let writers = 4usize;
    let orders = scale(20_000);
    let window = scale_duration(Duration::from_millis(1_500));
    let rounds: u32 = if hana_bench::quick_mode() { 1 } else { 3 };
    println!(
        "\n## F12 — HTAP interference ({writers} durable writers, OLAP readers 0→8, best of {rounds})\n"
    );

    let arms = [
        ("on", GovernorConfig::default()),
        ("off", GovernorConfig::disabled()),
    ];
    let reader_counts = [0usize, 1, 2, 4, 8];
    let mut rows = Vec::new();
    let mut p99 = std::collections::BTreeMap::new();
    let mut olap_tput = std::collections::BTreeMap::new();
    let mut counters_on_8r = hana_common::GovernorStats::default();
    for (label, gcfg) in arms {
        for readers in reader_counts {
            let (rep, best_olap, stats) =
                fig12_arm(gcfg, writers, readers, orders, window, rounds)?;
            if label == "on" && readers == 8 {
                counters_on_8r = stats;
            }
            p99.insert((label, readers), rep.oltp_latency.p99_us.max(1));
            olap_tput.insert((label, readers), best_olap);
            rows.push(vec![
                label.into(),
                readers.to_string(),
                format!("{:.0}", rep.oltp_throughput()),
                rep.oltp_latency.p50_us.to_string(),
                rep.oltp_latency.p99_us.to_string(),
                format!("{best_olap:.1}"),
                rep.olap_latency.p99_us.to_string(),
                rep.olap_rejected.to_string(),
            ]);
        }
    }
    report::emit(
        "F12 HTAP interference",
        &[
            "governor",
            "readers",
            "oltp commits/s",
            "oltp p50 (µs)",
            "oltp p99 (µs)",
            "olap q/s",
            "olap p99 (µs)",
            "olap rejected",
        ],
        &rows,
    );

    // Headline ratios the CI gate tracks: how much the governed OLTP p99
    // degrades from 0 → 8 readers, and how much OLAP throughput the
    // governed run retains vs the ungoverned one at 8 readers.
    let degradation = p99[&("on", 8)] as f64 / p99[&("on", 0)] as f64;
    let retained = olap_tput[&("on", 8)] / olap_tput[&("off", 8)].max(1e-9);
    report::emit(
        "F12 summary",
        &["oltp p99 degradation (on)", "olap throughput retained"],
        &[vec![
            format!("{degradation:.2}x"),
            format!("{retained:.2}x"),
        ]],
    );
    report::emit(
        "F12 governor counters (on, 8 readers)",
        &[
            "scans admitted",
            "scans queued",
            "scans timed out",
            "parallelism downshifts",
            "merge deferrals",
        ],
        &[vec![
            counters_on_8r.scans_admitted.to_string(),
            counters_on_8r.scans_queued.to_string(),
            counters_on_8r.scans_timed_out.to_string(),
            counters_on_8r.parallelism_downshifts.to_string(),
            counters_on_8r.merge_deferrals.to_string(),
        ]],
    );

    // Per-query governor accounting: one instrumented calc execution so the
    // `ExecStats` wiring (admission wait, effective fan-out) lands in the
    // JSON report.
    {
        use hana_calc::{optimize, Executor, Predicate, Query};
        let st = staged_sales(scale(30_000), Stage::Main, 7);
        let snap = Snapshot::at(st.db.txn_manager().now());
        // A pushed-down range scan (not an index point lookup) so the
        // parallel filtered-scan path runs and records its fan-out.
        let mut q = Query::scan(Arc::clone(&st.table))
            .filter(Predicate::Lt(
                fact_cols::ORDER_ID,
                Value::Int(scale(30_000) / 2),
            ))
            .compile();
        optimize(&mut q);
        let mut ex = Executor::new(snap);
        ex.run(&q)?;
        report::emit(
            "F12 exec governor accounting",
            &["governor wait (µs)", "effective parallelism"],
            &[vec![
                format!("{:.1}", ex.stats().governor_wait_ns as f64 / 1e3),
                ex.stats().effective_parallelism.to_string(),
            ]],
        );
    }
    Ok(())
}

/// Nightly soak: one durable database, 4 writers + 4 readers for
/// `REPRO_SOAK` seconds (default 300), measured in five equal windows. The
/// governed OLTP p99 must stay flat — the last window may not exceed twice
/// the first.
fn fig12_soak() -> hana_common::Result<()> {
    let secs: u64 = std::env::var("REPRO_SOAK")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(300);
    let windows = 5u64;
    let per_window = Duration::from_secs((secs / windows).max(1));
    println!("\n## F12 soak — 4 writers + 4 readers, {secs} s in {windows} windows\n");
    let cfg = TableConfig {
        l1_max_rows: 256,
        l2_max_rows: 1_000_000,
        ..TableConfig::default()
    };
    let dir = tempfile::tempdir().unwrap();
    let db = Database::open(dir.path())?;
    let ds = SalesDataset::load(&db, cfg, scale(20_000), CUSTOMERS, PRODUCTS, 7)?;
    ds.settle()?;
    db.start_merge_daemon(Duration::from_millis(1));
    let mut rows = Vec::new();
    let mut p99s = Vec::new();
    for w in 0..windows {
        let rep = MixedWorkload {
            writers: 4,
            readers: 4,
            duration: per_window,
            skew: 0.9,
        }
        .run(&db, &ds)?;
        p99s.push(rep.oltp_latency.p99_us.max(1));
        rows.push(vec![
            w.to_string(),
            format!("{:.0}", rep.oltp_throughput()),
            rep.oltp_latency.p99_us.to_string(),
            format!("{:.1}", rep.olap_throughput()),
            rep.olap_rejected.to_string(),
        ]);
    }
    db.stop_merge_daemon();
    report::emit(
        "F12 soak",
        &[
            "window",
            "oltp commits/s",
            "oltp p99 (µs)",
            "olap q/s",
            "olap rejected",
        ],
        &rows,
    );
    let (first, last) = (p99s[0], *p99s.last().unwrap());
    assert!(
        last <= first.saturating_mul(2),
        "soak p99 drifted: first window {first} µs, last window {last} µs"
    );
    println!("soak p99 flat: first {first} µs, last {last} µs");
    Ok(())
}

/// Fig 13 (extension): what the on-disk integrity envelope costs. Three
/// views: the raw seal/verify kernel throughput on page-sized payloads,
/// the checksum's share of the durable commit path (every REDO record is
/// sealed before the fsync), and a main-store scan over a table recovered
/// — and therefore fully verified — from disk vs the identical in-memory
/// build. Verification is load-time work; the scan hot path reads the same
/// decoded columns either way, so the ratio must stay ~1 (the ≤5% overhead
/// acceptance bar, gated in CI as `f13_scan_verified_vs_mem`).
fn fig13() -> hana_common::Result<()> {
    use hana_persist::{crc32c, open_envelope, seal, ArtifactKind, DEFAULT_PAGE_SIZE};

    // (a) Kernel throughput: seal + verify page-sized payloads, the unit
    // every page write / page read pays.
    let n_pages = scale(40_000) as usize;
    println!("\n## F13 — integrity envelope overhead ({n_pages} pages)\n");
    let payload = vec![0xA5u8; DEFAULT_PAGE_SIZE - hana_persist::ENVELOPE_HEADER];
    let (t_seal, sealed) = time(|| {
        let mut last = Vec::new();
        for i in 0..n_pages {
            last = seal(ArtifactKind::Page, i as u64, &payload);
        }
        last
    });
    let salt = (n_pages - 1) as u64;
    let (t_verify, _) = time(|| {
        for _ in 0..n_pages {
            open_envelope(ArtifactKind::Page, salt, &sealed).unwrap();
        }
    });
    let gb = (n_pages * DEFAULT_PAGE_SIZE) as f64 / 1e9;
    report::emit(
        "F13 envelope kernels",
        &["op", "GB/s"],
        &[
            vec![
                "seal (checksum + frame)".into(),
                format!("{:.2}", gb / t_seal.as_secs_f64()),
            ],
            vec![
                "verify (open_envelope)".into(),
                format!("{:.2}", gb / t_verify.as_secs_f64()),
            ],
        ],
    );

    // (b) The commit path (F10b's subject): run an insert-per-commit loop,
    // then re-checksum the exact log byte volume it produced and compare
    // wall clocks. The CRC is the only work the envelope added to this
    // path, so the share bounds the logging overhead from above.
    let commits = scale(4_000);
    let dir = tempfile::tempdir()
        .map_err(|e| hana_common::HanaError::Persist(format!("tempdir: {e}")))?;
    let t_commit = {
        let db = Database::open(dir.path())?;
        let table = db.create_table(SalesSchema::fact(), TableConfig::default())?;
        let mut gen = DataGen::new(7);
        let (t, r) = time(|| -> hana_common::Result<()> {
            for i in 0..commits {
                let mut txn = db.begin(IsolationLevel::Transaction);
                table.insert(
                    &txn,
                    SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS),
                )?;
                db.commit(&mut txn)?;
            }
            Ok(())
        });
        r?;
        t
    };
    let log_bytes = std::fs::read(dir.path().join("redo.log"))
        .map_err(|e| hana_common::HanaError::Persist(format!("read redo.log: {e}")))?;
    let passes = 9u32;
    let (t_crc_all, _) = time(|| {
        let mut acc = 0u32;
        for _ in 0..passes {
            acc ^= crc32c(&log_bytes);
        }
        acc
    });
    let t_crc = t_crc_all / passes;
    let share = 100.0 * t_crc.as_secs_f64() / t_commit.as_secs_f64();
    report::emit(
        "F13 commit checksum share",
        &[
            "commits",
            "log bytes",
            "commit wall (ms)",
            "crc32c over log (ms)",
            "checksum share (%)",
        ],
        &[vec![
            commits.to_string(),
            log_bytes.len().to_string(),
            ms(t_commit),
            ms(t_crc),
            format!("{share:.2}"),
        ]],
    );

    // (c) The scan path (F4's subject): identical main-resident table, one
    // built in memory, one recovered from disk through full envelope
    // verification of every page and image blob.
    let n = scale(200_000);
    let build_batch = || -> Vec<Vec<Value>> {
        let mut gen = DataGen::new(7);
        (0..n)
            .map(|i| SalesSchema::fact_row(&mut gen, i, CUSTOMERS, PRODUCTS))
            .collect()
    };
    let big = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    };
    let best_scan = |db: &Arc<Database>, table: &Arc<hana_core::UnifiedTable>| {
        let snap = Snapshot::at(db.txn_manager().now());
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let read = table.read_at(snap);
            let (t, _) = time(|| read.aggregate_numeric(fact_cols::AMOUNT).unwrap());
            best = best.min(t);
        }
        best
    };

    let mem_db = Database::in_memory();
    let mem_table = mem_db.create_table(SalesSchema::fact(), big.clone())?;
    let mut txn = mem_db.begin(IsolationLevel::Transaction);
    mem_table.bulk_load(&txn, build_batch())?;
    mem_db.commit(&mut txn)?;
    mem_table.merge_delta_as(MergeDecision::Classic)?;
    let t_mem = best_scan(&mem_db, &mem_table);

    let dir = tempfile::tempdir()
        .map_err(|e| hana_common::HanaError::Persist(format!("tempdir: {e}")))?;
    {
        let db = Database::open(dir.path())?;
        let table = db.create_table(SalesSchema::fact(), big)?;
        let mut txn = db.begin(IsolationLevel::Transaction);
        table.bulk_load(&txn, build_batch())?;
        db.commit(&mut txn)?;
        table.merge_delta_as(MergeDecision::Classic)?;
        db.savepoint()?;
    }
    let (t_open, db) = time(|| Database::open(dir.path()).unwrap());
    let table = db.table("sales")?;
    let t_disk = best_scan(&db, &table);
    let stats = db.integrity_stats().unwrap_or_default();
    assert_eq!(stats.total_corruptions(), 0, "pristine files: {stats:?}");
    report::emit(
        "F13 verified scan",
        &[
            "rows",
            "open+verify (ms)",
            "pages verified",
            "in-memory scan (ms)",
            "verified scan (ms)",
            "verified/in-memory",
        ],
        &[vec![
            n.to_string(),
            ms(t_open),
            stats.pages_verified.to_string(),
            ms(t_mem),
            ms(t_disk),
            format!("{:.2}", t_disk.as_secs_f64() / t_mem.as_secs_f64()),
        ]],
    );
    Ok(())
}

/// M1 + M2: the myth benchmarks.
fn myth() -> hana_common::Result<()> {
    let orders = scale(20_000);
    let ops = scale(20_000) as usize;
    println!("\n## M1 — OLTP: unified column table vs row store ({ops} ops, Zipf 0.9)\n");
    let cfg = TableConfig {
        l1_max_rows: 256,
        l2_max_rows: 1_000_000,
        ..TableConfig::default()
    };
    let mut rows = Vec::new();
    {
        let db = Database::in_memory();
        let ds = SalesDataset::load(&db, cfg.clone(), orders, CUSTOMERS, PRODUCTS, 7)?;
        ds.settle()?;
        db.start_merge_daemon(Duration::from_millis(1));
        let engine = UnifiedOltp {
            table: Arc::clone(&ds.sales),
            mgr: Arc::clone(db.txn_manager()),
        };
        let driver = OltpDriver::new(orders, CUSTOMERS, PRODUCTS, 0.9);
        let mut gen = DataGen::new(99);
        let (t, rep) = time(|| driver.run(&engine, &mut gen, ops).unwrap());
        db.stop_merge_daemon();
        rows.push(vec![
            "unified table".into(),
            format!("{:.0}", rep.committed as f64 / t.as_secs_f64()),
            rep.conflicts.to_string(),
        ]);
    }
    {
        let mgr = TxnManager::new();
        let table = Arc::new(load_row_baseline(
            Arc::clone(&mgr),
            orders,
            CUSTOMERS,
            PRODUCTS,
            7,
        )?);
        let engine = RowOltp { table, mgr };
        let driver = OltpDriver::new(orders, CUSTOMERS, PRODUCTS, 0.9);
        let mut gen = DataGen::new(99);
        let (t, rep) = time(|| driver.run(&engine, &mut gen, ops).unwrap());
        rows.push(vec![
            "row store (P*Time-style)".into(),
            format!("{:.0}", rep.committed as f64 / t.as_secs_f64()),
            rep.conflicts.to_string(),
        ]);
    }
    report::emit("M1 OLTP", &["engine", "OLTP ops/s", "conflicts"], &rows);

    let olap_rows = scale(50_000);
    println!("\n## M2 — OLAP query set ({olap_rows} rows) + mixed HTAP\n");
    let db = Database::in_memory();
    let ds = SalesDataset::load(
        &db,
        TableConfig::default(),
        olap_rows,
        CUSTOMERS,
        PRODUCTS,
        7,
    )?;
    ds.settle()?;
    let mgr = TxnManager::new();
    let row = load_row_baseline(Arc::clone(&mgr), olap_rows, CUSTOMERS, PRODUCTS, 7)?;
    let mut rows = Vec::new();
    for &q in ALL_QUERIES {
        let snap_u = Snapshot::at(db.txn_manager().now());
        let (tu, _) = time(|| OlapRunner::new(snap_u).run_unified(&ds.sales, q).unwrap());
        let snap_r = Snapshot::at(mgr.now());
        let (tr, _) = time(|| OlapRunner::new(snap_r).run_row_baseline(&row, q));
        rows.push(vec![
            format!("{q:?}"),
            ms(tu),
            ms(tr),
            format!("{:.2}x", tr.as_secs_f64() / tu.as_secs_f64()),
        ]);
    }
    report::emit(
        "M2 OLAP",
        &["query", "unified (ms)", "row store (ms)", "unified speedup"],
        &rows,
    );

    let cfg = TableConfig {
        l1_max_rows: 256,
        l2_max_rows: 1_000_000,
        ..TableConfig::default()
    };
    let htap_secs = scale_duration(Duration::from_secs(2));
    let db = Database::in_memory();
    let ds = SalesDataset::load(&db, cfg, orders, CUSTOMERS, PRODUCTS, 7)?;
    ds.settle()?;
    db.start_merge_daemon(Duration::from_millis(1));
    let report = MixedWorkload {
        writers: 3,
        readers: 2,
        duration: htap_secs,
        skew: 0.9,
    }
    .run(&db, &ds)?;
    db.stop_merge_daemon();
    println!(
        "mixed HTAP (3 writers + 2 readers + merge daemon, {:.1} s): {:.0} OLTP ops/s, {:.1} OLAP queries/s, {} conflicts\n",
        htap_secs.as_secs_f64(),
        report.oltp_throughput(),
        report.olap_throughput(),
        report.oltp_conflicts
    );
    Ok(())
}
