//! Concurrency stress: writers, readers and the merge daemon racing on one
//! table, with invariants checked continuously and at the end.

use hana_common::{ColumnDef, ColumnId, DataType, MergeConfig, Schema, TableConfig, Value};
use hana_core::Database;
use hana_txn::IsolationLevel;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(
        "ledger",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("balance", DataType::Int).not_null(),
        ],
    )
    .unwrap()
}

/// Transfers between accounts preserve the total balance under snapshot
/// isolation, concurrent merges included.
#[test]
fn balance_conservation_under_concurrency() {
    const ACCOUNTS: i64 = 64;
    const INITIAL: i64 = 1_000;
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: 32,
        l2_max_rows: 128,
        ..TableConfig::default()
    };
    let table = db.create_table(schema(), cfg).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 0..ACCOUNTS {
        table
            .insert(&txn, vec![Value::Int(i), Value::Int(INITIAL)])
            .unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.start_merge_daemon(Duration::from_millis(1));

    let stop = Arc::new(AtomicBool::new(false));
    let transfers = Arc::new(AtomicI64::new(0));
    std::thread::scope(|scope| {
        // Writers: random transfers.
        for w in 0..4u64 {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let transfers = Arc::clone(&transfers);
            scope.spawn(move || {
                let mut seed = w.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                let mut next = || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                while !stop.load(Ordering::Relaxed) {
                    let from = (next() % ACCOUNTS as u64) as i64;
                    let to = (next() % ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    let amount = (next() % 50) as i64;
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    let result = (|| -> hana_common::Result<()> {
                        let read = table.read(&txn);
                        let f = read.point(0, &Value::Int(from))?;
                        let t = read.point(0, &Value::Int(to))?;
                        let fb = f[0][1].as_int().unwrap();
                        let tb = t[0][1].as_int().unwrap();
                        table.update_where(
                            &txn,
                            ColumnId(0),
                            &Value::Int(from),
                            &[(ColumnId(1), Value::Int(fb - amount))],
                        )?;
                        table.update_where(
                            &txn,
                            ColumnId(0),
                            &Value::Int(to),
                            &[(ColumnId(1), Value::Int(tb + amount))],
                        )?;
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {
                            db.commit(&mut txn).unwrap();
                            transfers.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            let _ = db.abort(&mut txn);
                        }
                    }
                }
            });
        }
        // Readers: every snapshot must show conserved total balance and
        // exactly ACCOUNTS visible rows.
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let r = db.begin(IsolationLevel::Transaction);
                    let read = table.read(&r);
                    let (count, sum) = read.aggregate_numeric(1).unwrap();
                    assert_eq!(count as i64, ACCOUNTS, "row count under snapshot");
                    assert_eq!(
                        sum as i64,
                        ACCOUNTS * INITIAL,
                        "balance conservation violated mid-run"
                    );
                }
            });
        }
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    db.stop_merge_daemon();
    assert!(
        transfers.load(Ordering::Relaxed) > 0,
        "some transfers committed"
    );

    // Final state: settle everything and re-verify.
    table.force_full_merge().unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    let read = table.read(&r);
    let (count, sum) = read.aggregate_numeric(1).unwrap();
    assert_eq!(count as i64, ACCOUNTS);
    assert_eq!(sum as i64, ACCOUNTS * INITIAL);
    let stats = table.stage_stats();
    assert_eq!(
        stats.main_rows as i64, ACCOUNTS,
        "all garbage collected: {stats:?}"
    );
}

/// Inserts from many threads never produce duplicate keys or lost rows.
#[test]
fn concurrent_inserts_unique_and_complete() {
    let db = Database::in_memory();
    let table = db
        .create_table(
            schema(),
            TableConfig::small().with_l1_max(16).with_l2_max(64),
        )
        .unwrap();
    db.start_merge_daemon(Duration::from_millis(1));
    const PER_THREAD: i64 = 500;
    std::thread::scope(|scope| {
        for w in 0..4i64 {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let id = w * PER_THREAD + i;
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    table
                        .insert(&txn, vec![Value::Int(id), Value::Int(0)])
                        .unwrap();
                    db.commit(&mut txn).unwrap();
                }
            });
        }
    });
    db.stop_merge_daemon();
    let r = db.begin(IsolationLevel::Transaction);
    let read = table.read(&r);
    assert_eq!(read.count() as i64, 4 * PER_THREAD);
    let mut seen = std::collections::HashSet::new();
    read.for_each_visible(|row| {
        assert!(
            seen.insert(row.values[0].as_int().unwrap()),
            "duplicate key"
        );
    });
}

/// Open snapshots keep seeing exactly their data while column-parallel
/// delta-to-main merges rebuild the main underneath them.
#[test]
fn snapshot_reads_consistent_during_parallel_merge() {
    const ROWS: i64 = 2_000;
    const BATCHES: i64 = 4;
    const BATCH: i64 = 500;
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    }
    .with_merge(MergeConfig::default().with_column_parallelism(4));
    let table = db.create_table(schema(), cfg).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    let batch: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i), Value::Int(i)])
        .collect();
    table.bulk_load(&txn, batch).unwrap();
    db.commit(&mut txn).unwrap();
    table
        .merge_delta_as(hana_merge::MergeDecision::Classic)
        .unwrap();
    let expected_sum: i64 = (0..ROWS).sum();

    let stop = Arc::new(AtomicBool::new(false));
    // Readers open their snapshot BEFORE any further merge runs (barrier),
    // then re-read it continuously while merges swap the main out.
    let ready = Arc::new(Barrier::new(3));
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let ready = Arc::clone(&ready);
            scope.spawn(move || {
                let r = db.begin(IsolationLevel::Transaction);
                ready.wait();
                while !stop.load(Ordering::Relaxed) {
                    let read = table.read(&r);
                    let (count, sum) = read.aggregate_numeric(1).unwrap();
                    assert_eq!(count as i64, ROWS, "snapshot row count drifted mid-merge");
                    assert_eq!(sum as i64, expected_sum, "snapshot sum drifted mid-merge");
                }
            });
        }
        ready.wait();
        for b in 0..BATCHES {
            let first = ROWS + b * BATCH;
            let mut txn = db.begin(IsolationLevel::Transaction);
            let batch: Vec<Vec<Value>> = (first..first + BATCH)
                .map(|i| vec![Value::Int(i), Value::Int(i)])
                .collect();
            table.bulk_load(&txn, batch).unwrap();
            db.commit(&mut txn).unwrap();
            let decision = if b % 2 == 0 {
                hana_merge::MergeDecision::Classic
            } else {
                hana_merge::MergeDecision::Partial
            };
            table.merge_delta_as(decision).unwrap();
            // A fresh snapshot must see everything committed so far.
            let r = db.begin(IsolationLevel::Transaction);
            let (count, _) = table.read(&r).aggregate_numeric(1).unwrap();
            assert_eq!(
                count as i64,
                first + BATCH,
                "fresh snapshot after merge {b}"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
    // Requested 4 workers, capped by the 2-column arity.
    let m = table.last_merge_metrics().expect("metrics after merges");
    assert_eq!(m.parallel_workers, 2);
}

/// Contended inserts of the SAME key from many threads: exactly one wins.
#[test]
fn duplicate_key_race_single_winner() {
    let db = Database::in_memory();
    let table = db.create_table(schema(), TableConfig::small()).unwrap();
    let winners: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let db = Arc::clone(&db);
                let table = Arc::clone(&table);
                scope.spawn(move || {
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    let ok = table
                        .insert(&txn, vec![Value::Int(42), Value::Int(0)])
                        .is_ok();
                    if ok {
                        db.commit(&mut txn).unwrap();
                    } else {
                        let _ = db.abort(&mut txn);
                    }
                    ok
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&ok| ok)
            .count()
    });
    assert_eq!(winners, 1, "exactly one contended insert may commit");
    let r = db.begin(IsolationLevel::Transaction);
    let rows = table.read(&r).point(0, &Value::Int(42)).unwrap();
    assert_eq!(rows.len(), 1, "exactly one insert of key 42 visible");
}
