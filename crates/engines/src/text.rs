//! Text-search operators.
//!
//! "The set of text search analysis operators comprises the set of
//! functionality already available in the SAP Enterprise Search product …
//! ranging from similarity measures to entity resolution capabilities"
//! (§2.2, building on Transier & Sanders [14]). This module provides the
//! in-memory core of such an engine over a unified-table text column: a
//! tokenized inverted index with tf-idf ranking, boolean AND/OR search, and
//! trigram-based fuzzy matching.

use hana_common::{Result, RowId};
use hana_core::UnifiedTable;
use hana_txn::Snapshot;
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// The matching record.
    pub row_id: RowId,
    /// tf-idf (or similarity) score, higher = better.
    pub score: f64,
}

/// An inverted text index over one column of a unified table, built from a
/// snapshot (like every engine, it consumes the common table abstraction).
pub struct TextIndex {
    /// term → (row, term frequency).
    postings: FxHashMap<String, Vec<(RowId, u32)>>,
    /// row → token count (for tf normalization).
    doc_len: FxHashMap<RowId, u32>,
    /// trigram → terms containing it (for fuzzy search).
    trigrams: FxHashMap<[u8; 3], FxHashSet<String>>,
    docs: usize,
}

fn tokenize(text: &str) -> impl Iterator<Item = String> + '_ {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
}

fn trigrams_of(term: &str) -> Vec<[u8; 3]> {
    let padded: Vec<u8> = std::iter::once(b' ')
        .chain(term.bytes())
        .chain(std::iter::once(b' '))
        .collect();
    padded.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
}

impl TextIndex {
    /// Build over `col` of `table` as visible at `snap`.
    pub fn build(table: &Arc<UnifiedTable>, col: usize, snap: Snapshot) -> Result<Self> {
        let read = table.read_at(snap);
        let mut postings: FxHashMap<String, FxHashMap<RowId, u32>> = FxHashMap::default();
        let mut doc_len = FxHashMap::default();
        let mut docs = 0usize;
        read.for_each_visible(|r| {
            let Some(text) = r.values[col].as_str() else {
                return;
            };
            docs += 1;
            let mut n = 0u32;
            for tok in tokenize(text) {
                *postings
                    .entry(tok)
                    .or_default()
                    .entry(r.row_id)
                    .or_insert(0) += 1;
                n += 1;
            }
            doc_len.insert(r.row_id, n.max(1));
        });
        let mut trigrams: FxHashMap<[u8; 3], FxHashSet<String>> = FxHashMap::default();
        for term in postings.keys() {
            for g in trigrams_of(term) {
                trigrams.entry(g).or_default().insert(term.clone());
            }
        }
        let postings = postings
            .into_iter()
            .map(|(t, m)| {
                let mut v: Vec<(RowId, u32)> = m.into_iter().collect();
                v.sort();
                (t, v)
            })
            .collect();
        Ok(TextIndex {
            postings,
            doc_len,
            trigrams,
            docs,
        })
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> usize {
        self.docs
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    fn idf(&self, term: &str) -> f64 {
        let df = self.postings.get(term).map_or(0, |p| p.len());
        if df == 0 {
            0.0
        } else {
            ((self.docs as f64 + 1.0) / (df as f64)).ln()
        }
    }

    /// Ranked tf-idf search: documents containing **all** query terms
    /// (AND), ranked by summed tf-idf, best first.
    pub fn search_and(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let terms: Vec<String> = tokenize(query).collect();
        if terms.is_empty() {
            return Vec::new();
        }
        let mut scores: FxHashMap<RowId, (usize, f64)> = FxHashMap::default();
        for term in &terms {
            let idf = self.idf(term);
            if let Some(list) = self.postings.get(term) {
                for (row, tf) in list {
                    let e = scores.entry(*row).or_insert((0, 0.0));
                    e.0 += 1;
                    e.1 += (*tf as f64 / self.doc_len[row] as f64) * idf;
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .filter(|(_, (matched, _))| *matched == terms.len())
            .map(|(row_id, (_, score))| SearchHit { row_id, score })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.row_id.cmp(&b.row_id)));
        hits.truncate(limit);
        hits
    }

    /// Ranked OR search: documents containing **any** query term.
    pub fn search_or(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let mut scores: FxHashMap<RowId, f64> = FxHashMap::default();
        for term in tokenize(query) {
            let idf = self.idf(&term);
            if let Some(list) = self.postings.get(&term) {
                for (row, tf) in list {
                    *scores.entry(*row).or_insert(0.0) +=
                        (*tf as f64 / self.doc_len[row] as f64) * idf;
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(row_id, score)| SearchHit { row_id, score })
            .collect();
        hits.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.row_id.cmp(&b.row_id)));
        hits.truncate(limit);
        hits
    }

    /// Terms similar to `term` by trigram Jaccard similarity ≥ `threshold`
    /// (the paper's "similarity measures"). Returns `(term, similarity)`
    /// best first.
    pub fn similar_terms(&self, term: &str, threshold: f64) -> Vec<(String, f64)> {
        let q: FxHashSet<[u8; 3]> = trigrams_of(&term.to_lowercase()).into_iter().collect();
        if q.is_empty() {
            return Vec::new();
        }
        let mut candidates: FxHashSet<&String> = FxHashSet::default();
        for g in &q {
            if let Some(terms) = self.trigrams.get(g) {
                candidates.extend(terms.iter());
            }
        }
        let mut out: Vec<(String, f64)> = candidates
            .into_iter()
            .filter_map(|t| {
                let tg: FxHashSet<[u8; 3]> = trigrams_of(t).into_iter().collect();
                let inter = q.intersection(&tg).count() as f64;
                let union = q.union(&tg).count() as f64;
                let sim = inter / union;
                (sim >= threshold).then(|| (t.clone(), sim))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Fuzzy search: expand each query term to its similar terms, then OR.
    pub fn search_fuzzy(&self, query: &str, threshold: f64, limit: usize) -> Vec<SearchHit> {
        let expanded: Vec<String> = tokenize(query)
            .flat_map(|t| {
                self.similar_terms(&t, threshold)
                    .into_iter()
                    .map(|(term, _)| term)
            })
            .collect();
        self.search_or(&expanded.join(" "), limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig, Value};
    use hana_txn::{IsolationLevel, TxnManager};

    fn docs_table() -> (Arc<TxnManager>, Arc<UnifiedTable>) {
        let mgr = TxnManager::new();
        let t = UnifiedTable::standalone(
            Schema::new(
                "docs",
                vec![
                    ColumnDef::new("id", DataType::Int).unique(),
                    ColumnDef::new("body", DataType::Str),
                ],
            )
            .unwrap(),
            TableConfig::small(),
            Arc::clone(&mgr),
        );
        let bodies = [
            "the quick brown fox jumps over the lazy dog",
            "a quick brown cat sleeps",
            "the dog barks at the cat",
            "columnar storage beats row storage for analytics",
            "row storage wins for transactional updates",
        ];
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for (i, b) in bodies.iter().enumerate() {
            t.insert(&txn, vec![Value::Int(i as i64), Value::str(*b)])
                .unwrap();
        }
        txn.commit().unwrap();
        (mgr, t)
    }

    fn index() -> (Arc<TxnManager>, TextIndex) {
        let (mgr, t) = docs_table();
        let idx = TextIndex::build(&t, 1, Snapshot::at(mgr.now())).unwrap();
        (mgr, idx)
    }

    #[test]
    fn builds_over_visible_rows() {
        let (_mgr, idx) = index();
        assert_eq!(idx.doc_count(), 5);
        assert!(idx.term_count() > 10);
    }

    #[test]
    fn and_search_requires_all_terms() {
        let (_, idx) = index();
        let hits = idx.search_and("quick brown", 10);
        assert_eq!(hits.len(), 2);
        let hits = idx.search_and("quick dog", 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].row_id, RowId(0));
        assert!(idx.search_and("quick nonexistent", 10).is_empty());
        assert!(idx.search_and("", 10).is_empty());
    }

    #[test]
    fn or_search_ranks_by_tfidf() {
        let (_, idx) = index();
        let hits = idx.search_or("storage analytics", 10);
        assert_eq!(hits.len(), 2);
        // Doc 3 contains both terms → ranks first.
        assert_eq!(hits[0].row_id, RowId(3));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn rare_terms_outscore_common_ones() {
        let (_, idx) = index();
        // "the" appears in many docs; "analytics" in one.
        assert!(idx.idf("analytics") > idx.idf("the"));
    }

    #[test]
    fn trigram_similarity_finds_typos() {
        let (_, idx) = index();
        let sims = idx.similar_terms("storge", 0.3); // typo of "storage"
        assert!(sims.iter().any(|(t, _)| t == "storage"), "{sims:?}");
        let hits = idx.search_fuzzy("storge", 0.3, 10);
        assert!(!hits.is_empty());
    }

    #[test]
    fn respects_snapshot_visibility() {
        let (mgr, t) = docs_table();
        // A 6th doc inserted but not committed.
        let open = mgr.begin(IsolationLevel::Transaction);
        t.insert(&open, vec![Value::Int(99), Value::str("invisible text")])
            .unwrap();
        let idx = TextIndex::build(&t, 1, Snapshot::at(mgr.now())).unwrap();
        assert_eq!(idx.doc_count(), 5);
        assert!(idx.search_and("invisible", 10).is_empty());
    }

    #[test]
    fn limit_truncates() {
        let (_, idx) = index();
        assert_eq!(idx.search_or("the quick brown dog cat", 2).len(), 2);
    }
}
