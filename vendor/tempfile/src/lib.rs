//! Offline shim for the `tempfile` crate (see `vendor/parking_lot` for why
//! these shims exist). Only [`tempdir`] / [`TempDir`] are provided — the
//! workspace never uses temporary *files* directly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory under the system temp dir, removed recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Remove the directory now, reporting errors (drop ignores them).
    pub fn close(self) -> std::io::Result<()> {
        let path = self.path.clone();
        std::mem::forget(self);
        std::fs::remove_dir_all(path)
    }

    /// Keep the directory (disable cleanup) and return its path.
    pub fn into_path(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

impl AsRef<Path> for TempDir {
    fn as_ref(&self) -> &Path {
        self.path()
    }
}

/// Create a fresh private temporary directory.
pub fn tempdir() -> std::io::Result<TempDir> {
    let base = std::env::temp_dir();
    // pid + monotonic counter + a time component: unique within and across
    // processes even when the clock is coarse.
    let pid = std::process::id();
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".tmp-hana-{pid}-{t:x}-{n}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(std::io::Error::other("could not create unique temp dir"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_cleans_up() {
        let d = tempdir().unwrap();
        let p = d.path().to_path_buf();
        std::fs::write(p.join("f"), b"x").unwrap();
        assert!(p.exists());
        drop(d);
        assert!(!p.exists());
    }

    #[test]
    fn unique_paths() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
