//! Physical coordinates of row versions across the three stages.

use hana_column::Pos;

/// Where one row version currently lives.
///
/// Store structures are replaced by merges, so column-store coordinates
/// carry the *generation* of the structure they refer to: an L2 position is
/// only meaningful for the L2-delta instance of that generation, a main
/// position for the part with that generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// Logical slot position in the (single, long-lived) L1-delta.
    L1(u64),
    /// Row in an L2-delta instance.
    L2 {
        /// Generation of the L2-delta.
        gen: u64,
        /// Row position within it.
        pos: Pos,
    },
    /// Row in a main part.
    Main {
        /// Generation of the part.
        part_gen: u64,
        /// Row position within the part.
        pos: Pos,
    },
}

impl Loc {
    /// True if this location points into the L2-delta of `gen`.
    pub fn in_l2_gen(&self, gen: u64) -> bool {
        matches!(self, Loc::L2 { gen: g, .. } if *g == gen)
    }

    /// True if this location points into the main part of `part_gen`.
    pub fn in_main_gen(&self, part_gen: u64) -> bool {
        matches!(self, Loc::Main { part_gen: g, .. } if *g == part_gen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_predicates() {
        let l2 = Loc::L2 { gen: 3, pos: 9 };
        assert!(l2.in_l2_gen(3));
        assert!(!l2.in_l2_gen(4));
        assert!(!l2.in_main_gen(3));
        let m = Loc::Main {
            part_gen: 7,
            pos: 0,
        };
        assert!(m.in_main_gen(7));
        assert!(!m.in_l2_gen(7));
        assert!(!Loc::L1(5).in_l2_gen(0));
    }
}
