//! The calc graph: a DAG of logical operators.
//!
//! "Source nodes represent either persistent table structures or the
//! outcome of other calc graphs. Inner nodes reflect logical operators
//! consuming either one or multiple incoming data flows" (§2.1). Nodes may
//! have multiple consumers — the executor memoizes per-node results, so
//! shared subexpressions evaluate once.

use crate::expr::{AggFunc, Expr, Predicate};
use hana_common::{Schema, Value};
use hana_core::{PartitionedTable, UnifiedTable};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// The storage behind a [`CalcNode::TableSource`]: a plain unified table or
/// a hash-partitioned group. Plans treat both identically — the executor
/// fans a partitioned scan out over the shards through the same
/// compressed-domain path and merges the per-partition statistics, so a
/// table can be re-partitioned without touching any query.
#[derive(Clone)]
pub enum ScanSource {
    /// One unified table.
    Single(Arc<UnifiedTable>),
    /// A hash-partitioned table group; every shard is scanned under the
    /// statement snapshot and combined in partition order.
    Partitioned(Arc<PartitionedTable>),
}

impl ScanSource {
    /// The logical schema of the source.
    pub fn schema(&self) -> &Schema {
        match self {
            ScanSource::Single(t) => t.schema(),
            ScanSource::Partitioned(p) => p.schema(),
        }
    }
}

impl From<Arc<UnifiedTable>> for ScanSource {
    fn from(t: Arc<UnifiedTable>) -> Self {
        ScanSource::Single(t)
    }
}

impl From<Arc<PartitionedTable>> for ScanSource {
    fn from(p: Arc<PartitionedTable>) -> Self {
        ScanSource::Partitioned(p)
    }
}

/// Index of a node within its [`CalcGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// A custom/script operator body: rows in, rows out.
pub type CustomFn =
    Arc<dyn Fn(Vec<Vec<Value>>) -> hana_common::Result<Vec<Vec<Value>>> + Send + Sync>;

/// One logical operator.
#[derive(Clone)]
pub enum CalcNode {
    /// Scan a unified table or partitioned group (all columns unless a
    /// projection was pushed down).
    TableSource {
        /// The table (or partitioned group) to scan.
        table: ScanSource,
        /// Predicate fused into the scan by the optimizer; resolved through
        /// the table's dictionaries/inverted indexes when possible.
        fused_filter: Predicate,
        /// Columns the plan above actually consumes, pushed down by the
        /// optimizer. `None` materializes every column; `Some` materializes
        /// only the listed ones (the rest stay `Null` placeholders so
        /// downstream column indexes remain valid).
        projection: Option<Vec<usize>>,
    },
    /// Row filter.
    Filter {
        /// Upstream node.
        input: NodeId,
        /// Row predicate.
        pred: Predicate,
    },
    /// Column projection / computed columns.
    Project {
        /// Upstream node.
        input: NodeId,
        /// Output columns as `(name, expression)`.
        exprs: Vec<(String, Expr)>,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Upstream node.
        input: NodeId,
        /// Grouping columns (positions in the input).
        group_by: Vec<usize>,
        /// Aggregates as `(function, input column)`.
        aggs: Vec<(AggFunc, usize)>,
    },
    /// Hash equi-join (inner).
    Join {
        /// Left input (build side).
        left: NodeId,
        /// Right input (probe side).
        right: NodeId,
        /// Join column on the left.
        left_col: usize,
        /// Join column on the right.
        right_col: usize,
    },
    /// Concatenation of same-arity inputs.
    Union {
        /// Upstream nodes.
        inputs: Vec<NodeId>,
    },
    /// The split/combine pair: partition the input by hash of a column, run
    /// the body per partition in parallel, recombine (re-aggregating when
    /// the body ends in an aggregate) — "a base construct to enable
    /// application-defined data parallelization" (§2.1).
    SplitCombine {
        /// Upstream node.
        input: NodeId,
        /// Number of partitions / worker threads.
        ways: usize,
        /// Hash column for the split.
        split_col: usize,
        /// Per-partition body.
        body: Vec<PipeOp>,
    },
    /// Built-in business function: currency conversion (the paper's "conv"
    /// example node) — multiplies `amount_col` by the rate looked up from
    /// `currency_col`.
    Conv {
        /// Upstream node.
        input: NodeId,
        /// The monetary column to convert in place.
        amount_col: usize,
        /// The column holding the currency code.
        currency_col: usize,
        /// Conversion rates per currency code.
        rates: FxHashMap<String, f64>,
    },
    /// Custom operator / script node ("script" and "custom" nodes of Fig 3;
    /// also how R-style external logic plugs in).
    Custom {
        /// Upstream node.
        input: NodeId,
        /// Display name for plans.
        name: String,
        /// The operator body.
        f: CustomFn,
    },
}

/// Per-partition pipeline operators usable inside a split/combine body.
#[derive(Clone)]
pub enum PipeOp {
    /// Row filter.
    Filter(Predicate),
    /// Projection.
    Project(Vec<Expr>),
    /// Partial aggregation (merged by the combine step).
    PartialAggregate {
        /// Grouping columns.
        group_by: Vec<usize>,
        /// Aggregates.
        aggs: Vec<(AggFunc, usize)>,
    },
}

/// A DAG of calc nodes with one root.
#[derive(Clone, Default)]
pub struct CalcGraph {
    nodes: Vec<CalcNode>,
    root: Option<NodeId>,
}

impl CalcGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a node, returning its id.
    pub fn add(&mut self, node: CalcNode) -> NodeId {
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Set the root (result) node.
    pub fn set_root(&mut self, id: NodeId) {
        self.root = Some(id);
    }

    /// The root node.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &CalcNode {
        &self.nodes[id.0]
    }

    /// Mutable node by id (used by the optimizer).
    pub fn node_mut(&mut self, id: NodeId) -> &mut CalcNode {
        &mut self.nodes[id.0]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Direct inputs of a node.
    pub fn inputs(&self, id: NodeId) -> Vec<NodeId> {
        match self.node(id) {
            CalcNode::TableSource { .. } => vec![],
            CalcNode::Filter { input, .. }
            | CalcNode::Project { input, .. }
            | CalcNode::Aggregate { input, .. }
            | CalcNode::SplitCombine { input, .. }
            | CalcNode::Conv { input, .. }
            | CalcNode::Custom { input, .. } => vec![*input],
            CalcNode::Join { left, right, .. } => vec![*left, *right],
            CalcNode::Union { inputs } => inputs.clone(),
        }
    }

    /// How many consumers each node has (shared-subexpression detection).
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for id in 0..self.nodes.len() {
            for input in self.inputs(NodeId(id)) {
                counts[input.0] += 1;
            }
        }
        counts
    }

    /// A one-line-per-node plan rendering for debugging and EXPLAIN-style
    /// output.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let desc = match n {
                CalcNode::TableSource {
                    table,
                    fused_filter,
                    projection,
                } => {
                    let mut desc = format!("scan {}", table.schema().name);
                    if !matches!(fused_filter, Predicate::True) {
                        desc.push_str(&format!(" [fused filter {fused_filter:?}]"));
                    }
                    if let Some(cols) = projection {
                        desc.push_str(&format!(" [project {cols:?}]"));
                    }
                    desc
                }
                CalcNode::Filter { input, pred } => format!("filter #{} {pred:?}", input.0),
                CalcNode::Project { input, exprs } => {
                    let names: Vec<&str> = exprs.iter().map(|(n, _)| n.as_str()).collect();
                    format!("project #{} -> {}", input.0, names.join(", "))
                }
                CalcNode::Aggregate {
                    input,
                    group_by,
                    aggs,
                } => format!("aggregate #{} by {group_by:?} {aggs:?}", input.0),
                CalcNode::Join {
                    left,
                    right,
                    left_col,
                    right_col,
                } => format!("join #{}[{left_col}] = #{}[{right_col}]", left.0, right.0),
                CalcNode::Union { inputs } => format!(
                    "union {}",
                    inputs
                        .iter()
                        .map(|i| format!("#{}", i.0))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                CalcNode::SplitCombine {
                    input,
                    ways,
                    split_col,
                    body,
                } => format!(
                    "split #{} by col {split_col} into {ways} | body of {} ops | combine",
                    input.0,
                    body.len()
                ),
                CalcNode::Conv {
                    input,
                    amount_col,
                    currency_col,
                    ..
                } => {
                    format!(
                        "conv #{} amount[{amount_col}] by currency[{currency_col}]",
                        input.0
                    )
                }
                CalcNode::Custom { input, name, .. } => format!("custom #{} <{name}>", input.0),
            };
            let marker = if Some(NodeId(i)) == self.root {
                "*"
            } else {
                " "
            };
            out.push_str(&format!("{marker}#{i}: {desc}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig};
    use hana_txn::TxnManager;

    fn source() -> CalcNode {
        let mgr = TxnManager::new();
        let schema = Schema::new("t", vec![ColumnDef::new("x", DataType::Int)]).unwrap();
        CalcNode::TableSource {
            table: hana_core::UnifiedTable::standalone(schema, TableConfig::default(), mgr).into(),
            fused_filter: Predicate::True,
            projection: None,
        }
    }

    #[test]
    fn build_and_introspect() {
        let mut g = CalcGraph::new();
        let s = g.add(source());
        let f = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Eq(0, Value::Int(1)),
        });
        let p1 = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("x".into(), Expr::col(0))],
        });
        let p2 = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("y".into(), Expr::col(0))],
        });
        let u = g.add(CalcNode::Union {
            inputs: vec![p1, p2],
        });
        g.set_root(u);
        assert_eq!(g.len(), 5);
        assert_eq!(g.inputs(u), vec![p1, p2]);
        assert_eq!(g.inputs(s), vec![]);
        // Node f is a shared subexpression (two consumers).
        assert_eq!(g.consumer_counts()[f.0], 2);
        let plan = g.explain();
        assert!(plan.contains("scan t"));
        assert!(plan.contains("union"));
        assert!(plan.lines().count() == 5);
    }
}
