//! F10b — group commit: concurrent OLTP writers against a durable table,
//! fsync-per-commit vs the leader-based group-commit pipeline.
//!
//! Shape expected: serial mode is bounded by disk-sync latency regardless
//! of writer count; group mode amortizes one fsync over a whole batch, so
//! commits/sec scales with writers until the log device saturates. The
//! durability contract is identical in both modes (commit returns only
//! once its record is on disk), so any gap is pure batching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hana_common::{CommitConfig, TableConfig};
use hana_core::Database;
use hana_workload::oltp::DurableOltp;
use hana_workload::{OltpDriver, SalesDataset};
use std::sync::Arc;

const ORDERS: i64 = 5_000;
const OPS_PER_THREAD: usize = 50;

fn bench_group_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_oltp_group_commit");
    g.sample_size(10);

    for &threads in &[1usize, 4, 8] {
        g.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        for (label, cfg) in [
            ("serial_fsync", CommitConfig::serial()),
            ("group_commit", CommitConfig::default()),
        ] {
            let dir = tempfile::tempdir().unwrap();
            let db = Database::open(dir.path()).unwrap();
            db.set_commit_config(cfg);
            // The lifecycle daemon keeps the L1 small so insert cost stays
            // flat and the commit path dominates.
            let tcfg = TableConfig {
                l1_max_rows: 256,
                l2_max_rows: 1_000_000,
                ..TableConfig::default()
            };
            let ds = SalesDataset::load(&db, tcfg, ORDERS, 500, 100, 7).unwrap();
            db.start_merge_daemon(std::time::Duration::from_millis(1));
            let engine = DurableOltp {
                db: Arc::clone(&db),
                table: Arc::clone(&ds.sales),
            };
            // Insert-heavy, conflict-free mix: commits dominate and no
            // Zipf-hot-key aborts muddy the commit-path comparison.
            let driver = OltpDriver::new(ORDERS, 500, 100, 0.9).with_mix((85, 0, 15, 0));
            let mut round = 0u64;
            g.bench_function(BenchmarkId::new(label, format!("{threads}w")), |b| {
                b.iter(|| {
                    round += 1;
                    let rep = driver
                        .run_concurrent(&engine, threads, OPS_PER_THREAD, 1000 * round)
                        .unwrap();
                    std::hint::black_box(rep.committed);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
