//! Diagnostic hunt for the double-visibility race.
use hana_common::{ColumnDef, ColumnId, DataType, Schema, TableConfig, Value};
use hana_core::Database;
use hana_txn::IsolationLevel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    for round in 0..200 {
        if !run_once() {
            eprintln!("!!! race reproduced in round {round}");
            std::process::exit(1);
        }
    }
    eprintln!("no race in 200 rounds");
}

fn run_once() -> bool {
    const ACCOUNTS: i64 = 64;
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: 32,
        l2_max_rows: 128,
        ..TableConfig::default()
    };
    let schema = Schema::new(
        "ledger",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("balance", DataType::Int).not_null(),
        ],
    )
    .unwrap();
    let table = db.create_table(schema, cfg).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 0..ACCOUNTS {
        table
            .insert(&txn, vec![Value::Int(i), Value::Int(1000)])
            .unwrap();
    }
    db.commit(&mut txn).unwrap();
    db.start_merge_daemon(Duration::from_millis(1));
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicBool::new(true));
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut seed = w.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
                let mut next = || {
                    seed ^= seed << 13;
                    seed ^= seed >> 7;
                    seed ^= seed << 17;
                    seed
                };
                while !stop.load(Ordering::Relaxed) {
                    let from = (next() % ACCOUNTS as u64) as i64;
                    let to = (next() % ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    let amount = (next() % 50) as i64;
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    let res = (|| -> hana_common::Result<()> {
                        let read = table.read(&txn);
                        let f = read.point(0, &Value::Int(from))?;
                        let t = read.point(0, &Value::Int(to))?;
                        let fb = f[0][1].as_int().unwrap();
                        let tb = t[0][1].as_int().unwrap();
                        table.update_where(
                            &txn,
                            ColumnId(0),
                            &Value::Int(from),
                            &[(ColumnId(1), Value::Int(fb - amount))],
                        )?;
                        table.update_where(
                            &txn,
                            ColumnId(0),
                            &Value::Int(to),
                            &[(ColumnId(1), Value::Int(tb + amount))],
                        )?;
                        Ok(())
                    })();
                    match res {
                        Ok(()) => {
                            db.commit(&mut txn).unwrap();
                        }
                        Err(_) => {
                            let _ = db.abort(&mut txn);
                        }
                    }
                }
            });
        }
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let table = Arc::clone(&table);
            let stop = Arc::clone(&stop);
            let ok = Arc::clone(&ok);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let r = db.begin(IsolationLevel::Transaction);
                    let read = table.read(&r);
                    let mut seen: std::collections::HashMap<i64, usize> = Default::default();
                    read.for_each_visible(|row| {
                        *seen.entry(row.values[0].as_int().unwrap()).or_insert(0) += 1;
                    });
                    if seen.len() != ACCOUNTS as usize || seen.values().any(|&c| c != 1) {
                        let dupes: Vec<_> = seen.iter().filter(|(_, &c)| c != 1).collect();
                        let stats = table.stage_stats();
                        eprintln!("ANOMALY: accounts={} dupes={:?} stats={:?} snap_ts={}", seen.len(), dupes, stats, read.snapshot().ts());
                        // dump locations of the duplicated ids
                        for (&id, _) in &dupes {
                            for (rid, b, e, stage, vis) in read.debug_versions(0, &Value::Int(id)) {
                                let bm = hana_common::TxnId::from_mark(b);
                                let em = hana_common::TxnId::from_mark(e);
                                eprintln!(
                                    "  id {id} {rid} [{stage}] begin={b:#x}({bm:?}) end={e:#x}({em:?}) visible={vis}"
                                );
                            }
                        }
                        ok.store(false, Ordering::Relaxed);
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });
    db.stop_merge_daemon();
    ok.load(Ordering::Relaxed)
}
