//! The asynchronous background merger.
//!
//! §3.1: "The record life cycle is organized in a way to asynchronously
//! propagate individual records through the system without interfering with
//! currently running database operations." The daemon owns one worker
//! thread that periodically (and on explicit nudges) asks its targets to
//! merge whatever their policy says is due.

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Something the daemon can drive — typically a unified table.
pub trait MergeTarget: Send + Sync {
    /// Check thresholds and run any due merge. Returns `true` if a merge
    /// happened. Retryable errors are fine; the daemon just tries again on
    /// the next tick (the paper's failed-merge retry semantics).
    fn maybe_merge(&self) -> hana_common::Result<bool>;
}

enum Msg {
    Nudge,
    Shutdown,
}

/// Handle to the background merge thread; dropping it shuts the thread down.
pub struct MergeDaemon {
    tx: Sender<Msg>,
    handle: Option<JoinHandle<()>>,
    merges_done: Arc<Mutex<u64>>,
}

impl MergeDaemon {
    /// Spawn a daemon polling `targets` every `interval`.
    pub fn spawn(targets: Vec<Arc<dyn MergeTarget>>, interval: Duration) -> Self {
        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = bounded(16);
        let merges_done = Arc::new(Mutex::new(0u64));
        let counter = Arc::clone(&merges_done);
        let handle = std::thread::Builder::new()
            .name("hana-merge-daemon".into())
            .spawn(move || loop {
                let msg = rx.recv_timeout(interval);
                match msg {
                    Ok(Msg::Shutdown) => break,
                    Ok(Msg::Nudge) | Err(RecvTimeoutError::Timeout) => {
                        for t in &targets {
                            // Retryable failures are silently retried later.
                            if let Ok(true) = t.maybe_merge() {
                                *counter.lock() += 1;
                            }
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            })
            .expect("spawn merge daemon");
        MergeDaemon {
            tx,
            handle: Some(handle),
            merges_done,
        }
    }

    /// Ask the daemon to check its targets now.
    pub fn nudge(&self) {
        let _ = self.tx.try_send(Msg::Nudge);
    }

    /// Number of successful merges performed so far.
    pub fn merges_done(&self) -> u64 {
        *self.merges_done.lock()
    }
}

impl Drop for MergeDaemon {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counter {
        calls: AtomicUsize,
        merge_until: usize,
    }

    impl MergeTarget for Counter {
        fn maybe_merge(&self) -> hana_common::Result<bool> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            Ok(n < self.merge_until)
        }
    }

    #[test]
    fn nudge_triggers_target() {
        let target = Arc::new(Counter {
            calls: AtomicUsize::new(0),
            merge_until: 2,
        });
        let daemon = MergeDaemon::spawn(
            vec![Arc::clone(&target) as Arc<dyn MergeTarget>],
            Duration::from_secs(3600),
        );
        daemon.nudge();
        for _ in 0..200 {
            if target.calls.load(Ordering::SeqCst) > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(target.calls.load(Ordering::SeqCst) >= 1);
        daemon.nudge();
        for _ in 0..200 {
            if daemon.merges_done() >= 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(daemon.merges_done() >= 1);
    }

    #[test]
    fn interval_polling_works() {
        let target = Arc::new(Counter {
            calls: AtomicUsize::new(0),
            merge_until: usize::MAX,
        });
        let _daemon = MergeDaemon::spawn(
            vec![Arc::clone(&target) as Arc<dyn MergeTarget>],
            Duration::from_millis(5),
        );
        for _ in 0..200 {
            if target.calls.load(Ordering::SeqCst) >= 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(target.calls.load(Ordering::SeqCst) >= 3);
    }

    #[test]
    fn drop_shuts_down() {
        let target = Arc::new(Counter {
            calls: AtomicUsize::new(0),
            merge_until: 0,
        });
        let daemon = MergeDaemon::spawn(
            vec![Arc::clone(&target) as Arc<dyn MergeTarget>],
            Duration::from_millis(1),
        );
        std::thread::sleep(Duration::from_millis(20));
        drop(daemon); // joins without hanging
        let after = target.calls.load(Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(target.calls.load(Ordering::SeqCst), after);
    }
}
