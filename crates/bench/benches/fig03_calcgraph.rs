//! Fig 3 — the calc-graph sample model.
//!
//! Claims regenerated: (a) a shared subexpression ("the result of an
//! operator may have multiple consumers") evaluates once, so the diamond
//! plan costs roughly one filtered scan, not two; (b) the optimizer's
//! filter-into-scan fusion turns a selective filter into an index lookup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_bench::{staged_sales, Stage};
use hana_calc::{optimize, CalcGraph, CalcNode, Executor, Expr, Predicate};
use hana_common::Value;
use hana_txn::Snapshot;
use hana_workload::sales::fact_cols;
use std::sync::Arc;

const ROWS: i64 = 30_000;

fn diamond(table: &Arc<hana_core::UnifiedTable>, shared: bool) -> CalcGraph {
    let mut g = CalcGraph::new();
    let pred = Predicate::Gt(fact_cols::AMOUNT, Value::Int(5_000));
    let mk_branch = |g: &mut CalcGraph, f| {
        g.add(CalcNode::Project {
            input: f,
            exprs: vec![("a".into(), Expr::col(fact_cols::AMOUNT))],
        })
    };
    if shared {
        let s = g.add(CalcNode::TableSource {
            table: Arc::clone(table).into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f = g.add(CalcNode::Filter { input: s, pred });
        let b1 = mk_branch(&mut g, f);
        let b2 = mk_branch(&mut g, f);
        let u = g.add(CalcNode::Union {
            inputs: vec![b1, b2],
        });
        g.set_root(u);
    } else {
        // The same logical plan with the subtree duplicated.
        let s1 = g.add(CalcNode::TableSource {
            table: Arc::clone(table).into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f1 = g.add(CalcNode::Filter {
            input: s1,
            pred: pred.clone(),
        });
        let s2 = g.add(CalcNode::TableSource {
            table: Arc::clone(table).into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f2 = g.add(CalcNode::Filter { input: s2, pred });
        let b1 = mk_branch(&mut g, f1);
        let b2 = mk_branch(&mut g, f2);
        let u = g.add(CalcNode::Union {
            inputs: vec![b1, b2],
        });
        g.set_root(u);
    }
    g
}

fn bench_shared_subexpression(c: &mut Criterion) {
    let st = staged_sales(ROWS, Stage::Main, 7);
    let snap = Snapshot::at(st.db.txn_manager().now());
    let mut g = c.benchmark_group("fig03_shared_subexpression");
    g.sample_size(15);
    for shared in [true, false] {
        let graph = diamond(&st.table, shared);
        g.bench_function(
            BenchmarkId::from_parameter(if shared { "shared" } else { "duplicated" }),
            |b| {
                b.iter(|| {
                    let rs = Executor::new(snap).run(&graph).unwrap();
                    std::hint::black_box(rs.len());
                })
            },
        );
    }
    g.finish();
}

fn bench_filter_fusion(c: &mut Criterion) {
    let st = staged_sales(ROWS, Stage::Main, 7);
    let snap = Snapshot::at(st.db.txn_manager().now());
    let build = || {
        hana_calc::Query::scan(Arc::clone(&st.table))
            .filter(Predicate::Eq(fact_cols::ORDER_ID, Value::Int(12_345)))
            .compile()
    };
    let naive = build();
    let mut fused = build();
    optimize(&mut fused);
    let mut g = c.benchmark_group("fig03_filter_fusion");
    g.sample_size(20);
    g.bench_function(BenchmarkId::from_parameter("naive_full_scan"), |b| {
        b.iter(|| {
            let rs = Executor::new(snap).run(&naive).unwrap();
            assert_eq!(rs.len(), 1);
        })
    });
    g.bench_function(BenchmarkId::from_parameter("fused_index_scan"), |b| {
        b.iter(|| {
            let rs = Executor::new(snap).run(&fused).unwrap();
            assert_eq!(rs.len(), 1);
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shared_subexpression, bench_filter_fusion);
criterion_main!(benches);
