//! Offline shim for the `crossbeam` crate (see `vendor/parking_lot` for
//! why these shims exist). Two pieces the workspace uses:
//!
//! * [`channel`] — a bounded MPMC channel (both ends cloneable, unlike
//!   `std::sync::mpsc`) built on a `Mutex<VecDeque>` + condvars. The merge
//!   daemon's worker pool shares one receiver between workers.
//! * [`scope`] — scoped threads delegating to `std::thread::scope`, with
//!   the crossbeam calling convention (the closure passed to
//!   [`Scope::spawn`] receives the scope again for nested spawns). If the
//!   OS refuses to spawn a thread the closure runs inline on the caller —
//!   degraded parallelism, never a lost task.

pub mod channel;

mod scoped;
pub use scoped::{scope, Scope, ScopedJoinHandle};

pub mod thread {
    //! `crossbeam::thread` module alias (upstream re-exports scope here too).
    pub use crate::scoped::{scope, Scope, ScopedJoinHandle};
}
