//! Fig 10 — query execution over passive + active mains.
//!
//! Claim regenerated: point and range queries on a two-part (passive +
//! active) main pay only a bounded overhead versus a consolidated
//! single-part main — the price of delaying the full merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_bench::{fill_l2, staged_sales, Stage, StagedTable};
use hana_common::Value;
use hana_merge::MergeDecision;
use hana_txn::Snapshot;
use hana_workload::sales::fact_cols;
use std::ops::Bound;

const MAIN_ROWS: i64 = 80_000;
const ACTIVE_ROWS: i64 = 20_000;

fn setup(split: bool) -> StagedTable {
    let st = staged_sales(MAIN_ROWS, Stage::Main, 7);
    fill_l2(&st, MAIN_ROWS, ACTIVE_ROWS, 13);
    let decision = if split {
        MergeDecision::Partial
    } else {
        MergeDecision::Classic
    };
    st.table.merge_delta_as(decision).unwrap();
    let stats = st.table.stage_stats();
    assert_eq!(stats.main_parts, if split { 2 } else { 1 });
    st
}

fn bench_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_point");
    g.sample_size(30);
    for split in [false, true] {
        let st = setup(split);
        let snap = Snapshot::at(st.db.txn_manager().now());
        let mut k = 0i64;
        g.bench_function(
            BenchmarkId::from_parameter(if split {
                "passive_active"
            } else {
                "single_main"
            }),
            |b| {
                b.iter(|| {
                    k = (k + 7919) % (MAIN_ROWS + ACTIVE_ROWS);
                    let read = st.table.read_at(snap);
                    let rows = read.point(fact_cols::ORDER_ID, &Value::Int(k)).unwrap();
                    assert_eq!(rows.len(), 1);
                })
            },
        );
    }
    g.finish();
}

fn bench_range(c: &mut Criterion) {
    // The paper's own example: a range between C% and L% over the city
    // column, resolved in both dictionaries and scanned as split ranges.
    let mut g = c.benchmark_group("fig10_range_c_to_l");
    g.sample_size(20);
    for split in [false, true] {
        let st = setup(split);
        let snap = Snapshot::at(st.db.txn_manager().now());
        g.bench_function(
            BenchmarkId::from_parameter(if split {
                "passive_active"
            } else {
                "single_main"
            }),
            |b| {
                b.iter(|| {
                    let read = st.table.read_at(snap);
                    let rows = read
                        .range(
                            fact_cols::CITY,
                            Bound::Included(&Value::str("C")),
                            Bound::Excluded(&Value::str("M")),
                        )
                        .unwrap();
                    std::hint::black_box(rows.len());
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_point, bench_range);
criterion_main!(benches);
