//! Parallel scan ≡ serial scan.
//!
//! Two tables receive identical operation streams; one scans serially
//! (`ScanConfig::serial()`), the other with a 4-way fan-out. Every read
//! surface — full scans, projections, counts, point/range lookups and the
//! columnar aggregates — must agree row-for-row and bit-for-bit, across
//! all four main encodings, under MVCC edge cases (uncommitted writer
//! marks, own-writes, deletions exactly at the snapshot boundary) and with
//! the visibility-bitmap cache both cold and warm.

use hana_column::Encoding;
use hana_common::{
    ColumnDef, ColumnId, DataType, HanaError, ScanConfig, Schema, TableConfig, Value,
};
use hana_core::{Database, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::{IsolationLevel, Snapshot};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("k", DataType::Int).unique(),
            ColumnDef::new("g", DataType::Int),
            ColumnDef::new("v", DataType::Double),
        ],
    )
    .unwrap()
}

fn config(scan_parallelism: usize) -> TableConfig {
    let mut cfg = TableConfig::small()
        .with_l1_max(8)
        .with_l2_max(24)
        .with_scan(ScanConfig::default().with_scan_parallelism(scan_parallelism));
    cfg.block_size = 64;
    cfg
}

type DbTable = (Arc<Database>, Arc<UnifiedTable>);

/// One serially-scanning and one parallel-scanning table, each in its own
/// database so identical op streams produce identical timestamps.
fn pair() -> (DbTable, DbTable) {
    let serial_db = Database::in_memory();
    let serial_t = serial_db.create_table(schema(), config(1)).unwrap();
    let par_db = Database::in_memory();
    let par_t = par_db.create_table(schema(), config(4)).unwrap();
    ((serial_db, serial_t), (par_db, par_t))
}

/// Compare every read surface of the two tables under the given snapshots.
fn assert_reads_match(
    serial: &hana_core::TableRead,
    parallel: &hana_core::TableRead,
    probe: &[i64],
) {
    // Full scan: same rows in the same order.
    let a: Vec<Vec<Value>> = serial
        .collect_rows()
        .into_iter()
        .map(|r| r.values)
        .collect();
    let b: Vec<Vec<Value>> = parallel
        .collect_rows()
        .into_iter()
        .map(|r| r.values)
        .collect();
    assert_eq!(a, b, "full scan rows/order diverge");
    // Count without materialization.
    assert_eq!(serial.count(), parallel.count());
    assert_eq!(serial.count(), a.len());
    // Late materialization narrows to the projected columns.
    let pa: Vec<Vec<Value>> = serial
        .project(&[2, 0])
        .unwrap()
        .into_iter()
        .map(|r| r.values)
        .collect();
    let pb: Vec<Vec<Value>> = parallel
        .project(&[2, 0])
        .unwrap()
        .into_iter()
        .map(|r| r.values)
        .collect();
    assert_eq!(pa, pb, "projected scan diverges");
    let expect: Vec<Vec<Value>> = a.iter().map(|r| vec![r[2].clone(), r[0].clone()]).collect();
    assert_eq!(pa, expect, "projection disagrees with the full scan");
    // Columnar aggregates must be bit-identical (fixed chunk plan).
    let (ca, sa) = serial.aggregate_numeric(2).unwrap();
    let (cb, sb) = parallel.aggregate_numeric(2).unwrap();
    assert_eq!(ca, cb);
    assert_eq!(sa.to_bits(), sb.to_bits(), "float accumulation diverged");
    assert_eq!(
        serial.group_aggregate(1, 2).unwrap(),
        parallel.group_aggregate(1, 2).unwrap()
    );
    // Compiled code-domain filtered scans: parallel ≡ serial bit-for-bit,
    // including the pruning counters (the chunk plan, not the worker count,
    // decides what runs).
    for preds in [
        vec![hana_core::ColumnPredicate::Range(
            0,
            std::ops::Bound::Included(Value::Int(5)),
            std::ops::Bound::Excluded(Value::Int(25)),
        )],
        vec![
            hana_core::ColumnPredicate::Range(
                0,
                std::ops::Bound::Included(Value::Int(0)),
                std::ops::Bound::Excluded(Value::Int(10_000)),
            ),
            hana_core::ColumnPredicate::Eq(1, Value::Int(3)),
        ],
        vec![hana_core::ColumnPredicate::IsNull(1)],
    ] {
        let (fa, sta) = serial.scan_filtered(&preds, None).unwrap();
        let (fb, stb) = parallel.scan_filtered(&preds, None).unwrap();
        assert_eq!(fa, fb, "compiled filtered scan diverges: {preds:?}");
        assert_eq!(sta, stb, "filtered scan stats diverge: {preds:?}");
    }
    // Point and range lookups.
    for k in probe {
        assert_eq!(
            serial.point(0, &Value::Int(*k)).unwrap(),
            parallel.point(0, &Value::Int(*k)).unwrap()
        );
    }
    assert_eq!(
        serial
            .range(
                0,
                std::ops::Bound::Included(&Value::Int(5)),
                std::ops::Bound::Excluded(&Value::Int(25)),
            )
            .unwrap(),
        parallel
            .range(
                0,
                std::ops::Bound::Included(&Value::Int(5)),
                std::ops::Bound::Excluded(&Value::Int(25)),
            )
            .unwrap()
    );
}

fn assert_tables_match(
    (serial_db, serial_t): &(Arc<Database>, Arc<UnifiedTable>),
    (par_db, par_t): &(Arc<Database>, Arc<UnifiedTable>),
    probe: &[i64],
) {
    let rs = serial_db.begin(IsolationLevel::Transaction);
    let rp = par_db.begin(IsolationLevel::Transaction);
    assert_reads_match(&serial_t.read(&rs), &par_t.read(&rp), probe);
}

// ---------------------------------------------------------------------------
// Encoding coverage: data shapes steering the compression chooser.
// ---------------------------------------------------------------------------

enum Shape {
    /// High-entropy group values → bit packing.
    HighEntropy,
    /// Long sorted runs → RLE.
    SortedRuns,
    /// One dominant value with rare exceptions → sparse.
    Dominant,
    /// Block-aligned uniform blocks with noisy exceptions → cluster.
    Blocky,
}

impl Shape {
    fn group(&self, i: i64) -> i64 {
        match self {
            Shape::HighEntropy => (i * 7919) % 509,
            Shape::SortedRuns => i / 100,
            Shape::Dominant => {
                if i % 331 == 0 {
                    i
                } else {
                    0
                }
            }
            // Blocks of 64 (the configured block size); every 4th block
            // alternates two values so RLE explodes while most blocks stay
            // single-valued.
            Shape::Blocky => {
                let block = i / 64;
                if block % 4 == 0 {
                    block * 2 + (i % 2)
                } else {
                    block * 2
                }
            }
        }
    }

    fn expected(&self) -> Encoding {
        match self {
            Shape::HighEntropy => Encoding::BitPacked,
            Shape::SortedRuns => Encoding::Rle,
            Shape::Dominant => Encoding::Sparse,
            Shape::Blocky => Encoding::Cluster,
        }
    }
}

/// Load `n` rows of `shape` into both tables in two batches with a classic
/// then a partial merge, so the main chain holds two parts (two scan
/// chunks) and a handful of freshly inserted L1/L2 rows on top.
fn load_shape(
    serial: &(Arc<Database>, Arc<UnifiedTable>),
    parallel: &(Arc<Database>, Arc<UnifiedTable>),
    shape: &Shape,
    n: i64,
) {
    for (db, t) in [serial, parallel] {
        let insert = |lo: i64, hi: i64| {
            let mut txn = db.begin(IsolationLevel::Transaction);
            for i in lo..hi {
                t.insert(
                    &txn,
                    vec![
                        Value::Int(i),
                        Value::Int(shape.group(i)),
                        Value::double(i as f64 * 0.25),
                    ],
                )
                .unwrap();
            }
            db.commit(&mut txn).unwrap();
        };
        insert(0, n / 2);
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        insert(n / 2, n);
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Partial).unwrap();
        // A few rows stay in the deltas so every storage tier is scanned.
        insert(n, n + 5);
    }
}

#[test]
fn parallel_matches_serial_across_all_main_encodings() {
    let mut seen = BTreeSet::new();
    for shape in [
        Shape::HighEntropy,
        Shape::SortedRuns,
        Shape::Dominant,
        Shape::Blocky,
    ] {
        let (serial, parallel) = pair();
        load_shape(&serial, &parallel, &shape, 2048);
        let encodings = parallel.1.main_encodings(1);
        assert!(
            encodings.contains(&shape.expected()),
            "shape expected {:?} in the chain, found {encodings:?}",
            shape.expected()
        );
        assert_eq!(serial.1.main_encodings(1), encodings);
        seen.extend(encodings.iter().map(|e| format!("{e:?}")));
        assert_tables_match(&serial, &parallel, &[0, 7, 100, 2047, 5000]);
    }
    for enc in [
        Encoding::BitPacked,
        Encoding::Rle,
        Encoding::Sparse,
        Encoding::Cluster,
    ] {
        assert!(seen.contains(&format!("{enc:?}")), "never scanned {enc:?}");
    }
}

#[test]
fn multi_chunk_part_matches_serial() {
    // One part larger than a scan chunk (16·1024 rows), so the fan-out
    // splits within the part, not just across parts.
    let (serial, parallel) = pair();
    for (db, t) in [&serial, &parallel] {
        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in 0..20_000i64 {
            t.insert(
                &txn,
                vec![
                    Value::Int(i),
                    Value::Int(i % 13),
                    Value::double(i as f64 * 0.5),
                ],
            )
            .unwrap();
        }
        db.commit(&mut txn).unwrap();
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
    }
    assert_tables_match(&serial, &parallel, &[0, 9_999, 19_999]);
}

// ---------------------------------------------------------------------------
// MVCC edges.
// ---------------------------------------------------------------------------

#[test]
fn uncommitted_marks_and_own_writes_match() {
    let (serial, parallel) = pair();
    load_shape(&serial, &parallel, &Shape::SortedRuns, 256);
    // On each database: an open transaction deletes a main-resident row,
    // updates another and inserts a new one — all uncommitted, leaving txn
    // marks in the main's stamp vectors.
    let mut writers = Vec::new();
    for (db, t) in [&serial, &parallel] {
        let w = db.begin(IsolationLevel::Transaction);
        t.delete_where(&w, ColumnId(0), &Value::Int(10)).unwrap();
        t.update_where(
            &w,
            ColumnId(0),
            &Value::Int(20),
            &[(ColumnId(1), Value::Int(-1))],
        )
        .unwrap();
        t.insert(
            &w,
            vec![Value::Int(9_000), Value::Int(9), Value::double(9.0)],
        )
        .unwrap();
        writers.push(w);
    }
    // Own-writes: each writer sees its delete/update/insert.
    let own_serial = serial.1.read(&writers[0]);
    let own_parallel = parallel.1.read(&writers[1]);
    assert_reads_match(&own_serial, &own_parallel, &[10, 20, 9_000]);
    assert!(own_serial.point(0, &Value::Int(10)).unwrap().is_empty());
    assert_eq!(own_serial.point(0, &Value::Int(9_000)).unwrap().len(), 1);
    // Other readers see none of it.
    assert_tables_match(&serial, &parallel, &[10, 20, 9_000]);
    let rs = serial.0.begin(IsolationLevel::Transaction);
    let read = serial.1.read(&rs);
    assert_eq!(read.point(0, &Value::Int(10)).unwrap().len(), 1);
    assert!(read.point(0, &Value::Int(9_000)).unwrap().is_empty());
    for mut w in writers {
        w.abort().unwrap();
    }
    assert_tables_match(&serial, &parallel, &[10, 20, 9_000]);
}

#[test]
fn deletion_at_snapshot_boundary_matches() {
    let (serial, parallel) = pair();
    load_shape(&serial, &parallel, &Shape::HighEntropy, 128);
    let before = serial.0.txn_manager().now();
    assert_eq!(before, parallel.0.txn_manager().now());
    for (db, t) in [&serial, &parallel] {
        let mut d = db.begin(IsolationLevel::Transaction);
        t.delete_where(&d, ColumnId(0), &Value::Int(64)).unwrap();
        db.commit(&mut d).unwrap();
    }
    let after = serial.0.txn_manager().now();
    // Walk every timestamp across the deletion — including the commit
    // timestamp itself — and require identical visibility.
    let mut visibilities = BTreeSet::new();
    for ts in before..=after {
        let rs = serial.1.read_at(Snapshot::at(ts));
        let rp = parallel.1.read_at(Snapshot::at(ts));
        assert_reads_match(&rs, &rp, &[63, 64, 65]);
        visibilities.insert(rs.point(0, &Value::Int(64)).unwrap().len());
    }
    // The walk really crossed the boundary: both states observed.
    assert_eq!(visibilities, BTreeSet::from([0, 1]));
}

// ---------------------------------------------------------------------------
// Visibility-bitmap cache: cold vs warm.
// ---------------------------------------------------------------------------

#[test]
fn bitmap_cache_cold_and_warm_agree() {
    let (serial, parallel) = pair();
    load_shape(&serial, &parallel, &Shape::SortedRuns, 512);
    // A committed delete forces per-row visibility bitmaps on the main.
    for (db, t) in [&serial, &parallel] {
        let mut d = db.begin(IsolationLevel::Transaction);
        t.delete_where(&d, ColumnId(0), &Value::Int(100)).unwrap();
        db.commit(&mut d).unwrap();
    }
    let ts = serial.0.txn_manager().now();
    // Cold: the first scan of the statement computes and caches bitmaps
    // (stats are per read view, so check them after exactly one scan).
    let cold_s = serial.1.read_at(Snapshot::at(ts));
    let cold_p = parallel.1.read_at(Snapshot::at(ts));
    let cold_rows = cold_p.collect_rows().len();
    assert_eq!(cold_s.collect_rows().len(), cold_rows);
    let (h, m) = cold_p.vis_cache_stats();
    assert_eq!(h, 0, "first scan of a fresh snapshot cannot hit the cache");
    assert!(m >= 1, "a delete-bearing part must miss at least once");
    assert_reads_match(&cold_s, &cold_p, &[99, 100, 101]);
    // Warm: fresh statements under the same snapshot reuse the bitmaps.
    let warm_s = serial.1.read_at(Snapshot::at(ts));
    let warm_p = parallel.1.read_at(Snapshot::at(ts));
    assert_eq!(
        warm_p.collect_rows().len(),
        cold_rows,
        "cache changed the result"
    );
    let (h, m) = warm_p.vis_cache_stats();
    assert!(h >= 1, "warm statement should reuse cached bitmaps");
    assert_eq!(m, 0, "warm statement rebuilt a bitmap");
    assert_reads_match(&warm_s, &warm_p, &[99, 100, 101]);
}

// ---------------------------------------------------------------------------
// Property test: random op/merge interleavings.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    MergeL1,
    MergeClassic,
    MergeResort,
    MergePartial,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..48, -100i64..100).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => (0i64..48, -100i64..100).prop_map(|(k, v)| Op::Update(k, v)),
        2 => (0i64..48).prop_map(Op::Delete),
        1 => Just(Op::MergeL1),
        1 => Just(Op::MergeClassic),
        1 => Just(Op::MergeResort),
        1 => Just(Op::MergePartial),
    ]
}

fn apply(db: &Arc<Database>, t: &Arc<UnifiedTable>, op: &Op) {
    match op {
        Op::Insert(k, v) => {
            let mut txn = db.begin(IsolationLevel::Transaction);
            match t.insert(
                &txn,
                vec![
                    Value::Int(*k),
                    Value::Int(*v),
                    Value::double(*v as f64 * 0.5),
                ],
            ) {
                Ok(_) => {
                    db.commit(&mut txn).unwrap();
                }
                Err(HanaError::Constraint(_)) => db.abort(&mut txn).unwrap(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::Update(k, v) => {
            let mut txn = db.begin(IsolationLevel::Transaction);
            match t.update_where(
                &txn,
                ColumnId(0),
                &Value::Int(*k),
                &[(ColumnId(1), Value::Int(*v))],
            ) {
                Ok(_) => {
                    db.commit(&mut txn).unwrap();
                }
                Err(HanaError::NotFound(_)) => db.abort(&mut txn).unwrap(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::Delete(k) => {
            let mut txn = db.begin(IsolationLevel::Transaction);
            match t.delete_where(&txn, ColumnId(0), &Value::Int(*k)) {
                Ok(_) => {
                    db.commit(&mut txn).unwrap();
                }
                Err(HanaError::NotFound(_)) => db.abort(&mut txn).unwrap(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::MergeL1 => {
            t.drain_l1().unwrap();
        }
        Op::MergeClassic => t.merge_delta_as(MergeDecision::Classic).unwrap(),
        Op::MergeResort => t.merge_delta_as(MergeDecision::ReSorting).unwrap(),
        Op::MergePartial => t.merge_delta_as(MergeDecision::Partial).unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial and 4-way parallel tables agree on every read surface after
    /// arbitrary committed op/merge interleavings, both with a cold and a
    /// warm visibility cache, and under an uncommitted trailing writer.
    #[test]
    fn parallel_scan_equals_serial_scan(
        ops in prop::collection::vec(op_strategy(), 1..80),
        trailing_delete in 0i64..48,
    ) {
        let (serial, parallel) = pair();
        for op in &ops {
            apply(&serial.0, &serial.1, op);
            apply(&parallel.0, &parallel.1, op);
        }
        let probe: Vec<i64> = (0..48).collect();
        // Cold, then warm (same snapshot → cached bitmaps on both sides).
        assert_tables_match(&serial, &parallel, &probe);
        assert_tables_match(&serial, &parallel, &probe);
        // An uncommitted writer leaves txn marks; own-writes and foreign
        // reads must still agree between the two tables.
        let mut writers = Vec::new();
        for (db, t) in [&serial, &parallel] {
            let w = db.begin(IsolationLevel::Transaction);
            let _ = t.delete_where(&w, ColumnId(0), &Value::Int(trailing_delete));
            writers.push(w);
        }
        assert_reads_match(
            &serial.1.read(&writers[0]),
            &parallel.1.read(&writers[1]),
            &probe,
        );
        assert_tables_match(&serial, &parallel, &probe);
        for mut w in writers {
            w.abort().unwrap();
        }
    }
}
