//! Rule-based plan rewrites.
//!
//! §2.2: "the optimizer runs classical rule and cost-based optimization
//! procedures to restructure and transform the logical plan into a physical
//! plan." Implemented rules:
//!
//! 1. **Filter merging** — `Filter(Filter(x))` → one conjunctive filter;
//! 2. **Filter-into-scan fusion** — `Filter(TableSource)` folds the
//!    predicate into the scan node, where the executor resolves `Eq` /
//!    range conjuncts through the table's dictionaries and inverted indexes
//!    instead of scanning;
//! 3. **Projection collapsing** — `Project(Project(x))` composes the
//!    expressions when the inner projection is pure column selection;
//! 4. **Projection pushdown** — the set of columns each scan's consumers
//!    actually reference is computed backward from the root and recorded on
//!    the [`CalcNode::TableSource`], so the executor materializes only
//!    those columns (late materialization — unprojected columns stay
//!    `Null` placeholders, keeping downstream column indexes valid).
//!
//! Rewrites only apply to nodes with a single consumer — a shared
//! subexpression must stay shared (its memoized result is the point).
//! Projection pushdown is the exception: needed columns are unioned over
//! *all* consumers, so it is safe on shared scans too.

use crate::expr::Expr;
use crate::graph::{CalcGraph, CalcNode, NodeId};
use std::collections::BTreeSet;

/// Optimize the graph in place; returns the number of rewrites applied.
pub fn optimize(g: &mut CalcGraph) -> usize {
    let mut total = 0;
    loop {
        let applied = pass(g);
        total += applied;
        if applied == 0 {
            return total;
        }
    }
}

fn pass(g: &mut CalcGraph) -> usize {
    // Consumer counts over nodes reachable from the root only: rewrites can
    // orphan nodes, and a dead edge must not pin its input as "shared".
    let mut reachable = vec![false; g.len()];
    if let Some(root) = g.root() {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut reachable[id.0], true) {
                continue;
            }
            stack.extend(g.inputs(id));
        }
    }
    let mut consumers = vec![0usize; g.len()];
    for (i, _) in reachable.iter().enumerate().filter(|(_, &r)| r) {
        for input in g.inputs(NodeId(i)) {
            consumers[input.0] += 1;
        }
    }
    let mut applied = 0;
    for i in (0..g.len()).filter(|&i| reachable[i]) {
        let id = NodeId(i);
        // Filter(x) rewrites.
        if let CalcNode::Filter { input, pred } = g.node(id).clone() {
            if consumers[input.0] > 1 || pred == crate::expr::Predicate::True {
                continue;
            }
            match g.node(input).clone() {
                // Rule 1: merge stacked filters.
                CalcNode::Filter {
                    input: inner_input,
                    pred: inner_pred,
                } => {
                    *g.node_mut(id) = CalcNode::Filter {
                        input: inner_input,
                        pred: inner_pred.and(pred),
                    };
                    applied += 1;
                }
                // Rule 2: fuse into the scan.
                CalcNode::TableSource {
                    table,
                    fused_filter,
                    projection,
                } => {
                    *g.node_mut(input) = CalcNode::TableSource {
                        table,
                        fused_filter: fused_filter.and(pred),
                        projection,
                    };
                    // The filter becomes a pass-through (identity filter).
                    *g.node_mut(id) = CalcNode::Filter {
                        input,
                        pred: crate::expr::Predicate::True,
                    };
                    applied += 1;
                }
                _ => {}
            }
        }
        // Rule 3: collapse Project(Project) when the inner is pure columns.
        if let CalcNode::Project { input, exprs } = g.node(id).clone() {
            if consumers[input.0] > 1 {
                continue;
            }
            if let CalcNode::Project {
                input: inner_input,
                exprs: inner_exprs,
            } = g.node(input).clone()
            {
                if let Some(composed) = compose_projections(&inner_exprs, &exprs) {
                    *g.node_mut(id) = CalcNode::Project {
                        input: inner_input,
                        exprs: composed,
                    };
                    applied += 1;
                }
            }
        }
    }
    applied + push_projections(g, &reachable)
}

/// Columns a node needs from its output's perspective: `None` = all.
type Needed = Option<BTreeSet<usize>>;

/// Rule 4: compute, backward from the root, which columns each scan's
/// consumers reference, and record the set on the scan when it is a strict
/// subset of the table's columns. Needs are unioned over every consumer,
/// so shared scans stay correct. Returns the number of scans whose
/// projection changed.
fn push_projections(g: &mut CalcGraph, reachable: &[bool]) -> usize {
    // needed[i] = columns of node i's *output* that some consumer reads.
    let mut needed: Vec<Needed> = vec![Some(BTreeSet::new()); g.len()];
    if let Some(root) = g.root() {
        needed[root.0] = None; // the result surface: everything.
    }
    // Node ids are topological (inputs are added before their consumers),
    // so one reverse walk sees every consumer before the node itself.
    for i in (0..g.len()).rev().filter(|&i| reachable[i]) {
        let own = needed[i].clone();
        match g.node(NodeId(i)) {
            CalcNode::TableSource { .. } => {}
            // Pass-through operators: the input must provide whatever this
            // node's consumers read, plus whatever the operator itself
            // evaluates.
            CalcNode::Filter { input, pred } => {
                let mut cols = Vec::new();
                pred.referenced_columns(&mut cols);
                require(&mut needed[input.0], own, cols);
            }
            CalcNode::Project { input, exprs } => {
                // Output columns are fresh expressions; the input only has
                // to provide the columns those expressions reference.
                let mut cols = Vec::new();
                for (_, e) in exprs {
                    e.referenced_columns(&mut cols);
                }
                require(&mut needed[input.0], Some(BTreeSet::new()), cols);
            }
            CalcNode::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let cols: Vec<usize> = group_by
                    .iter()
                    .copied()
                    .chain(aggs.iter().map(|(_, c)| *c))
                    .collect();
                require(&mut needed[input.0], Some(BTreeSet::new()), cols);
            }
            // Row-shape-preserving or opaque operators: conservatively
            // require every input column.
            CalcNode::Join { left, right, .. } => {
                needed[left.0] = None;
                needed[right.0] = None;
            }
            CalcNode::Union { inputs } => {
                for input in inputs {
                    needed[input.0] = None;
                }
            }
            CalcNode::SplitCombine { input, .. }
            | CalcNode::Conv { input, .. }
            | CalcNode::Custom { input, .. } => {
                needed[input.0] = None;
            }
        }
    }
    let mut applied = 0;
    for i in (0..g.len()).filter(|&i| reachable[i]) {
        if let CalcNode::TableSource {
            table,
            fused_filter,
            projection,
        } = g.node(NodeId(i))
        {
            let arity = table.schema().columns().len();
            let want: Option<Vec<usize>> = match &needed[i] {
                None => None,
                Some(set) => {
                    // The executor evaluates the fused residue on the
                    // materialized rows, so its columns are needed too.
                    let mut cols = Vec::new();
                    fused_filter.referenced_columns(&mut cols);
                    let mut set = set.clone();
                    set.extend(cols);
                    if (0..arity).all(|c| set.contains(&c)) {
                        None
                    } else {
                        Some(set.into_iter().collect())
                    }
                }
            };
            if *projection != want {
                let id = NodeId(i);
                if let CalcNode::TableSource { projection, .. } = g.node_mut(id) {
                    *projection = want;
                }
                applied += 1;
            }
        }
    }
    applied
}

/// Merge `own` (columns this node's consumers read; `None` = all) plus the
/// operator's own column references into the input's needed set.
fn require(input_needed: &mut Needed, own: Needed, extra: Vec<usize>) {
    match own {
        None => *input_needed = None,
        Some(own_cols) => {
            if let Some(set) = input_needed {
                set.extend(own_cols);
                set.extend(extra);
            }
        }
    }
}

/// Compose `outer` over `inner` when every outer column reference can be
/// substituted with the inner expression.
fn compose_projections(
    inner: &[(String, Expr)],
    outer: &[(String, Expr)],
) -> Option<Vec<(String, Expr)>> {
    fn substitute(e: &Expr, inner: &[(String, Expr)]) -> Option<Expr> {
        Some(match e {
            Expr::Column(i) => inner.get(*i)?.1.clone(),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Add(a, b) => Expr::Add(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(substitute(a, inner)?),
                Box::new(substitute(b, inner)?),
            ),
        })
    }
    outer
        .iter()
        .map(|(n, e)| Some((n.clone(), substitute(e, inner)?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Predicate;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig, Value};
    use hana_txn::TxnManager;
    use std::sync::Arc;

    fn table() -> Arc<hana_core::UnifiedTable> {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("b", DataType::Int),
            ],
        )
        .unwrap();
        hana_core::UnifiedTable::standalone(schema, TableConfig::default(), mgr)
    }

    #[test]
    fn filter_fuses_into_scan() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Eq(0, Value::Int(1)),
        });
        g.set_root(f);
        let n = optimize(&mut g);
        assert!(n >= 1);
        match g.node(s) {
            CalcNode::TableSource { fused_filter, .. } => {
                assert_eq!(*fused_filter, Predicate::Eq(0, Value::Int(1)));
            }
            _ => panic!("scan expected"),
        }
        match g.node(f) {
            CalcNode::Filter { pred, .. } => assert_eq!(*pred, Predicate::True),
            _ => panic!("filter expected"),
        }
    }

    #[test]
    fn stacked_filters_merge_then_fuse() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f1 = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Gt(0, Value::Int(0)),
        });
        let f2 = g.add(CalcNode::Filter {
            input: f1,
            pred: Predicate::Lt(0, Value::Int(10)),
        });
        g.set_root(f2);
        optimize(&mut g);
        match g.node(s) {
            CalcNode::TableSource { fused_filter, .. } => match fused_filter {
                Predicate::And(ps) => assert_eq!(ps.len(), 2),
                p => panic!("expected conjunction, got {p:?}"),
            },
            _ => panic!("scan expected"),
        }
    }

    #[test]
    fn projections_collapse() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let p1 = g.add(CalcNode::Project {
            input: s,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        let p2 = g.add(CalcNode::Project {
            input: p1,
            exprs: vec![("b2".into(), Expr::col(0).mul(Expr::lit(2)))],
        });
        g.set_root(p2);
        optimize(&mut g);
        match g.node(p2) {
            CalcNode::Project { input, exprs } => {
                assert_eq!(*input, s);
                // col(0) of the outer was substituted by col(1) of the inner.
                assert_eq!(exprs[0].1, Expr::col(1).mul(Expr::lit(2)));
            }
            _ => panic!("project expected"),
        }
    }

    fn scan_projection(g: &CalcGraph, id: NodeId) -> Option<Vec<usize>> {
        match g.node(id) {
            CalcNode::TableSource { projection, .. } => projection.clone(),
            _ => panic!("scan expected"),
        }
    }

    #[test]
    fn projection_pushes_into_scan() {
        // scan(a, b) -> project(b) needs only column 1.
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let p = g.add(CalcNode::Project {
            input: s,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        g.set_root(p);
        optimize(&mut g);
        assert_eq!(scan_projection(&g, s), Some(vec![1]));
        assert!(g.explain().contains("[project [1]]"));
    }

    #[test]
    fn pushdown_includes_filter_and_fused_columns() {
        // filter(a) over scan, projecting b: both columns stay needed, so
        // no strict subset exists and the projection stays None.
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Gt(0, Value::Int(3)),
        });
        let p = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        g.set_root(p);
        optimize(&mut g);
        // The filter fused into the scan; its column 0 plus the projected
        // column 1 cover the whole table.
        assert_eq!(scan_projection(&g, s), None);
    }

    #[test]
    fn aggregate_inputs_push_into_scan() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let a = g.add(CalcNode::Aggregate {
            input: s,
            group_by: vec![1],
            aggs: vec![(crate::expr::AggFunc::Sum, 1)],
        });
        g.set_root(a);
        optimize(&mut g);
        assert_eq!(scan_projection(&g, s), Some(vec![1]));
    }

    #[test]
    fn root_scan_keeps_all_columns() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        g.set_root(s);
        optimize(&mut g);
        assert_eq!(scan_projection(&g, s), None);
    }

    #[test]
    fn shared_scan_unions_consumer_needs() {
        // Two projections over one scan: col 0 and col 1 → both needed.
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let p1 = g.add(CalcNode::Project {
            input: s,
            exprs: vec![("a".into(), Expr::col(0))],
        });
        let p2 = g.add(CalcNode::Project {
            input: s,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        let u = g.add(CalcNode::Union {
            inputs: vec![p1, p2],
        });
        g.set_root(u);
        optimize(&mut g);
        assert_eq!(scan_projection(&g, s), None);
    }

    #[test]
    fn shared_subexpressions_not_rewritten() {
        let mut g = CalcGraph::new();
        let s = g.add(CalcNode::TableSource {
            table: table().into(),
            fused_filter: Predicate::True,
            projection: None,
        });
        let f = g.add(CalcNode::Filter {
            input: s,
            pred: Predicate::Gt(0, Value::Int(0)),
        });
        // Two consumers of f.
        let p1 = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("a".into(), Expr::col(0))],
        });
        let p2 = g.add(CalcNode::Project {
            input: f,
            exprs: vec![("b".into(), Expr::col(1))],
        });
        let u = g.add(CalcNode::Union {
            inputs: vec![p1, p2],
        });
        g.set_root(u);
        // f feeds two consumers; its filter must NOT fuse into the scan via
        // one of them only... (fusion through f itself is fine since s has
        // one consumer). Check that the structure stays valid.
        optimize(&mut g);
        // Both projects still read from f.
        assert_eq!(g.inputs(p1), vec![f]);
        assert_eq!(g.inputs(p2), vec![f]);
    }
}
