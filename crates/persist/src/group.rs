//! The group-commit pipeline: many committers, one fsync.
//!
//! The seed write path retired every transaction with a private
//! `write + fsync`, so OLTP throughput was bounded by disk sync latency —
//! exactly the bottleneck the paper's L1-delta is built to avoid (§3.2:
//! logging happens only at a row's first appearance; the commit itself is a
//! single tiny record). This module batches those tiny records:
//!
//! * Committers *sequence* their commit record under the pipeline lock —
//!   commit-timestamp assignment and log-append happen in one critical
//!   section, so the on-disk record order always matches timestamp order
//!   and a crash can never durably keep a transaction while losing an
//!   earlier one it might depend on.
//! * The first sequenced committer becomes the **batch leader**: it waits
//!   up to [`CommitConfig::max_wait_us`] for followers (or until
//!   [`CommitConfig::max_batch`] records are pending), performs one
//!   `flush + fsync`, and wakes every waiter whose record is now on disk.
//! * Followers arriving while a leader's fsync is in flight pile up and are
//!   retired by the *next* leader — under load the pipeline degenerates to
//!   one fsync per disk round-trip, not one per transaction.
//!
//! The durability contract is unchanged: a committer returns only once its
//! own record is durable. Only the *sharing* of the fsync is new.
//!
//! ## Failure propagation
//!
//! When the leader's flush fails, *every* waiter whose record was in the
//! failed batch is woken and handed the error — nobody hangs, and nobody
//! silently retries an fsync whose coverage is unknowable. The sequence
//! range of the failed batch is recorded (`failed_upto`); waiters below it
//! return the flush error, committers sequencing after it start clean. A
//! transaction whose commit returns this error is **in doubt**: its record
//! may still sit in the log buffer and become durable if a later healthy
//! flush retires it (injected transient faults preserve the buffer), or be
//! gone for good (wedged log, real device failure). Recovery resolves it
//! like any other: commit record replayed ⇒ committed, else aborted.

use crate::log::{LogRecord, RedoLog};
use hana_common::{CommitConfig, HanaError, Result};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Counters of the commit pipeline (cumulative since open).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LogStats {
    /// Durable batches retired (one per fsync that covered ≥ 1 record).
    pub batches: u64,
    /// Commit/abort records sequenced through the pipeline.
    pub records: u64,
    /// `fsync` calls issued by the pipeline.
    pub fsyncs: u64,
    /// Mean records per batch (`records / batches`).
    pub avg_batch_len: f64,
    /// Leader flushes that failed (each one fails its whole batch).
    pub flush_failures: u64,
}

#[derive(Default)]
struct PipeState {
    /// Records sequenced into the log buffer so far.
    appended: u64,
    /// Records known durable (prefix of `appended`).
    durable: u64,
    /// A leader currently owns the flush.
    flushing: bool,
    /// Highest sequence covered by a failed flush: waiters at or below it
    /// (and not yet durable) get the error instead of waiting forever.
    failed_upto: u64,
    /// Message of the most recent failed flush.
    fail_msg: String,
}

/// Leader-based commit batcher over one [`RedoLog`].
#[derive(Default)]
pub struct GroupCommit {
    state: Mutex<PipeState>,
    /// Signals `durable` advanced, a flush failed, or the leader slot freed.
    retired: Condvar,
    /// Signals a new record joined while a leader gathers.
    joined: Condvar,
    batches: AtomicU64,
    records: AtomicU64,
    fsyncs: AtomicU64,
    flush_failures: AtomicU64,
    /// Committers currently inside [`GroupCommit::submit`]. The leader uses
    /// this to bound its gather wait: once every in-flight committer has
    /// sequenced there is nobody worth waiting for.
    in_flight: AtomicU64,
}

/// Decrements the in-flight gauge on every exit path of `submit`.
struct InFlight<'a>(&'a AtomicU64);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn batch_error(msg: &str) -> HanaError {
    HanaError::Persist(format!("group commit flush failed: {msg}"))
}

impl GroupCommit {
    /// A fresh pipeline with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequence one record and return only once it is durable.
    ///
    /// `seq` runs under the pipeline's sequencing lock and produces the
    /// record plus a caller-visible output (the commit timestamp): whatever
    /// ordering `seq` establishes (e.g. commit-clock order) is exactly the
    /// order records reach the log. If `seq` fails nothing is appended.
    pub fn submit<T>(
        &self,
        log: &RedoLog,
        cfg: &CommitConfig,
        seq: impl FnOnce() -> Result<(LogRecord, T)>,
    ) -> Result<T> {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        let _guard = InFlight(&self.in_flight);
        let mut st = self.state.lock();
        let (rec, out) = seq()?;
        log.append(&rec)?;
        st.appended += 1;
        let my_seq = st.appended;
        self.records.fetch_add(1, Ordering::Relaxed);
        // Wake a leader that is gathering followers.
        self.joined.notify_all();

        if !cfg.group_commit {
            // Classic path: a private fsync per record. Records buffered
            // before this flush began become durable too and are credited,
            // so their waiters don't sync again for nothing.
            let target = st.appended;
            drop(st);
            let flushed = log.flush();
            let mut st = self.state.lock();
            match flushed {
                Ok(()) => {
                    self.fsyncs.fetch_add(1, Ordering::Relaxed);
                    if st.durable < target {
                        self.batches.fetch_add(1, Ordering::Relaxed);
                        st.durable = target;
                    }
                    self.retired.notify_all();
                    Ok(out)
                }
                Err(e) => {
                    // Anything buffered up to `target` shares this failure.
                    self.flush_failures.fetch_add(1, Ordering::Relaxed);
                    st.failed_upto = st.failed_upto.max(target);
                    st.fail_msg = e.to_string();
                    self.retired.notify_all();
                    Err(e)
                }
            }
        } else {
            loop {
                if st.durable >= my_seq {
                    return Ok(out);
                }
                if st.failed_upto >= my_seq {
                    // The flush that covered this record failed; the
                    // transaction is in doubt (see module docs).
                    return Err(batch_error(&st.fail_msg));
                }
                if st.flushing {
                    // Follower: a leader will retire (or fail) this record.
                    self.retired.wait(&mut st);
                    continue;
                }
                // Become the leader. Gather followers until the batch fills,
                // the window elapses, or every committer currently in the
                // pipeline has sequenced — a solo committer never waits, so
                // group mode costs nothing on an idle system.
                st.flushing = true;
                if cfg.max_wait_us > 0 {
                    let deadline = Duration::from_micros(cfg.max_wait_us);
                    let mut waited = Duration::ZERO;
                    loop {
                        let pending = st.appended - st.durable;
                        if pending >= cfg.max_batch as u64
                            || pending >= self.in_flight.load(Ordering::SeqCst)
                            || waited >= deadline
                        {
                            break;
                        }
                        let t0 = std::time::Instant::now();
                        let timeout = self.joined.wait_for(&mut st, deadline - waited);
                        if timeout.timed_out() {
                            break;
                        }
                        waited += t0.elapsed();
                    }
                }
                let target = st.appended;
                drop(st);
                let flushed = log.flush();
                st = self.state.lock();
                st.flushing = false;
                match flushed {
                    Ok(()) => {
                        self.fsyncs.fetch_add(1, Ordering::Relaxed);
                        if st.durable < target {
                            self.batches.fetch_add(1, Ordering::Relaxed);
                            st.durable = target;
                        }
                        self.retired.notify_all();
                        // Loop back: `durable >= my_seq` now holds.
                    }
                    Err(e) => {
                        // Fail the whole batch: every waiter at or below
                        // `target` is woken and returns the error. The
                        // leader's own record is in that range too.
                        self.flush_failures.fetch_add(1, Ordering::Relaxed);
                        st.failed_upto = st.failed_upto.max(target);
                        st.fail_msg = e.to_string();
                        self.retired.notify_all();
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Snapshot of the pipeline counters.
    pub fn stats(&self) -> LogStats {
        let batches = self.batches.load(Ordering::Relaxed);
        let records = self.records.load(Ordering::Relaxed);
        LogStats {
            batches,
            records,
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            avg_batch_len: if batches == 0 {
                0.0
            } else {
                records as f64 / batches as f64
            },
            flush_failures: self.flush_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultErrorKind, FaultPolicy, IoOp};
    use hana_common::{Timestamp, TxnId};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use tempfile::tempdir;

    fn commit_rec(txn: u64, ts: Timestamp) -> LogRecord {
        LogRecord::Commit {
            txn: TxnId(txn),
            ts,
        }
    }

    #[test]
    fn serial_mode_syncs_every_record() {
        let dir = tempdir().unwrap();
        let log = RedoLog::open(&dir.path().join("redo.log")).unwrap();
        let pipe = GroupCommit::new();
        let cfg = CommitConfig::serial();
        for i in 0..5u64 {
            let ts = pipe
                .submit(&log, &cfg, || Ok((commit_rec(i, i + 1), i + 1)))
                .unwrap();
            assert_eq!(ts, i + 1);
        }
        let s = pipe.stats();
        assert_eq!(s.records, 5);
        assert_eq!(s.fsyncs, 5);
        assert_eq!(s.batches, 5);
        assert!((s.avg_batch_len - 1.0).abs() < 1e-9);
        assert_eq!(s.flush_failures, 0);
        assert_eq!(
            RedoLog::read_all(&dir.path().join("redo.log"))
                .unwrap()
                .len(),
            5
        );
    }

    #[test]
    fn group_mode_single_thread_still_durable_per_submit() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        let pipe = GroupCommit::new();
        let cfg = CommitConfig::default().with_max_wait_us(0);
        for i in 0..4u64 {
            pipe.submit(&log, &cfg, || Ok((commit_rec(i, i + 1), ())))
                .unwrap();
            // Every submit returns with its record already on disk.
            assert_eq!(RedoLog::read_all(&path).unwrap().len() as u64, i + 1);
        }
        let s = pipe.stats();
        assert_eq!(s.records, 4);
        assert_eq!(s.fsyncs, 4); // no concurrency ⇒ no sharing
    }

    #[test]
    fn concurrent_submits_share_fsyncs() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = Arc::new(RedoLog::open(&path).unwrap());
        let pipe = Arc::new(GroupCommit::new());
        let cfg = CommitConfig::default().with_max_wait_us(200);
        let clock = Arc::new(AtomicU64::new(0));
        const THREADS: u64 = 8;
        const PER: u64 = 25;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let (log, pipe, clock) = (Arc::clone(&log), Arc::clone(&pipe), Arc::clone(&clock));
                s.spawn(move || {
                    for _ in 0..PER {
                        pipe.submit(&log, &cfg, || {
                            let ts = clock.fetch_add(1, Ordering::SeqCst) + 1;
                            Ok((commit_rec(ts, ts), ()))
                        })
                        .unwrap();
                    }
                });
            }
        });
        let s = pipe.stats();
        assert_eq!(s.records, THREADS * PER);
        assert!(
            s.fsyncs < s.records,
            "batching should engage under concurrency: {s:?}"
        );
        assert!(s.avg_batch_len > 1.0, "{s:?}");
        // Every record made it to disk, in sequencing order.
        let recs = RedoLog::read_all(&path).unwrap();
        assert_eq!(recs.len() as u64, THREADS * PER);
        let mut prev = 0;
        for r in recs {
            let LogRecord::Commit { ts, .. } = r else {
                panic!("unexpected record");
            };
            assert!(ts > prev, "log order must match timestamp order");
            prev = ts;
        }
    }

    #[test]
    fn failed_sequencer_appends_nothing() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        let pipe = GroupCommit::new();
        let err: Result<()> = pipe.submit(&log, &CommitConfig::default(), || {
            Err(hana_common::HanaError::Txn("already finished".into()))
        });
        assert!(err.is_err());
        assert_eq!(pipe.stats().records, 0);
        assert!(RedoLog::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn injected_fsync_failure_fails_submit_then_recovers() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        let pipe = GroupCommit::new();
        let cfg = CommitConfig::default().with_max_wait_us(0);
        log.injector()
            .arm(FaultPolicy::fail_nth(IoOp::LogSync, 0, FaultErrorKind::Eio));
        let r: Result<()> = pipe.submit(&log, &cfg, || Ok((commit_rec(1, 1), ())));
        assert!(r.is_err());
        assert_eq!(pipe.stats().flush_failures, 1);
        // The pipeline is not stuck: a later commit succeeds, and the
        // retried flush also lands the in-doubt record (buffer preserved).
        pipe.submit(&log, &cfg, || Ok((commit_rec(2, 2), ())))
            .unwrap();
        assert_eq!(RedoLog::read_all(&path).unwrap().len(), 2);
        assert_eq!(pipe.stats().flush_failures, 1);
    }

    #[test]
    fn serial_mode_flush_failure_reports_error() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("redo.log");
        let log = RedoLog::open(&path).unwrap();
        let pipe = GroupCommit::new();
        let cfg = CommitConfig::serial();
        log.injector().arm(FaultPolicy::fail_nth(
            IoOp::LogSync,
            0,
            FaultErrorKind::Enospc,
        ));
        let r: Result<()> = pipe.submit(&log, &cfg, || Ok((commit_rec(1, 1), ())));
        assert!(r.unwrap_err().to_string().contains("ENOSPC"));
        pipe.submit(&log, &cfg, || Ok((commit_rec(2, 2), ())))
            .unwrap();
        assert_eq!(RedoLog::read_all(&path).unwrap().len(), 2);
    }
}
