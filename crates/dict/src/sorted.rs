//! The sorted dictionary of the main store.
//!
//! Codes are positions in sort order, so they are *order-preserving*: value
//! comparisons become integer comparisons on codes, and a range predicate
//! `lo ≤ v ≤ hi` becomes a contiguous code interval — the property the
//! paper's main-store operators ("special operators working directly on
//! dictionary encoded columns") and Fig. 10's range resolution rely on.
//!
//! String dictionaries are stored front-coded ([`FrontCodedStrings`]);
//! numeric dictionaries as plain sorted vectors.

use crate::prefix::FrontCodedStrings;
use crate::Code;
use hana_common::Value;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum Repr {
    /// Sorted non-string values.
    Plain(Vec<Value>),
    /// Front-coded sorted strings.
    Strings(FrontCodedStrings),
}

/// Immutable sorted dictionary with order-preserving codes.
#[derive(Debug, Clone)]
pub struct SortedDict {
    repr: Repr,
}

impl Default for SortedDict {
    fn default() -> Self {
        SortedDict {
            repr: Repr::Plain(Vec::new()),
        }
    }
}

impl SortedDict {
    /// An empty dictionary.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from values that must already be sorted ascending and unique.
    /// Chooses front coding when all values are strings.
    pub fn from_sorted_values(values: Vec<Value>) -> Self {
        debug_assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "sorted unique input"
        );
        let all_strings = !values.is_empty() && values.iter().all(|v| v.as_str().is_some());
        if all_strings {
            let refs: Vec<&str> = values.iter().map(|v| v.as_str().unwrap()).collect();
            SortedDict {
                repr: Repr::Strings(FrontCodedStrings::from_sorted(&refs)),
            }
        } else {
            SortedDict {
                repr: Repr::Plain(values),
            }
        }
    }

    /// Build from arbitrary (possibly duplicated, unsorted) values.
    pub fn from_values(mut values: Vec<Value>) -> Self {
        values.sort_unstable();
        values.dedup();
        Self::from_sorted_values(values)
    }

    /// Number of distinct values (the paper's `C`; codes use ⌈ld C⌉ bits).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Plain(v) => v.len(),
            Repr::Strings(f) => f.len(),
        }
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value for a code.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn value_of(&self, c: Code) -> Value {
        match &self.repr {
            Repr::Plain(v) => v[c as usize].clone(),
            Repr::Strings(f) => Value::Str(f.get(c as usize)),
        }
    }

    /// Code for `v` if present.
    pub fn code_of(&self, v: &Value) -> Option<Code> {
        self.search(v).ok().map(|i| i as Code)
    }

    /// `binary_search`-style lookup: `Ok(pos)` or `Err(insertion point)`.
    pub fn search(&self, v: &Value) -> Result<usize, usize> {
        match &self.repr {
            Repr::Plain(vals) => vals.binary_search(v),
            Repr::Strings(f) => match v.as_str() {
                Some(s) => f.binary_search(s),
                // Non-strings sort relative to strings by type rank:
                // Int/Double below all strings.
                None => Err(0),
            },
        }
    }

    /// The half-open code interval matching a value range. Because codes are
    /// order-preserving this is exactly how the main store resolves range
    /// predicates (Fig. 10: "the ranges are resolved in both dictionaries").
    pub fn code_range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> std::ops::Range<Code> {
        let start = match lo {
            Bound::Unbounded => 0,
            Bound::Included(v) => match self.search(v) {
                Ok(i) => i,
                Err(i) => i,
            },
            Bound::Excluded(v) => match self.search(v) {
                Ok(i) => i + 1,
                Err(i) => i,
            },
        };
        let end = match hi {
            Bound::Unbounded => self.len(),
            Bound::Included(v) => match self.search(v) {
                Ok(i) => i + 1,
                Err(i) => i,
            },
            Bound::Excluded(v) => match self.search(v) {
                Ok(i) => i,
                Err(i) => i,
            },
        };
        (start.min(self.len()) as Code)..(end.min(self.len()) as Code)
    }

    /// Iterate all values in code (= sort) order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len() as Code).map(move |c| self.value_of(c))
    }

    /// The greatest value, if any.
    pub fn max_value(&self) -> Option<Value> {
        if self.is_empty() {
            None
        } else {
            Some(self.value_of(self.len() as Code - 1))
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        match &self.repr {
            Repr::Plain(v) => v.iter().map(Value::heap_size).sum(),
            Repr::Strings(f) => f.heap_size(),
        }
    }

    /// True if the string representation is front-coded.
    pub fn is_prefix_compressed(&self) -> bool {
        matches!(self.repr, Repr::Strings(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_int() -> SortedDict {
        SortedDict::from_values(vec![
            Value::Int(30),
            Value::Int(10),
            Value::Int(20),
            Value::Int(10),
        ])
    }

    fn dict_str() -> SortedDict {
        SortedDict::from_values(
            [
                "Los Gatos",
                "Campbell",
                "Daily City",
                "Saratoga",
                "San Jose",
            ]
            .into_iter()
            .map(Value::str)
            .collect(),
        )
    }

    #[test]
    fn codes_are_order_preserving() {
        let d = dict_int();
        assert_eq!(d.len(), 3);
        assert_eq!(d.code_of(&Value::Int(10)), Some(0));
        assert_eq!(d.code_of(&Value::Int(20)), Some(1));
        assert_eq!(d.code_of(&Value::Int(30)), Some(2));
        assert_eq!(d.code_of(&Value::Int(15)), None);
        assert_eq!(d.value_of(1), Value::Int(20));
    }

    #[test]
    fn strings_are_front_coded() {
        let d = dict_str();
        assert!(d.is_prefix_compressed());
        assert_eq!(d.value_of(0), Value::str("Campbell"));
        assert_eq!(d.code_of(&Value::str("San Jose")), Some(3));
        assert_eq!(
            d.iter().collect::<Vec<_>>(),
            [
                "Campbell",
                "Daily City",
                "Los Gatos",
                "San Jose",
                "Saratoga"
            ]
            .map(Value::str)
            .to_vec()
        );
    }

    #[test]
    fn range_resolution_like_fig10() {
        // Fig 10 runs a range query "between C% and L%".
        let d = dict_str();
        let r = d.code_range(
            Bound::Included(&Value::str("C")),
            Bound::Excluded(&Value::str("M")),
        );
        let hits: Vec<Value> = r.map(|c| d.value_of(c)).collect();
        assert_eq!(
            hits,
            ["Campbell", "Daily City", "Los Gatos"]
                .map(Value::str)
                .to_vec()
        );
    }

    #[test]
    fn numeric_ranges() {
        let d = dict_int();
        assert_eq!(
            d.code_range(
                Bound::Included(&Value::Int(10)),
                Bound::Included(&Value::Int(20))
            ),
            0..2
        );
        assert_eq!(
            d.code_range(Bound::Excluded(&Value::Int(10)), Bound::Unbounded),
            1..3
        );
        assert_eq!(
            d.code_range(Bound::Included(&Value::Int(100)), Bound::Unbounded),
            3..3
        );
    }

    #[test]
    fn empty_dictionary() {
        let d = SortedDict::empty();
        assert!(d.is_empty());
        assert_eq!(d.max_value(), None);
        assert_eq!(d.code_of(&Value::Int(1)), None);
        assert_eq!(d.code_range(Bound::Unbounded, Bound::Unbounded), 0..0);
    }

    #[test]
    fn max_value() {
        assert_eq!(dict_int().max_value(), Some(Value::Int(30)));
    }
}
