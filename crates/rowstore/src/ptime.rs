//! A P\*Time-style standalone in-memory row table.
//!
//! The paper names SAP P\*Time — "a main-memory row-oriented relational
//! database system … optimized for SAP's applications" — as the origin of
//! its SQL engine and the classical row-store design the unified table is
//! measured against. [`RowTable`] reproduces that comparator: update-in-
//! place-style row storage (here: version append with a primary-key hash
//! index), MVCC stamps, and full-row scans. The "myth" benchmarks run the
//! same OLTP/OLAP mix against this and the unified table.

use crate::Row;
use hana_common::{ColumnId, HanaError, Result, RowId, Schema, Timestamp, Value, COMMIT_TS_MAX};
use hana_txn::{
    version_visible, write_allowed, LockTable, Snapshot, Transaction, TxnManager, WriteCheck,
};
use parking_lot::RwLock;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct VersionSlot {
    row_id: RowId,
    begin: AtomicU64,
    end: AtomicU64,
    values: Row,
}

/// A row-oriented MVCC table with a hash primary index.
pub struct RowTable {
    schema: Schema,
    key_col: ColumnId,
    mgr: Arc<TxnManager>,
    slots: RwLock<Vec<Arc<VersionSlot>>>,
    /// Key value → version slot indexes (old to new).
    index: RwLock<FxHashMap<Value, Vec<u32>>>,
    locks: LockTable,
    next_row_id: AtomicU64,
}

impl RowTable {
    /// Create a table keyed by `key_col` (must be a declared-unique column).
    pub fn new(schema: Schema, key_col: ColumnId, mgr: Arc<TxnManager>) -> Result<Self> {
        if !schema.column(key_col).unique {
            return Err(HanaError::Schema(format!(
                "key column {} must be declared unique",
                schema.column(key_col).name
            )));
        }
        Ok(RowTable {
            schema,
            key_col,
            mgr,
            slots: RwLock::new(Vec::new()),
            index: RwLock::new(FxHashMap::default()),
            locks: LockTable::new(),
            next_row_id: AtomicU64::new(0),
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of version slots (live + dead).
    pub fn version_count(&self) -> usize {
        self.slots.read().len()
    }

    fn key_of(&self, row: &Row) -> Value {
        row[self.key_col.idx()].clone()
    }

    /// Insert a row; fails on duplicate visible key.
    pub fn insert(&self, txn: &Transaction, row: Row) -> Result<RowId> {
        self.schema.check_row(&row)?;
        let snap = txn.read_snapshot();
        let key = self.key_of(&row);
        if self.get(&snap, &key)?.is_some() {
            return Err(HanaError::Constraint(format!(
                "duplicate key {key} in table {}",
                self.schema.name
            )));
        }
        let row_id = RowId(self.next_row_id.fetch_add(1, Ordering::Relaxed));
        self.locks.try_lock(row_id, txn.id())?;
        let slot = Arc::new(VersionSlot {
            row_id,
            begin: AtomicU64::new(txn.id().mark()),
            end: AtomicU64::new(COMMIT_TS_MAX),
            values: row,
        });
        let mut slots = self.slots.write();
        let idx = slots.len() as u32;
        slots.push(slot);
        drop(slots);
        self.index.write().entry(key).or_default().push(idx);
        Ok(row_id)
    }

    /// Point lookup by key.
    pub fn get(&self, snap: &Snapshot, key: &Value) -> Result<Option<Row>> {
        let index = self.index.read();
        let Some(versions) = index.get(key) else {
            return Ok(None);
        };
        let versions = versions.clone();
        drop(index);
        let slots = self.slots.read();
        // Newest first: the visible version is unique under SI.
        for &vi in versions.iter().rev() {
            let s = &slots[vi as usize];
            if version_visible(&self.mgr, snap, s.begin(), s.end()) {
                return Ok(Some(s.values.clone()));
            }
        }
        Ok(None)
    }

    /// Update the row with `key`, replacing the value in `col`.
    pub fn update(
        &self,
        txn: &Transaction,
        key: &Value,
        col: ColumnId,
        value: Value,
    ) -> Result<()> {
        self.schema.check_value(&value, self.schema.column(col))?;
        let snap = txn.read_snapshot();
        let (slot_idx, slot) = self
            .find_visible_slot(&snap, key)?
            .ok_or_else(|| HanaError::NotFound(format!("key {key}")))?;
        self.locks.try_lock(slot.row_id, txn.id())?;
        match write_allowed(&self.mgr, &snap, txn.id(), slot.begin(), slot.end()) {
            WriteCheck::Ok => {}
            WriteCheck::AlreadyDead => {
                return Err(HanaError::NotFound(format!("key {key} is gone")))
            }
            WriteCheck::ConflictUncommitted(t) => {
                return Err(HanaError::WriteConflict(format!("row written by {t}")))
            }
            WriteCheck::ConflictCommitted(ts) => {
                return Err(HanaError::WriteConflict(format!(
                    "row version committed at {ts} after snapshot"
                )))
            }
        }
        let mut values = slot.values.clone();
        values[col.idx()] = value;
        // Close old, append new version of the same row id.
        slot.store_end(txn.id().mark());
        let new_slot = Arc::new(VersionSlot {
            row_id: slot.row_id,
            begin: AtomicU64::new(txn.id().mark()),
            end: AtomicU64::new(COMMIT_TS_MAX),
            values,
        });
        let mut slots = self.slots.write();
        let idx = slots.len() as u32;
        slots.push(new_slot);
        drop(slots);
        self.index.write().entry(key.clone()).or_default().push(idx);
        let _ = slot_idx;
        Ok(())
    }

    /// Delete the row with `key`.
    pub fn delete(&self, txn: &Transaction, key: &Value) -> Result<()> {
        let snap = txn.read_snapshot();
        let (_, slot) = self
            .find_visible_slot(&snap, key)?
            .ok_or_else(|| HanaError::NotFound(format!("key {key}")))?;
        self.locks.try_lock(slot.row_id, txn.id())?;
        match write_allowed(&self.mgr, &snap, txn.id(), slot.begin(), slot.end()) {
            WriteCheck::Ok => {
                slot.store_end(txn.id().mark());
                Ok(())
            }
            WriteCheck::AlreadyDead => Err(HanaError::NotFound(format!("key {key} is gone"))),
            WriteCheck::ConflictUncommitted(t) => {
                Err(HanaError::WriteConflict(format!("row written by {t}")))
            }
            WriteCheck::ConflictCommitted(ts) => Err(HanaError::WriteConflict(format!(
                "row version committed at {ts} after snapshot"
            ))),
        }
    }

    fn find_visible_slot(
        &self,
        snap: &Snapshot,
        key: &Value,
    ) -> Result<Option<(u32, Arc<VersionSlot>)>> {
        let index = self.index.read();
        let Some(versions) = index.get(key) else {
            return Ok(None);
        };
        let versions = versions.clone();
        drop(index);
        let slots = self.slots.read();
        for &vi in versions.iter().rev() {
            let s = &slots[vi as usize];
            if version_visible(&self.mgr, snap, s.begin(), s.end()) {
                return Ok(Some((vi, Arc::clone(s))));
            }
        }
        Ok(None)
    }

    /// Full scan of visible rows (the row store must touch every column of
    /// every row — the asymmetry the OLAP benchmarks expose).
    pub fn scan(&self, snap: &Snapshot, mut f: impl FnMut(RowId, &Row)) {
        let slots = self.slots.read();
        for s in slots.iter() {
            if version_visible(&self.mgr, snap, s.begin(), s.end()) {
                f(s.row_id, &s.values);
            }
        }
    }

    /// Release write locks at commit/abort time.
    pub fn finish_txn(&self, txn_id: hana_common::TxnId) {
        self.locks.release_all(txn_id);
    }

    /// Approximate bytes held by all versions (rows stay in full row format —
    /// no compression, the Fig-11 comparison point).
    pub fn approx_bytes(&self) -> usize {
        let slots = self.slots.read();
        slots
            .iter()
            .map(|s| s.values.iter().map(Value::heap_size).sum::<usize>() + 48)
            .sum()
    }
}

impl VersionSlot {
    fn begin(&self) -> Timestamp {
        self.begin.load(Ordering::Acquire)
    }
    fn end(&self) -> Timestamp {
        self.end.load(Ordering::Acquire)
    }
    fn store_end(&self, ts: Timestamp) {
        self.end.store(ts, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType};
    use hana_txn::IsolationLevel;

    fn setup() -> (Arc<TxnManager>, RowTable) {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "accounts",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("owner", DataType::Str),
                ColumnDef::new("balance", DataType::Int).not_null(),
            ],
        )
        .unwrap();
        let t = RowTable::new(schema, ColumnId(0), Arc::clone(&mgr)).unwrap();
        (mgr, t)
    }

    fn acct(id: i64, owner: &str, bal: i64) -> Row {
        vec![Value::Int(id), Value::str(owner), Value::Int(bal)]
    }

    #[test]
    fn insert_commit_read() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, acct(1, "ada", 100)).unwrap();
        // Own uncommitted read sees it.
        assert!(t
            .get(&txn.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_some());
        // Other transaction does not.
        let other = mgr.begin(IsolationLevel::Transaction);
        assert!(t
            .get(&other.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_none());
        txn.commit().unwrap();
        t.finish_txn(txn.id());
        // Still invisible to the old transaction-level snapshot…
        assert!(t
            .get(&other.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_none());
        // …but visible to a fresh one.
        let fresh = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(
            t.get(&fresh.read_snapshot(), &Value::Int(1))
                .unwrap()
                .unwrap()[1],
            Value::str("ada")
        );
    }

    #[test]
    fn duplicate_key_rejected() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, acct(1, "ada", 100)).unwrap();
        txn.commit().unwrap();
        t.finish_txn(txn.id());
        let txn2 = mgr.begin(IsolationLevel::Transaction);
        let err = t.insert(&txn2, acct(1, "bob", 5)).unwrap_err();
        assert!(matches!(err, HanaError::Constraint(_)));
    }

    #[test]
    fn update_creates_new_visible_version() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, acct(1, "ada", 100)).unwrap();
        txn.commit().unwrap();
        t.finish_txn(txn.id());

        let reader_before = mgr.begin(IsolationLevel::Transaction);
        let snap_before = reader_before.read_snapshot();

        let mut upd = mgr.begin(IsolationLevel::Transaction);
        t.update(&upd, &Value::Int(1), ColumnId(2), Value::Int(250))
            .unwrap();
        upd.commit().unwrap();
        t.finish_txn(upd.id());

        // Old snapshot keeps the old balance (repeatable read).
        assert_eq!(
            t.get(&snap_before, &Value::Int(1)).unwrap().unwrap()[2],
            Value::Int(100)
        );
        let fresh = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(
            t.get(&fresh.read_snapshot(), &Value::Int(1))
                .unwrap()
                .unwrap()[2],
            Value::Int(250)
        );
        assert_eq!(t.version_count(), 2);
    }

    #[test]
    fn delete_hides_row() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, acct(1, "ada", 100)).unwrap();
        txn.commit().unwrap();
        t.finish_txn(txn.id());
        let mut del = mgr.begin(IsolationLevel::Transaction);
        t.delete(&del, &Value::Int(1)).unwrap();
        del.commit().unwrap();
        t.finish_txn(del.id());
        let fresh = mgr.begin(IsolationLevel::Transaction);
        assert!(t
            .get(&fresh.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_none());
        // Deleting again reports not-found.
        let del2 = mgr.begin(IsolationLevel::Transaction);
        assert!(matches!(
            t.delete(&del2, &Value::Int(1)).unwrap_err(),
            HanaError::NotFound(_)
        ));
    }

    #[test]
    fn write_write_conflict() {
        let (mgr, t) = setup();
        let mut seed = mgr.begin(IsolationLevel::Transaction);
        t.insert(&seed, acct(1, "ada", 100)).unwrap();
        seed.commit().unwrap();
        t.finish_txn(seed.id());

        let a = mgr.begin(IsolationLevel::Transaction);
        let b = mgr.begin(IsolationLevel::Transaction);
        t.update(&a, &Value::Int(1), ColumnId(2), Value::Int(1))
            .unwrap();
        let err = t
            .update(&b, &Value::Int(1), ColumnId(2), Value::Int(2))
            .unwrap_err();
        assert!(matches!(err, HanaError::WriteConflict(_)));
    }

    #[test]
    fn abort_rolls_back_logically() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, acct(1, "ada", 100)).unwrap();
        txn.abort().unwrap();
        t.finish_txn(txn.id());
        let fresh = mgr.begin(IsolationLevel::Transaction);
        assert!(t
            .get(&fresh.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_none());
        // The key is reusable after the abort.
        let redo = mgr.begin(IsolationLevel::Transaction);
        assert!(t.insert(&redo, acct(1, "bob", 7)).is_ok());
    }

    #[test]
    fn aborted_update_leaves_old_version_live() {
        let (mgr, t) = setup();
        let mut seed = mgr.begin(IsolationLevel::Transaction);
        t.insert(&seed, acct(1, "ada", 100)).unwrap();
        seed.commit().unwrap();
        t.finish_txn(seed.id());

        let mut upd = mgr.begin(IsolationLevel::Transaction);
        t.update(&upd, &Value::Int(1), ColumnId(2), Value::Int(0))
            .unwrap();
        upd.abort().unwrap();
        t.finish_txn(upd.id());

        let fresh = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(
            t.get(&fresh.read_snapshot(), &Value::Int(1))
                .unwrap()
                .unwrap()[2],
            Value::Int(100)
        );
    }

    #[test]
    fn scan_sees_exactly_visible_rows() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 0..10 {
            t.insert(&txn, acct(i, "x", i * 10)).unwrap();
        }
        txn.commit().unwrap();
        t.finish_txn(txn.id());
        let mut del = mgr.begin(IsolationLevel::Transaction);
        t.delete(&del, &Value::Int(3)).unwrap();
        del.commit().unwrap();
        t.finish_txn(del.id());

        let fresh = mgr.begin(IsolationLevel::Transaction);
        let mut seen = Vec::new();
        t.scan(&fresh.read_snapshot(), |_, row| seen.push(row[0].clone()));
        assert_eq!(seen.len(), 9);
        assert!(!seen.contains(&Value::Int(3)));
    }

    #[test]
    fn statement_level_si_sees_mid_txn_commits() {
        let (mgr, t) = setup();
        let reader = mgr.begin(IsolationLevel::Statement);
        assert!(t
            .get(&reader.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_none());
        let mut w = mgr.begin(IsolationLevel::Transaction);
        t.insert(&w, acct(1, "ada", 1)).unwrap();
        w.commit().unwrap();
        t.finish_txn(w.id());
        // The same reader transaction now sees it (fresh statement snapshot).
        assert!(t
            .get(&reader.read_snapshot(), &Value::Int(1))
            .unwrap()
            .is_some());
    }
}
