//! Write paths: insert, update, delete, bulk load.
//!
//! All writes enter the L1-delta (except bulk loads, which "may directly go
//! into the L2-delta, bypassing the L1-delta"). Updates and deletes close
//! the current version wherever it lives and — for updates — write the new
//! version into the L1, restarting the record's life cycle. REDO records are
//! written exactly at first appearance (§3.2).

use crate::loc::Loc;
use crate::table::{TableState, UnifiedTable};
use hana_common::{ColumnId, HanaError, Result, RowId, Value, COMMIT_TS_MAX};
use hana_persist::LogRecord;
use hana_txn::{version_visible, write_allowed, Snapshot, Transaction, WriteCheck};

impl UnifiedTable {
    /// Insert a new row. Uniqueness is validated against all three stages
    /// through their dictionaries/inverted indexes (§3.1's "efficient
    /// validations of uniqueness constraints").
    pub fn insert(&self, txn: &Transaction, row: Vec<Value>) -> Result<RowId> {
        self.schema.check_row(&row)?;
        let _f = self.fence.read();
        // Record the touch up front: even a failed write may leave a row
        // lock behind, and commit/abort only release locks on noted tables.
        txn.note_table(self.id);
        let state = self.state.read();
        let snap = txn.read_snapshot();
        self.check_unique(&state, &snap, txn, &row, None)?;
        let row_id = self.alloc_row_id();
        self.redo(&LogRecord::InsertL1 {
            table: self.id,
            row_id,
            txn: txn.id(),
            row: row.clone(),
        })?;
        self.l1.insert(row_id, row, txn.id().mark());
        Ok(row_id)
    }

    /// Bulk load rows directly into the L2-delta (the paper's special
    /// treatment "for efficient bulk insertions"). One REDO record covers
    /// the whole batch. Returns the first assigned row id; the batch
    /// occupies consecutive ids.
    pub fn bulk_load(&self, txn: &Transaction, rows: Vec<Vec<Value>>) -> Result<RowId> {
        for row in &rows {
            self.schema.check_row(row)?;
        }
        let _f = self.fence.read();
        txn.note_table(self.id);
        // Bulk loads and L1→L2 merges are the only producers of open-L2
        // rows; taking `l1_merge_lock` first (lock order: fence →
        // l1_merge_lock → state) keeps `publish_all` exact for both.
        let _l1m = self.l1_merge_lock.lock();
        let state = self.state.read();
        let snap = txn.read_snapshot();
        // Uniqueness: against existing data and within the batch.
        let unique_cols: Vec<ColumnId> = self.schema.unique_columns().collect();
        for col in &unique_cols {
            let mut seen = rustc_hash::FxHashSet::default();
            for row in &rows {
                let v = &row[col.idx()];
                if !seen.insert(v.clone()) {
                    return Err(HanaError::Constraint(format!(
                        "duplicate key {v} within bulk load batch"
                    )));
                }
            }
        }
        for row in &rows {
            self.check_unique(&state, &snap, txn, row, None)?;
        }
        let first = self.alloc_row_id_block(rows.len() as u64);
        self.redo(&LogRecord::BulkLoadL2 {
            table: self.id,
            first_row_id: first,
            txn: txn.id(),
            rows: rows.clone(),
        })?;
        let batch: Vec<(RowId, Vec<Value>, u64, u64)> = rows
            .into_iter()
            .enumerate()
            .map(|(k, row)| {
                (
                    RowId(first.0 + k as u64),
                    row,
                    txn.id().mark(),
                    COMMIT_TS_MAX,
                )
            })
            .collect();
        state.l2.append_batch(&batch)?;
        state.l2.publish_all();
        Ok(first)
    }

    /// Update the (single) visible row whose `key_col` equals `key`,
    /// applying all `(column, value)` assignments. The update closes the
    /// current version and writes a new version into the L1-delta.
    pub fn update_where(
        &self,
        txn: &Transaction,
        key_col: ColumnId,
        key: &Value,
        updates: &[(ColumnId, Value)],
    ) -> Result<RowId> {
        for (col, v) in updates {
            self.schema.check_value(v, self.schema.column(*col))?;
        }
        let _f = self.fence.read();
        txn.note_table(self.id);
        let state = self.state.read();
        let snap = txn.read_snapshot();
        let (loc, row_id, old_row) = self.current_version(&state, &snap, txn, key_col, key)?;
        let mut new_row = old_row;
        for (col, v) in updates {
            new_row[col.idx()] = v.clone();
        }
        // Re-check uniqueness for changed unique columns, ignoring this row.
        self.check_unique(&state, &snap, txn, &new_row, Some(row_id))?;
        self.redo(&LogRecord::Delete {
            table: self.id,
            row_id,
            txn: txn.id(),
        })?;
        self.redo(&LogRecord::InsertL1 {
            table: self.id,
            row_id,
            txn: txn.id(),
            row: new_row.clone(),
        })?;
        self.store_end_locked(&state, row_id, loc, txn.id().mark());
        #[cfg(debug_assertions)]
        {
            let (_, _, end, _) = self
                .version_at_locked(&state, loc)
                .expect("closed version must still be addressable");
            debug_assert_eq!(end, txn.id().mark(), "end stamp must stick at {loc:?}");
        }
        self.l1.insert(row_id, new_row, txn.id().mark());
        Ok(row_id)
    }

    /// Delete the visible row whose `key_col` equals `key`.
    pub fn delete_where(&self, txn: &Transaction, key_col: ColumnId, key: &Value) -> Result<RowId> {
        let _f = self.fence.read();
        txn.note_table(self.id);
        let state = self.state.read();
        let snap = txn.read_snapshot();
        let (loc, row_id, _) = self.current_version(&state, &snap, txn, key_col, key)?;
        self.redo(&LogRecord::Delete {
            table: self.id,
            row_id,
            txn: txn.id(),
        })?;
        self.store_end_locked(&state, row_id, loc, txn.id().mark());
        Ok(row_id)
    }

    /// Find the visible current version matching `key_col = key`, acquire
    /// its row write lock, and admit the write (first-writer-wins).
    fn current_version(
        &self,
        state: &TableState,
        snap: &Snapshot,
        txn: &Transaction,
        key_col: ColumnId,
        key: &Value,
    ) -> Result<(Loc, RowId, Vec<Value>)> {
        let candidates = self.versions_by_value_locked(state, key_col.idx(), key);
        let mut found: Option<(Loc, RowId, u64, u64, Vec<Value>)> = None;
        for loc in candidates {
            let Some((row_id, begin, end, values)) = self.version_at_locked(state, loc) else {
                continue;
            };
            if version_visible(&self.mgr, snap, begin, end) {
                if found.is_some() {
                    return Err(HanaError::Constraint(format!(
                        "predicate {key} matches more than one visible row in {}",
                        self.schema.name
                    )));
                }
                found = Some((loc, row_id, begin, end, values));
            }
        }
        let Some((loc, row_id, _, _, values)) = found else {
            return Err(HanaError::NotFound(format!(
                "no visible row with {} = {key} in {}",
                self.schema.column(key_col).name,
                self.schema.name
            )));
        };
        self.locks.try_lock(row_id, txn.id())?;
        // Re-read the stamps AFTER taking the row lock: between the
        // visibility check and the lock acquisition another transaction may
        // have closed this version, committed and released its lock.
        // Admitting the write on the stale pre-lock stamps would overwrite
        // that committed deletion (lost update / duplicate visibility).
        let Some((_, begin, end, _)) = self.version_at_locked(state, loc) else {
            return Err(HanaError::WriteConflict(format!(
                "row with {} = {key} moved during lock acquisition",
                self.schema.column(key_col).name
            )));
        };
        match write_allowed(&self.mgr, snap, txn.id(), begin, end) {
            WriteCheck::Ok => Ok((loc, row_id, values)),
            WriteCheck::AlreadyDead => Err(HanaError::NotFound(format!(
                "row with {} = {key} is gone",
                self.schema.column(key_col).name
            ))),
            WriteCheck::ConflictUncommitted(t) => Err(HanaError::WriteConflict(format!(
                "row is being written by {t}"
            ))),
            WriteCheck::ConflictCommitted(ts) => Err(HanaError::WriteConflict(format!(
                "row version committed at {ts}, after this snapshot"
            ))),
        }
    }

    /// Uniqueness check for every unique column of `row`, skipping versions
    /// of `ignore_row` (the row being updated). A *visible* duplicate is a
    /// constraint violation; an uncommitted duplicate by another in-flight
    /// transaction is a (retryable) write conflict.
    fn check_unique(
        &self,
        state: &TableState,
        snap: &Snapshot,
        txn: &Transaction,
        row: &[Value],
        ignore_row: Option<RowId>,
    ) -> Result<()> {
        for col in self.schema.unique_columns() {
            let v = &row[col.idx()];
            for loc in self.versions_by_value_locked(state, col.idx(), v) {
                let Some((row_id, begin, end, _)) = self.version_at_locked(state, loc) else {
                    continue;
                };
                if ignore_row == Some(row_id) {
                    continue;
                }
                if version_visible(&self.mgr, snap, begin, end) {
                    return Err(HanaError::Constraint(format!(
                        "duplicate key {v} for unique column {} of {}",
                        self.schema.column(col).name,
                        self.schema.name
                    )));
                }
                // Not visible — but is it a live insert of another txn?
                if end == COMMIT_TS_MAX {
                    if let Some(writer) = hana_common::TxnId::from_mark(begin) {
                        if writer != txn.id()
                            && matches!(
                                self.mgr.resolve_mark(writer),
                                hana_txn::Resolution::Uncommitted(_)
                            )
                        {
                            return Err(HanaError::WriteConflict(format!(
                                "key {v} is being inserted by {writer}"
                            )));
                        }
                        // Committed after our snapshot: also a conflict under SI.
                        if writer != txn.id() {
                            if let hana_txn::Resolution::Committed(cts) =
                                self.mgr.resolve_mark(writer)
                            {
                                if cts > snap.ts() {
                                    return Err(HanaError::WriteConflict(format!(
                                        "key {v} was inserted at {cts}, after this snapshot"
                                    )));
                                }
                            }
                        }
                    } else if begin > snap.ts() {
                        return Err(HanaError::WriteConflict(format!(
                            "key {v} was inserted at {begin}, after this snapshot"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}
