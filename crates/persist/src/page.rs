//! The page store: fixed-size pages in one data file.
//!
//! The persistence layer "is based on a virtual file concept with visible
//! page limits of configurable size" (§2.2). [`PageStore`] provides the page
//! substrate: allocate, write (with CRC and length header), read, free. The
//! first two pages are reserved as the alternating superblock slots used by
//! the savepoint manifest.

use crate::codec::crc32;
use hana_common::{HanaError, Result};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Default page size in bytes.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Per-page header: payload length (u32) + CRC32 (u32).
const PAGE_HEADER: usize = 8;

/// Identifier of one page within the store's data file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A file of fixed-size, checksummed pages with a free list.
pub struct PageStore {
    file: Mutex<File>,
    page_size: usize,
    next_page: AtomicU64,
    free: Mutex<Vec<PageId>>,
}

impl PageStore {
    /// Open (or create) the page file at `path`.
    pub fn open(path: &Path, page_size: usize) -> Result<Self> {
        assert!(page_size > PAGE_HEADER + 16, "page size too small");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let existing_pages = len.div_ceil(page_size as u64);
        Ok(PageStore {
            file: Mutex::new(file),
            page_size,
            // Pages 0 and 1 are superblock slots.
            next_page: AtomicU64::new(existing_pages.max(2)),
            free: Mutex::new(Vec::new()),
        })
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Usable payload bytes per page.
    pub fn payload_size(&self) -> usize {
        self.page_size - PAGE_HEADER
    }

    /// Number of pages ever allocated (including the superblock slots).
    pub fn allocated_pages(&self) -> u64 {
        self.next_page.load(Ordering::SeqCst)
    }

    /// Allocate a page (reusing freed pages first).
    pub fn alloc(&self) -> PageId {
        if let Some(p) = self.free.lock().pop() {
            return p;
        }
        PageId(self.next_page.fetch_add(1, Ordering::SeqCst))
    }

    /// Return a page to the free list.
    pub fn free(&self, page: PageId) {
        debug_assert!(page.0 >= 2, "superblock pages are never freed");
        self.free.lock().push(page);
    }

    /// Write `payload` (≤ [`payload_size`](Self::payload_size)) to `page`.
    pub fn write_page(&self, page: PageId, payload: &[u8]) -> Result<()> {
        if payload.len() > self.payload_size() {
            return Err(HanaError::Persist(format!(
                "payload of {} bytes exceeds page capacity {}",
                payload.len(),
                self.payload_size()
            )));
        }
        let mut buf = Vec::with_capacity(self.page_size);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&crc32(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf.resize(self.page_size, 0);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(page.0 * self.page_size as u64))?;
        f.write_all(&buf)?;
        Ok(())
    }

    /// Read and verify the payload of `page`.
    pub fn read_page(&self, page: PageId) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; self.page_size];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(page.0 * self.page_size as u64))?;
            f.read_exact(&mut buf)?;
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let stored_crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if len > self.payload_size() {
            return Err(HanaError::Persist(format!(
                "corrupt page {}: bad length",
                page.0
            )));
        }
        let payload = &buf[PAGE_HEADER..PAGE_HEADER + len];
        if crc32(payload) != stored_crc {
            return Err(HanaError::Persist(format!(
                "corrupt page {}: checksum mismatch",
                page.0
            )));
        }
        Ok(payload.to_vec())
    }

    /// Flush all dirty pages to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn store() -> (tempfile::TempDir, PageStore) {
        let dir = tempdir().unwrap();
        let s = PageStore::open(&dir.path().join("data.pages"), 256).unwrap();
        (dir, s)
    }

    #[test]
    fn write_read_round_trip() {
        let (_d, s) = store();
        let p = s.alloc();
        assert!(p.0 >= 2);
        s.write_page(p, b"hello pages").unwrap();
        assert_eq!(s.read_page(p).unwrap(), b"hello pages");
    }

    #[test]
    fn oversized_payload_rejected() {
        let (_d, s) = store();
        let p = s.alloc();
        let big = vec![0u8; s.payload_size() + 1];
        assert!(s.write_page(p, &big).is_err());
        // Exactly full is fine.
        let full = vec![7u8; s.payload_size()];
        s.write_page(p, &full).unwrap();
        assert_eq!(s.read_page(p).unwrap(), full);
    }

    #[test]
    fn free_list_reuses_pages() {
        let (_d, s) = store();
        let a = s.alloc();
        let b = s.alloc();
        assert_ne!(a, b);
        s.free(a);
        assert_eq!(s.alloc(), a);
    }

    #[test]
    fn corruption_detected() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("data.pages");
        let s = PageStore::open(&path, 256).unwrap();
        let p = s.alloc();
        s.write_page(p, b"precious data").unwrap();
        s.sync().unwrap();
        drop(s);
        // Flip a payload byte on disk.
        let mut raw = std::fs::read(&path).unwrap();
        let off = p.0 as usize * 256 + PAGE_HEADER + 2;
        raw[off] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let s = PageStore::open(&path, 256).unwrap();
        let err = s.read_page(p).unwrap_err();
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn reopen_preserves_allocation_frontier() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("data.pages");
        let (a, b);
        {
            let s = PageStore::open(&path, 256).unwrap();
            a = s.alloc();
            b = s.alloc();
            s.write_page(a, b"a").unwrap();
            s.write_page(b, b"b").unwrap();
            s.sync().unwrap();
        }
        let s = PageStore::open(&path, 256).unwrap();
        let c = s.alloc();
        assert!(c > b);
        assert_eq!(s.read_page(a).unwrap(), b"a");
        let _ = c;
    }
}
