//! The SAP-HANA-style **unified table**: one logical table served by three
//! physical representations with asynchronous record propagation.
//!
//! This crate is the paper's primary contribution assembled from the
//! substrate crates:
//!
//! * writes enter the row-format **L1-delta** (`hana-rowstore`);
//! * the background lifecycle merges settled rows into the column-format
//!   **L2-delta** and eventually into the compressed **main**
//!   (`hana-store`, `hana-merge`);
//! * every statement reads through a [`TableRead`] view that pins the
//!   structures + row-count fences it may see, so merges never disturb
//!   running operations (§3.1's non-interference guarantee);
//! * MVCC snapshots and write conflicts come from `hana-txn`; durability
//!   (REDO on first entry, savepoints, recovery) from `hana-persist`;
//! * [`Database`] is the catalog + transaction + persistence façade.
//!
//! ```
//! use hana_core::Database;
//! use hana_common::{ColumnDef, DataType, Schema, TableConfig, Value};
//! use hana_txn::IsolationLevel;
//!
//! let db = Database::in_memory();
//! let schema = Schema::new(
//!     "sales",
//!     vec![
//!         ColumnDef::new("id", DataType::Int).unique(),
//!         ColumnDef::new("city", DataType::Str),
//!     ],
//! )
//! .unwrap();
//! let table = db.create_table(schema, TableConfig::default()).unwrap();
//! let mut txn = db.begin(IsolationLevel::Transaction);
//! table
//!     .insert(&txn, vec![Value::Int(1), Value::str("Los Gatos")])
//!     .unwrap();
//! db.commit(&mut txn).unwrap();
//!
//! let reader = db.begin(IsolationLevel::Transaction);
//! let read = table.read(&reader);
//! let rows = read.point(1, &Value::str("Los Gatos")).unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

pub mod database;
pub mod filter;
pub mod gc;
pub mod governor;
pub mod lifecycle;
pub mod loc;
pub mod partition;
pub mod read;
pub(crate) mod scan;
pub mod scrub;
pub mod snapshot_image;
pub mod table;
pub mod write;

pub use database::Database;
pub use filter::{ColumnPredicate, ScanStats};
pub use gc::{GcShared, GcStats, TableGc};
pub use governor::{ResourceGovernor, ScanPermit};
pub use lifecycle::StageStats;
pub use loc::Loc;
pub use partition::{PartitionedRead, PartitionedTable};
pub use read::{TableRead, VisibleRow};
pub use scrub::Scrubber;
pub use table::UnifiedTable;
