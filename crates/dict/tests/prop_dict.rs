//! Property tests for dictionary invariants.

use hana_common::Value;
use hana_dict::merge::{merge_dicts_filtered, DROPPED};
use hana_dict::{merge_dicts, FrontCodedStrings, GlobalSortedDict, SortedDict, UnsortedDict};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        "[a-e]{0,6}".prop_map(Value::str),
    ]
}

fn int_values() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec((-100i64..100).prop_map(Value::Int), 0..60)
}

proptest! {
    /// Front coding round-trips arbitrary sorted unique string sets and
    /// binary search agrees with the uncompressed slice.
    #[test]
    fn front_coding_round_trip(mut strings in prop::collection::vec("[a-c]{0,12}", 0..80), probe in "[a-c]{0,12}") {
        strings.sort();
        strings.dedup();
        let refs: Vec<&str> = strings.iter().map(String::as_str).collect();
        let fc = FrontCodedStrings::from_sorted(&refs);
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(&fc.get(i), s);
        }
        prop_assert_eq!(fc.binary_search(&probe), strings.binary_search(&probe));
    }

    /// A sorted dictionary built from arbitrary values assigns
    /// order-preserving codes that round-trip.
    #[test]
    fn sorted_dict_round_trip(vals in prop::collection::vec(value_strategy(), 0..60)) {
        let d = SortedDict::from_values(vals.clone());
        let mut uniq: Vec<Value> = vals;
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(d.len(), uniq.len());
        for (i, v) in uniq.iter().enumerate() {
            prop_assert_eq!(d.code_of(v), Some(i as u32));
            prop_assert_eq!(&d.value_of(i as u32), v);
        }
    }

    /// Dictionary merge: the mapping tables always translate old codes to a
    /// new code holding the identical value, regardless of fast path.
    #[test]
    fn merge_maps_preserve_values(main_vals in int_values(), delta_vals in int_values()) {
        let main = SortedDict::from_values(main_vals);
        let mut delta = UnsortedDict::new();
        for v in &delta_vals {
            delta.get_or_insert(v);
        }
        let m = merge_dicts(&main, &delta);
        for c in 0..main.len() as u32 {
            prop_assert_eq!(m.dict.value_of(m.main_map[c as usize]), main.value_of(c));
        }
        for c in 0..delta.len() as u32 {
            prop_assert_eq!(&m.dict.value_of(m.delta_map[c as usize]), delta.value_of(c));
        }
        // Result is sorted unique and exactly the union.
        let got: Vec<Value> = m.dict.iter().collect();
        let mut want: Vec<Value> = main.iter().chain(delta.values().iter().cloned()).collect();
        want.sort();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// Filtered merge: dropped codes map to DROPPED, live codes round-trip,
    /// and the new dictionary contains exactly the live union.
    #[test]
    fn filtered_merge_consistent(
        main_vals in int_values(),
        delta_vals in int_values(),
        seed in any::<u64>(),
    ) {
        let main = SortedDict::from_values(main_vals);
        let mut delta = UnsortedDict::new();
        for v in &delta_vals {
            delta.get_or_insert(v);
        }
        // Deterministic pseudo-random liveness flags.
        let flag = |salt: u64, i: usize| !(seed ^ salt).wrapping_mul(i as u64 + 1).is_multiple_of(3);
        let main_used: Vec<bool> = (0..main.len()).map(|i| flag(1, i)).collect();
        let delta_used: Vec<bool> = (0..delta.len()).map(|i| flag(2, i)).collect();
        let m = merge_dicts_filtered(&main, Some(&main_used), &delta, Some(&delta_used));

        let mut want: Vec<Value> = Vec::new();
        for (c, &used) in main_used.iter().enumerate() {
            if used {
                want.push(main.value_of(c as u32));
            }
        }
        for (c, &used) in delta_used.iter().enumerate() {
            if used {
                want.push(delta.value_of(c as u32).clone());
            }
        }
        want.sort();
        want.dedup();
        let got: Vec<Value> = m.dict.iter().collect();
        prop_assert_eq!(got, want);

        for (c, &used) in main_used.iter().enumerate() {
            if used {
                prop_assert_eq!(m.dict.value_of(m.main_map[c]), main.value_of(c as u32));
            } else {
                prop_assert_eq!(m.main_map[c], DROPPED);
            }
        }
        for (c, &used) in delta_used.iter().enumerate() {
            if used {
                prop_assert_eq!(&m.dict.value_of(m.delta_map[c]), delta.value_of(c as u32));
            } else {
                prop_assert_eq!(m.delta_map[c], DROPPED);
            }
        }
    }

    /// The global sorted dictionary equals sort+dedup over all three stages.
    #[test]
    fn global_dict_is_sorted_union(
        main_vals in int_values(),
        l2_vals in int_values(),
        l1_vals in int_values(),
    ) {
        let main = SortedDict::from_values(main_vals);
        let mut l2 = UnsortedDict::new();
        for v in &l2_vals {
            l2.get_or_insert(v);
        }
        let g = GlobalSortedDict::build(&main, &l2, &l1_vals);
        let mut want: Vec<Value> = main
            .iter()
            .chain(l2.values().iter().cloned())
            .chain(l1_vals.iter().cloned())
            .collect();
        want.sort();
        want.dedup();
        let got: Vec<Value> = g.iter().map(|(v, _)| v.clone()).collect();
        prop_assert_eq!(got, want);
        // Provenance codes must decode to the entry's value.
        for (v, p) in g.iter() {
            if let Some(c) = p.main_code {
                prop_assert_eq!(&main.value_of(c), v);
            }
            if let Some(c) = p.l2_code {
                prop_assert_eq!(l2.value_of(c), v);
            }
        }
    }
}
