//! Chunk planning and visibility resolution for parallel main scans.
//!
//! The main chain is split into fixed-size row chunks (`SCAN_CHUNK_ROWS`)
//! that never cross a part boundary. Workers claim chunks through
//! [`hana_merge::map_indexed`] and the caller reassembles per-chunk output
//! strictly in chunk order, so a parallel scan is bit-identical to the
//! serial one: the chunk boundaries — not the worker count — determine
//! every accumulation order.
//!
//! Per-part visibility is resolved *before* the fan-out into a
//! [`PartVisibility`]: either the wholly-visible summary
//! ([`MainPart::fully_visible_at`](hana_store::MainPart::fully_visible_at))
//! or a shared per-snapshot bitmap, so workers never touch the transaction
//! manager.

use hana_column::Pos;
use hana_store::{MainPart, VisBitmap};
use std::sync::Arc;

/// Rows per scan chunk. Fixed (not derived from the worker count) so the
/// per-chunk partial results — and therefore floating-point accumulation
/// order — are independent of the parallelism degree. Tied to the zone-map
/// granularity so scan chunk `k` of a part is exactly zone `k` of its
/// per-column [`hana_column::ZoneMap`]s.
pub(crate) const SCAN_CHUNK_ROWS: usize = hana_column::ZONE_CHUNK_ROWS;

/// One unit of parallel scan work: a position range within a single part.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScanChunk {
    /// Part index within the main chain.
    pub part: usize,
    /// First row position (inclusive).
    pub start: Pos,
    /// One past the last row position.
    pub end: Pos,
}

/// Split every part of the chain into `SCAN_CHUNK_ROWS`-sized chunks, in
/// chain order.
pub(crate) fn plan_chunks(parts: &[Arc<MainPart>]) -> Vec<ScanChunk> {
    let mut chunks = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        let len = part.len();
        let mut start = 0usize;
        while start < len {
            let end = (start + SCAN_CHUNK_ROWS).min(len);
            chunks.push(ScanChunk {
                part: pi,
                start: start as Pos,
                end: end as Pos,
            });
            start = end;
        }
    }
    chunks
}

/// Split a flat hit list into `SCAN_CHUNK_ROWS`-sized index ranges.
pub(crate) fn plan_ranges(len: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < len {
        let end = (start + SCAN_CHUNK_ROWS).min(len);
        out.push((start, end));
        start = end;
    }
    out
}

/// Resolved visibility of one main part under one snapshot.
pub(crate) enum PartVisibility {
    /// Every row of the part is visible — no per-row checks at all.
    All,
    /// Per-row visibility bitmap (cached on the part when possible).
    Filtered(Arc<VisBitmap>),
}

impl PartVisibility {
    /// Is row `pos` of the part visible?
    #[inline]
    pub fn is_visible(&self, pos: Pos) -> bool {
        match self {
            PartVisibility::All => true,
            PartVisibility::Filtered(b) => b.visible.get(pos as usize),
        }
    }

    /// Visible rows within the whole part (`part_len` = the part's length).
    pub fn visible_rows(&self, part_len: usize) -> usize {
        match self {
            PartVisibility::All => part_len,
            PartVisibility::Filtered(b) => b.visible.count_ones(),
        }
    }

    /// AND a window-relative hit bitmap (bit `k` = part position
    /// `start + k`) against this visibility resolution, word-wise — the
    /// visibility-AND step of a filtered scan. Fully-visible parts cost
    /// nothing; filtered parts resolve 64 rows per instruction instead of a
    /// per-hit branch.
    pub fn mask_hits(&self, hits: &mut hana_column::Bitmap, start: Pos) {
        match self {
            PartVisibility::All => {}
            PartVisibility::Filtered(b) => hits.and_offset(&b.visible, start as usize),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_without_overlap() {
        let r = plan_ranges(SCAN_CHUNK_ROWS * 2 + 5);
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], (0, SCAN_CHUNK_ROWS));
        assert_eq!(r[2], (SCAN_CHUNK_ROWS * 2, SCAN_CHUNK_ROWS * 2 + 5));
        assert!(plan_ranges(0).is_empty());
    }
}
