//! Bit-packed code vectors.
//!
//! The main store keeps each column's dictionary positions "in a bit-packed
//! manner to have a tight packing of the individual values": with `C`
//! distinct values the system spends ⌈ld C⌉ bits per position (paper §4.1).
//! A code may straddle a 64-bit word boundary; `get`/`set` handle the split.
//!
//! The merge "maps the old main values to new dictionary positions (with the
//! same or an increased number of bits)" — [`BitPackedVec::repack`] performs
//! that widening.

use crate::kernel::CodeMatcher;
use crate::{bits_for, Bitmap, Code, Pos};

/// Fixed-width bit-packed vector of dictionary codes.
#[derive(Debug, Clone)]
pub struct BitPackedVec {
    words: Vec<u64>,
    bits: u8,
    len: usize,
}

impl BitPackedVec {
    /// An empty vector storing `bits`-wide codes (1..=32).
    pub fn new(bits: u8) -> Self {
        assert!((1..=32).contains(&bits), "code width {bits} out of range");
        BitPackedVec {
            words: Vec::new(),
            bits,
            len: 0,
        }
    }

    /// Pack a slice, sizing the width from the slice's maximum (or 1 bit if
    /// empty).
    pub fn from_codes(codes: &[Code]) -> Self {
        let bits = bits_for(codes.iter().copied().max().unwrap_or(0));
        let mut v = BitPackedVec::new(bits);
        v.reserve(codes.len());
        for &c in codes {
            v.push(c);
        }
        v
    }

    /// Pack a slice with an explicit width (codes must fit).
    pub fn from_codes_with_bits(codes: &[Code], bits: u8) -> Self {
        let mut v = BitPackedVec::new(bits);
        v.reserve(codes.len());
        for &c in codes {
            v.push(c);
        }
        v
    }

    /// Code width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of codes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum code representable at the current width.
    #[inline]
    pub fn max_code(&self) -> Code {
        if self.bits == 32 {
            Code::MAX
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Reserve space for `additional` more codes.
    pub fn reserve(&mut self, additional: usize) {
        let total_bits = (self.len + additional) * self.bits as usize;
        self.words
            .reserve(total_bits.div_ceil(64).saturating_sub(self.words.len()));
    }

    /// Append a code.
    ///
    /// # Panics
    /// Panics if `code` does not fit the configured width.
    pub fn push(&mut self, code: Code) {
        assert!(
            code <= self.max_code(),
            "code {code} exceeds {} bits",
            self.bits
        );
        let bit = self.len * self.bits as usize;
        let word = bit / 64;
        let off = bit % 64;
        if word >= self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= (code as u64) << off;
        let spill = off + self.bits as usize;
        if spill > 64 {
            self.words.push((code as u64) >> (64 - off));
        }
        self.len += 1;
    }

    /// Read the code at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> Code {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let bit = i * self.bits as usize;
        let word = bit / 64;
        let off = bit % 64;
        let mask = if self.bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.bits) - 1
        };
        let mut v = self.words[word] >> off;
        let taken = 64 - off;
        if taken < self.bits as usize {
            v |= self.words[word + 1] << taken;
        }
        (v & mask) as Code
    }

    /// Overwrite the code at `i` (same width).
    pub fn set(&mut self, i: usize, code: Code) {
        assert!(i < self.len, "index {i} out of bounds");
        assert!(code <= self.max_code());
        let bit = i * self.bits as usize;
        let word = bit / 64;
        let off = bit % 64;
        let mask = if self.bits == 32 {
            u32::MAX as u64
        } else {
            (1u64 << self.bits) - 1
        };
        self.words[word] &= !(mask << off);
        self.words[word] |= (code as u64) << off;
        let taken = 64 - off;
        if taken < self.bits as usize {
            let hi_bits = self.bits as usize - taken;
            let hi_mask = (1u64 << hi_bits) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= (code as u64) >> taken;
        }
    }

    /// Iterate all codes.
    pub fn iter(&self) -> impl Iterator<Item = Code> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Decode positions `[start, start+out.len())` into `out` (block decode
    /// used by the scan kernels; the caller guarantees the range is valid).
    pub fn decode_block(&self, start: usize, out: &mut [Code]) {
        debug_assert!(start + out.len() <= self.len);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.get(start + k);
        }
    }

    /// Re-encode through a mapping table at a (possibly wider) width — the
    /// merge's "same or an increased number of bits" recode step. `map[old]`
    /// yields the new code.
    pub fn repack(&self, map: &[Code], new_bits: u8) -> BitPackedVec {
        let mut out = BitPackedVec::new(new_bits);
        out.reserve(self.len);
        for c in self.iter() {
            out.push(map[c as usize]);
        }
        out
    }

    /// Positions whose code equals `code`.
    pub fn scan_eq(&self, code: Code, out: &mut Vec<Pos>) {
        // Blockwise decode keeps the inner loop branch-light — the shape of
        // the SIMD-scan the paper cites [15], without the intrinsics.
        let mut buf = [0 as Code; 256];
        let mut i = 0;
        while i < self.len {
            let n = (self.len - i).min(256);
            self.decode_block(i, &mut buf[..n]);
            for (k, &c) in buf[..n].iter().enumerate() {
                if c == code {
                    out.push((i + k) as Pos);
                }
            }
            i += n;
        }
    }

    /// Positions whose code lies in `range` (half-open).
    pub fn scan_range(&self, range: std::ops::Range<Code>, out: &mut Vec<Pos>) {
        let mut buf = [0 as Code; 256];
        let mut i = 0;
        while i < self.len {
            let n = (self.len - i).min(256);
            self.decode_block(i, &mut buf[..n]);
            for (k, &c) in buf[..n].iter().enumerate() {
                if range.contains(&c) {
                    out.push((i + k) as Pos);
                }
            }
            i += n;
        }
    }

    /// Compressed-domain filter kernel: set bit `k` of `out` when the code
    /// at position `start + k` (for `k < end - start`) satisfies `m`.
    /// Decodes blockwise like `scan_eq`, never materializing values.
    pub fn filter_range(&self, start: usize, end: usize, m: &CodeMatcher, out: &mut Bitmap) {
        debug_assert!(end <= self.len);
        let mut buf = [0 as Code; 256];
        let mut i = start;
        while i < end {
            let n = (end - i).min(256);
            self.decode_block(i, &mut buf[..n]);
            for (k, &c) in buf[..n].iter().enumerate() {
                if m.matches(c) {
                    out.set(i - start + k);
                }
            }
            i += n;
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_size(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        for bits in [1u8, 3, 7, 8, 13, 16, 31, 32] {
            let max = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            let codes: Vec<Code> = (0..200)
                .map(|i| (i * 2654435761u64 % (max as u64 + 1)) as Code)
                .collect();
            let v = BitPackedVec::from_codes_with_bits(&codes, bits);
            assert_eq!(v.len(), 200);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!(v.get(i), c, "bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn width_straddles_word_boundary() {
        // 13-bit codes guarantee straddles at positions 4, 9, ...
        let codes: Vec<Code> = (0..100).map(|i| (i * 83) % 8192).collect();
        let v = BitPackedVec::from_codes_with_bits(&codes, 13);
        assert_eq!(v.iter().collect::<Vec<_>>(), codes);
    }

    #[test]
    fn from_codes_picks_minimal_width() {
        assert_eq!(BitPackedVec::from_codes(&[0, 1]).bits(), 1);
        assert_eq!(BitPackedVec::from_codes(&[0, 5]).bits(), 3);
        assert_eq!(BitPackedVec::from_codes(&[]).bits(), 1);
        assert_eq!(BitPackedVec::from_codes(&[65535]).bits(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn push_overflow_panics() {
        BitPackedVec::new(3).push(8);
    }

    #[test]
    fn set_rewrites_in_place() {
        let mut v = BitPackedVec::from_codes_with_bits(&[1, 2, 3, 4, 5], 13);
        v.set(2, 8000);
        assert_eq!(v.get(2), 8000);
        assert_eq!(v.get(1), 2);
        assert_eq!(v.get(3), 4);
        // Also across a word boundary.
        v.set(4, 8191);
        assert_eq!(v.get(4), 8191);
    }

    #[test]
    fn repack_widens() {
        let v = BitPackedVec::from_codes(&[0, 1, 2, 3]);
        let map: Vec<Code> = vec![10, 11, 500, 501];
        let w = v.repack(&map, bits_for(501));
        assert_eq!(w.iter().collect::<Vec<_>>(), vec![10, 11, 500, 501]);
        assert!(w.bits() > v.bits());
    }

    #[test]
    fn scan_eq_and_range() {
        let codes: Vec<Code> = (0..1000).map(|i| i % 7).collect();
        let v = BitPackedVec::from_codes(&codes);
        let mut hits = Vec::new();
        v.scan_eq(3, &mut hits);
        assert_eq!(hits.len(), codes.iter().filter(|&&c| c == 3).count());
        assert!(hits.iter().all(|&p| codes[p as usize] == 3));

        let mut range_hits = Vec::new();
        v.scan_range(2..5, &mut range_hits);
        assert_eq!(
            range_hits.len(),
            codes.iter().filter(|&&c| (2..5).contains(&c)).count()
        );
    }

    #[test]
    fn compression_is_real() {
        // 1000 codes over 8 distinct values: 3 bits each ≈ 375 bytes.
        let codes: Vec<Code> = (0..1000).map(|i| i % 8).collect();
        let v = BitPackedVec::from_codes(&codes);
        assert!(v.heap_size() < 1000 * 4 / 8);
    }
}
