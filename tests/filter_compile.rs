//! Compiled code-domain filtering ≡ row-wise value filtering.
//!
//! `TableRead::scan_filtered` compiles each pushed-down conjunct into
//! dictionary codes per storage unit and evaluates it on the compressed
//! vectors, pruning parts/chunks through zone maps first. This suite pins
//! the equivalence against the reference semantics
//! (`ColumnPredicate::matches_value` over a full materialized scan) across
//! all four main encodings, merge-produced partial mains whose code vectors
//! chain earlier dictionaries, MVCC edges (uncommitted marks, aborted
//! writers), zone-map boundary values, and NULL handling on sparse-encoded
//! columns.

use hana_column::Encoding;
use hana_common::{ColumnDef, ColumnId, DataType, HanaError, Schema, TableConfig, Value};
use hana_core::{ColumnPredicate, Database, ScanStats, TableRead, UnifiedTable};
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;
use proptest::prelude::*;
use std::ops::Bound;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("k", DataType::Int).unique(),
            ColumnDef::new("g", DataType::Int),
            ColumnDef::new("v", DataType::Double),
        ],
    )
    .unwrap()
}

fn table() -> (Arc<Database>, Arc<UnifiedTable>) {
    let db = Database::in_memory();
    let mut cfg = TableConfig::small().with_l1_max(8).with_l2_max(24);
    cfg.block_size = 64;
    let t = db.create_table(schema(), cfg).unwrap();
    (db, t)
}

/// Row-wise reference: the conjunction evaluated on materialized values.
fn reference(read: &TableRead, preds: &[ColumnPredicate]) -> Vec<Vec<Value>> {
    read.collect_rows()
        .into_iter()
        .map(|r| r.values)
        .filter(|vals| preds.iter().all(|p| p.matches_value(&vals[p.column()])))
        .collect()
}

/// Assert the compiled scan returns exactly the reference rows, in scan
/// order, and return its stats for further checks.
fn assert_equiv(read: &TableRead, preds: &[ColumnPredicate]) -> ScanStats {
    let (rows, st) = read.scan_filtered(preds, None).unwrap();
    let got: Vec<Vec<Value>> = rows.into_iter().map(|r| r.values).collect();
    assert_eq!(
        got,
        reference(read, preds),
        "compiled ≠ row-wise: {preds:?}"
    );
    st
}

/// A set of predicate shapes exercising every compilation path.
fn probe_predicates(shape_vals: &[i64]) -> Vec<Vec<ColumnPredicate>> {
    let lo = *shape_vals.iter().min().unwrap();
    let hi = *shape_vals.iter().max().unwrap();
    let mid = shape_vals[shape_vals.len() / 2];
    vec![
        vec![ColumnPredicate::Eq(1, Value::Int(mid))],
        vec![ColumnPredicate::Range(
            1,
            Bound::Included(Value::Int(lo)),
            Bound::Excluded(Value::Int(mid.max(lo + 1))),
        )],
        vec![ColumnPredicate::Range(
            1,
            Bound::Excluded(Value::Int(mid)),
            Bound::Unbounded,
        )],
        vec![ColumnPredicate::In(
            1,
            vec![Value::Int(lo), Value::Int(mid), Value::Int(hi), Value::Null],
        )],
        vec![ColumnPredicate::IsNull(1)],
        // Multi-column conjunction: selective key range + group Eq.
        vec![
            ColumnPredicate::Range(
                0,
                Bound::Included(Value::Int(10)),
                Bound::Excluded(Value::Int(600)),
            ),
            ColumnPredicate::Eq(1, Value::Int(mid)),
        ],
        // Provably-empty compilations.
        vec![ColumnPredicate::Eq(1, Value::Int(i64::MAX))],
        vec![ColumnPredicate::Eq(1, Value::Null)],
    ]
}

// ---------------------------------------------------------------------------
// Encoding coverage with chained partial mains.
// ---------------------------------------------------------------------------

fn shape_group(shape: usize, i: i64) -> i64 {
    match shape {
        0 => (i * 7919) % 509, // high entropy → bit-packed
        1 => i / 100,          // sorted runs → RLE
        2 => {
            // dominant value → sparse
            if i % 331 == 0 {
                i
            } else {
                0
            }
        }
        _ => {
            // block-aligned → cluster
            let block = i / 64;
            if block % 4 == 0 {
                block * 2 + (i % 2)
            } else {
                block * 2
            }
        }
    }
}

/// Load rows in two merge batches (Classic then Partial — the second part's
/// codes chain the first part's dictionary through base offsets) plus L2/L1
/// leftovers.
fn load(db: &Arc<Database>, t: &Arc<UnifiedTable>, shape: usize, n: i64) {
    let insert = |lo: i64, hi: i64| {
        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in lo..hi {
            t.insert(
                &txn,
                vec![
                    Value::Int(i),
                    Value::Int(shape_group(shape, i)),
                    Value::double(i as f64 * 0.25),
                ],
            )
            .unwrap();
        }
        db.commit(&mut txn).unwrap();
    };
    insert(0, n / 2);
    t.drain_l1().unwrap();
    t.merge_delta_as(MergeDecision::Classic).unwrap();
    insert(n / 2, n);
    t.drain_l1().unwrap();
    t.merge_delta_as(MergeDecision::Partial).unwrap();
    insert(n, n + 5);
}

#[test]
fn compiled_filters_match_rowwise_across_encodings() {
    let expected = [
        Encoding::BitPacked,
        Encoding::Rle,
        Encoding::Sparse,
        Encoding::Cluster,
    ];
    for (shape, want) in expected.iter().enumerate() {
        let (db, t) = table();
        load(&db, &t, shape, 2048);
        let encodings = t.main_encodings(1);
        assert!(
            encodings.contains(want),
            "shape {shape}: expected {want:?} in {encodings:?}"
        );
        let txn = db.begin(IsolationLevel::Transaction);
        let read = t.read(&txn);
        let vals: Vec<i64> = (0..2048).map(|i| shape_group(shape, i)).collect();
        let mut code_filtered = 0u64;
        for preds in probe_predicates(&vals) {
            code_filtered += assert_equiv(&read, &preds).code_filtered_rows;
        }
        assert!(
            code_filtered > 0,
            "shape {shape}: no row was decided in the code domain"
        );
    }
}

#[test]
fn partial_main_code_offsets_resolve() {
    // Three chained parts: the later parts' code vectors reference earlier
    // dictionaries through per-part base offsets; Eq/Range compilation must
    // honor code validity (a value's code only exists from its owner part
    // on) and per-dictionary range order.
    let (db, t) = table();
    for batch in 0..3i64 {
        let mut txn = db.begin(IsolationLevel::Transaction);
        for i in (batch * 100)..((batch + 1) * 100) {
            t.insert(
                &txn,
                vec![Value::Int(i), Value::Int(i % 7), Value::double(i as f64)],
            )
            .unwrap();
        }
        db.commit(&mut txn).unwrap();
        t.drain_l1().unwrap();
        t.merge_delta_as(if batch == 0 {
            MergeDecision::Classic
        } else {
            MergeDecision::Partial
        })
        .unwrap();
    }
    assert!(t.stage_stats().main_parts >= 2, "no chained parts built");
    let txn = db.begin(IsolationLevel::Transaction);
    let read = t.read(&txn);
    for preds in [
        vec![ColumnPredicate::Eq(0, Value::Int(250))], // owner = last part
        vec![ColumnPredicate::Eq(0, Value::Int(0))],   // owner = first part
        vec![ColumnPredicate::Range(
            0,
            Bound::Included(Value::Int(50)),
            Bound::Excluded(Value::Int(250)),
        )],
        vec![ColumnPredicate::Eq(1, Value::Int(3))],
    ] {
        assert_equiv(&read, &preds);
    }
}

// ---------------------------------------------------------------------------
// MVCC edges: uncommitted marks and aborted writers.
// ---------------------------------------------------------------------------

#[test]
fn mvcc_marks_and_aborts_filtered_consistently() {
    let (db, t) = table();
    load(&db, &t, 1, 512);
    let preds = vec![ColumnPredicate::Range(
        0,
        Bound::Included(Value::Int(0)),
        Bound::Excluded(Value::Int(1000)),
    )];
    // An uncommitted writer deletes a main-resident row, updates another
    // and inserts a fresh one, leaving txn marks in the stamp vectors.
    let w = db.begin(IsolationLevel::Transaction);
    t.delete_where(&w, ColumnId(0), &Value::Int(10)).unwrap();
    t.update_where(
        &w,
        ColumnId(0),
        &Value::Int(20),
        &[(ColumnId(1), Value::Int(-1))],
    )
    .unwrap();
    t.insert(&w, vec![Value::Int(900), Value::Int(9), Value::double(9.0)])
        .unwrap();
    // Own-writes: the writer's compiled scan sees its changes.
    let own = t.read(&w);
    let rows = assert_equiv(&own, &preds);
    assert!(rows.code_filtered_rows > 0);
    let own_keys: Vec<Vec<Value>> = own
        .scan_filtered(&[ColumnPredicate::Eq(0, Value::Int(10))], None)
        .unwrap()
        .0
        .into_iter()
        .map(|r| r.values)
        .collect();
    assert!(own_keys.is_empty(), "own delete not honored");
    // Foreign readers see none of it.
    let other = db.begin(IsolationLevel::Transaction);
    let foreign = t.read(&other);
    assert_equiv(&foreign, &preds);
    assert_eq!(
        foreign
            .scan_filtered(&[ColumnPredicate::Eq(0, Value::Int(10))], None)
            .unwrap()
            .0
            .len(),
        1
    );
    // Aborted: the marks resolve to invisible for everyone.
    let mut w = w;
    w.abort().unwrap();
    let after = db.begin(IsolationLevel::Transaction);
    let read = t.read(&after);
    assert_equiv(&read, &preds);
    assert_eq!(
        read.scan_filtered(&[ColumnPredicate::Eq(0, Value::Int(900))], None)
            .unwrap()
            .0
            .len(),
        0,
        "aborted insert leaked through the compiled scan"
    );
}

// ---------------------------------------------------------------------------
// Zone-map boundaries.
// ---------------------------------------------------------------------------

#[test]
fn zone_map_boundaries_are_inclusive() {
    // One sorted main part of 2 chunks (16Ki rows each, boundary at 16384).
    // Keep the bulk load in L1 (hash-checked uniqueness) until one explicit
    // drain+merge; auto-drains would make every insert probe the L2 delta.
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: usize::MAX / 2,
        l2_max_rows: usize::MAX / 2,
        ..TableConfig::default()
    };
    let t = db.create_table(schema(), cfg).unwrap();
    let mut txn = db.begin(IsolationLevel::Transaction);
    for i in 0..20_000i64 {
        t.insert(
            &txn,
            vec![Value::Int(i), Value::Int(i), Value::double(i as f64)],
        )
        .unwrap();
    }
    db.commit(&mut txn).unwrap();
    t.drain_l1().unwrap();
    t.merge_delta_as(MergeDecision::Classic).unwrap();
    let txn = db.begin(IsolationLevel::Transaction);
    let read = t.read(&txn);
    let chunk = 16 * 1024i64;
    // A chunk's exact min and max must not be pruned away.
    for key in [0, chunk - 1, chunk, 19_999] {
        let st = assert_equiv(&read, &[ColumnPredicate::Eq(0, Value::Int(key))]);
        // The Eq routes through the inverted index, not the kernels.
        assert_eq!(st.index_probes, 1);
        let st = assert_equiv(
            &read,
            &[ColumnPredicate::Range(
                0,
                Bound::Included(Value::Int(key)),
                Bound::Included(Value::Int(key)),
            )],
        );
        assert_eq!(
            st.chunks_pruned, 1,
            "key {key}: expected 1 of 2 chunks pruned"
        );
    }
    // A range spanning the chunk boundary keeps both chunks.
    let st = assert_equiv(
        &read,
        &[ColumnPredicate::Range(
            0,
            Bound::Included(Value::Int(chunk - 1)),
            Bound::Excluded(Value::Int(chunk + 1)),
        )],
    );
    assert_eq!(st.chunks_pruned, 0);
    // Out-of-span ranges prune the whole part.
    let st = assert_equiv(
        &read,
        &[ColumnPredicate::Range(
            0,
            Bound::Included(Value::Int(50_000)),
            Bound::Excluded(Value::Int(60_000)),
        )],
    );
    assert_eq!(st.parts_pruned, 1);
    assert_eq!(st.zone_pruned_rows, 20_000);
    assert_eq!(st.code_filtered_rows, 0);
}

// ---------------------------------------------------------------------------
// NULL semantics on sparse-encoded columns.
// ---------------------------------------------------------------------------

#[test]
fn nulls_on_sparse_columns_never_match_value_filters() {
    // Mostly-NULL group column: the dominant code is the NULL sentinel, so
    // the sparse encoding's *default* is NULL — the exact shape where a
    // compiled range that sloppily included the sentinel would match
    // everything.
    let (db, t) = table();
    let mut txn = db.begin(IsolationLevel::Transaction);
    let n = 2048i64;
    for i in 0..n {
        let g = if i % 331 == 0 {
            Value::Int(i)
        } else {
            Value::Null
        };
        t.insert(&txn, vec![Value::Int(i), g, Value::double(i as f64)])
            .unwrap();
    }
    db.commit(&mut txn).unwrap();
    t.drain_l1().unwrap();
    t.merge_delta_as(MergeDecision::Classic).unwrap();
    assert!(
        t.main_encodings(1).contains(&Encoding::Sparse),
        "mostly-NULL column should be sparse-encoded, got {:?}",
        t.main_encodings(1)
    );
    let txn = db.begin(IsolationLevel::Transaction);
    let read = t.read(&txn);
    let non_null = (0..n).filter(|i| i % 331 == 0).count();
    // IS NULL matches exactly the NULL rows.
    let (rows, _) = read
        .scan_filtered(&[ColumnPredicate::IsNull(1)], None)
        .unwrap();
    assert_eq!(rows.len(), n as usize - non_null);
    // Value filters never match a NULL row, even with unbounded ranges.
    let (rows, _) = read
        .scan_filtered(
            &[ColumnPredicate::Range(
                1,
                Bound::Unbounded,
                Bound::Unbounded,
            )],
            None,
        )
        .unwrap();
    assert_eq!(rows.len(), non_null);
    for preds in [
        vec![ColumnPredicate::Eq(1, Value::Int(0))],
        vec![ColumnPredicate::Eq(1, Value::Int(331))],
        vec![ColumnPredicate::Eq(1, Value::Null)],
        vec![ColumnPredicate::Range(
            1,
            Bound::Included(Value::Int(0)),
            Bound::Unbounded,
        )],
        vec![ColumnPredicate::In(1, vec![Value::Int(662), Value::Null])],
        vec![ColumnPredicate::IsNull(1)],
    ] {
        assert_equiv(&read, &preds);
    }
}

// ---------------------------------------------------------------------------
// Property test: random op streams, random predicates, concurrent writer.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    InsertNull(i64),
    Update(i64, i64),
    Delete(i64),
    MergeL1,
    MergeClassic,
    MergeResort,
    MergePartial,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..48, -20i64..20).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (0i64..48).prop_map(Op::InsertNull),
        3 => (0i64..48, -20i64..20).prop_map(|(k, v)| Op::Update(k, v)),
        2 => (0i64..48).prop_map(Op::Delete),
        1 => Just(Op::MergeL1),
        1 => Just(Op::MergeClassic),
        1 => Just(Op::MergeResort),
        1 => Just(Op::MergePartial),
    ]
}

fn apply(db: &Arc<Database>, t: &Arc<UnifiedTable>, op: &Op) {
    match op {
        Op::Insert(k, _) | Op::InsertNull(k) => {
            let g = match op {
                Op::Insert(_, v) => Value::Int(*v),
                _ => Value::Null,
            };
            let mut txn = db.begin(IsolationLevel::Transaction);
            match t.insert(
                &txn,
                vec![Value::Int(*k), g, Value::double(*k as f64 * 0.5)],
            ) {
                Ok(_) => {
                    db.commit(&mut txn).unwrap();
                }
                Err(HanaError::Constraint(_)) => db.abort(&mut txn).unwrap(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::Update(k, v) => {
            let mut txn = db.begin(IsolationLevel::Transaction);
            match t.update_where(
                &txn,
                ColumnId(0),
                &Value::Int(*k),
                &[(ColumnId(1), Value::Int(*v))],
            ) {
                Ok(_) => {
                    db.commit(&mut txn).unwrap();
                }
                Err(HanaError::NotFound(_)) => db.abort(&mut txn).unwrap(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::Delete(k) => {
            let mut txn = db.begin(IsolationLevel::Transaction);
            match t.delete_where(&txn, ColumnId(0), &Value::Int(*k)) {
                Ok(_) => {
                    db.commit(&mut txn).unwrap();
                }
                Err(HanaError::NotFound(_)) => db.abort(&mut txn).unwrap(),
                Err(e) => panic!("unexpected {e}"),
            }
        }
        Op::MergeL1 => {
            t.drain_l1().unwrap();
        }
        Op::MergeClassic => t.merge_delta_as(MergeDecision::Classic).unwrap(),
        Op::MergeResort => t.merge_delta_as(MergeDecision::ReSorting).unwrap(),
        Op::MergePartial => t.merge_delta_as(MergeDecision::Partial).unwrap(),
    }
}

fn pred_strategy() -> impl Strategy<Value = Vec<ColumnPredicate>> {
    let single = prop_oneof![
        (0usize..2, -25i64..50).prop_map(|(c, v)| ColumnPredicate::Eq(c, Value::Int(v))),
        (0usize..2, -25i64..50, 0i64..30).prop_map(|(c, lo, w)| ColumnPredicate::Range(
            c,
            Bound::Included(Value::Int(lo)),
            Bound::Excluded(Value::Int(lo + w)),
        )),
        (0usize..2, -25i64..50).prop_map(|(c, v)| ColumnPredicate::Range(
            c,
            Bound::Unbounded,
            Bound::Included(Value::Int(v)),
        )),
        (0usize..2, prop::collection::vec(-25i64..50, 0..4)).prop_map(|(c, vs)| {
            ColumnPredicate::In(c, vs.into_iter().map(Value::Int).collect())
        }),
        (0usize..2).prop_map(ColumnPredicate::IsNull),
    ];
    prop::collection::vec(single, 1..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After arbitrary committed op/merge interleavings, the compiled scan
    /// equals the row-wise reference — cold and warm, and under an
    /// uncommitted trailing writer whose marks sit in the stamp vectors.
    #[test]
    fn compiled_scan_equals_rowwise_reference(
        ops in prop::collection::vec(op_strategy(), 1..60),
        preds in pred_strategy(),
        trailing_delete in 0i64..48,
    ) {
        let (db, t) = table();
        for op in &ops {
            apply(&db, &t, op);
        }
        // Cold, then warm (second statement reuses cached vis bitmaps).
        for _ in 0..2 {
            let txn = db.begin(IsolationLevel::Transaction);
            assert_equiv(&t.read(&txn), &preds);
        }
        // Concurrent uncommitted writer: both its own view and a foreign
        // view must stay equivalent.
        let w = db.begin(IsolationLevel::Transaction);
        let _ = t.delete_where(&w, ColumnId(0), &Value::Int(trailing_delete));
        assert_equiv(&t.read(&w), &preds);
        let other = db.begin(IsolationLevel::Transaction);
        assert_equiv(&t.read(&other), &preds);
    }
}
