//! The central transaction manager.

use crate::snapshot::{IsolationLevel, Snapshot};
use hana_common::{HanaError, Result, TableId, Timestamp, TxnId};
use parking_lot::Mutex;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running; its writes are visible only to itself.
    Active,
    /// Committed at a concrete timestamp.
    Committed(Timestamp),
    /// Rolled back; its writes are invisible to everyone.
    Aborted,
}

/// How a marked stamp resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Plain committed timestamp.
    Committed(Timestamp),
    /// Written by a still-running transaction.
    Uncommitted(TxnId),
    /// Written by an aborted transaction.
    Aborted,
}

#[derive(Default)]
struct Inner {
    /// Active transactions → their begin snapshot timestamp.
    active: FxHashMap<u64, Timestamp>,
    /// Commit table: txn id → commit timestamp.
    commits: FxHashMap<u64, Timestamp>,
    /// Aborted transaction ids.
    aborted: FxHashSet<u64>,
    /// Multiset of snapshot timestamps currently pinned by active
    /// transactions (drives the GC watermark).
    pinned: BTreeMap<Timestamp, usize>,
}

/// MVCC transaction manager: clock, active set, commit table, watermark.
pub struct TxnManager {
    /// Commit clock; the value is the timestamp of the latest commit.
    clock: AtomicU64,
    next_txn: AtomicU64,
    inner: Mutex<Inner>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager {
            clock: AtomicU64::new(1),
            next_txn: AtomicU64::new(1),
            inner: Mutex::new(Inner::default()),
        }
    }
}

impl TxnManager {
    /// A fresh manager with clock at 1.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Current value of the commit clock.
    pub fn now(&self) -> Timestamp {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advance the clock to at least `ts` (used by recovery to resume past
    /// the highest replayed commit timestamp).
    pub fn advance_clock_to(&self, ts: Timestamp) {
        self.clock.fetch_max(ts, Ordering::SeqCst);
    }

    /// Begin a transaction under the given isolation level.
    pub fn begin(self: &Arc<Self>, level: IsolationLevel) -> Transaction {
        let id = self.next_txn.fetch_add(1, Ordering::SeqCst);
        let begin_ts = self.now();
        {
            let mut inner = self.inner.lock();
            inner.active.insert(id, begin_ts);
            *inner.pinned.entry(begin_ts).or_insert(0) += 1;
        }
        Transaction {
            mgr: Arc::clone(self),
            id: TxnId(id),
            begin_ts,
            level,
            finished: false,
            touched: Mutex::new(Vec::new()),
        }
    }

    /// Commit `txn`, returning its commit timestamp.
    ///
    /// Ordering matters for snapshot stability: the commit-table entry must
    /// be visible *before* the clock reaches `cts`. Otherwise a reader whose
    /// snapshot equals `cts` could resolve one of the transaction's marks as
    /// "uncommitted" (old version still live) and, a moment later, another
    /// as "committed at cts ≤ ts" (new version visible) — seeing both
    /// versions of one record. Publishing the entry under the lock and only
    /// then advancing the clock makes the transition atomic for readers.
    pub fn commit(&self, txn: &mut Transaction) -> Result<Timestamp> {
        if txn.finished {
            return Err(HanaError::Txn(format!("{} already finished", txn.id)));
        }
        let mut inner = self.inner.lock();
        let cts = self.clock.load(Ordering::SeqCst) + 1;
        inner.active.remove(&txn.id.0);
        inner.commits.insert(txn.id.0, cts);
        Self::unpin(&mut inner, txn.begin_ts);
        // Clock advance last, still under the lock (serializes cts values).
        self.clock.store(cts, Ordering::SeqCst);
        drop(inner);
        txn.finished = true;
        Ok(cts)
    }

    /// Abort `txn`; its stamps resolve to [`Resolution::Aborted`] from now on.
    pub fn abort(&self, txn: &mut Transaction) -> Result<()> {
        if txn.finished {
            return Err(HanaError::Txn(format!("{} already finished", txn.id)));
        }
        let mut inner = self.inner.lock();
        inner.active.remove(&txn.id.0);
        inner.aborted.insert(txn.id.0);
        Self::unpin(&mut inner, txn.begin_ts);
        txn.finished = true;
        Ok(())
    }

    fn unpin(inner: &mut Inner, ts: Timestamp) {
        if let Some(n) = inner.pinned.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                inner.pinned.remove(&ts);
            }
        }
    }

    /// Resolve a transaction's state.
    pub fn state_of(&self, txn: TxnId) -> TxnState {
        let inner = self.inner.lock();
        if inner.active.contains_key(&txn.0) {
            TxnState::Active
        } else if let Some(&cts) = inner.commits.get(&txn.0) {
            TxnState::Committed(cts)
        } else if inner.aborted.contains(&txn.0) {
            TxnState::Aborted
        } else {
            // Unknown ids are treated as aborted: they can only come from
            // stamps of a crashed, never-committed writer.
            TxnState::Aborted
        }
    }

    /// Resolve a begin/end stamp that carries the [`TXN_MARK`] bit.
    ///
    /// [`TXN_MARK`]: hana_common::TXN_MARK
    pub fn resolve_mark(&self, txn: TxnId) -> Resolution {
        match self.state_of(txn) {
            TxnState::Active => Resolution::Uncommitted(txn),
            TxnState::Committed(ts) => Resolution::Committed(ts),
            TxnState::Aborted => Resolution::Aborted,
        }
    }

    /// The oldest snapshot timestamp still pinned by an active transaction,
    /// or the current clock when none are active. Versions that ended before
    /// this watermark can never be seen again and may be garbage-collected
    /// by a merge.
    pub fn watermark(&self) -> Timestamp {
        let inner = self.inner.lock();
        inner
            .pinned
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.now())
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.inner.lock().active.len()
    }

    /// `(commit-table entries, aborted-set entries)` — the finished-txn
    /// bookkeeping that [`trim_finished`](Self::trim_finished) bounds.
    pub fn finished_counts(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.commits.len(), inner.aborted.len())
    }

    /// Drop finished-transaction bookkeeping that no stamp can need anymore.
    ///
    /// The GC calls this after a mark-resolution sweep:
    ///
    /// * `referenced` — txn ids still carried by *some* unresolved mark in
    ///   any store; their entries must survive.
    /// * `committed_before` — only commit entries with `cts <=
    ///   committed_before` are candidates. The caller passes a timestamp
    ///   captured *before* its sweep started, so any transaction that
    ///   committed mid-sweep (and whose fresh marks the sweep may have
    ///   missed) stays resolvable.
    /// * `approved` — the candidate set the *previous* cycle returned.
    ///   An entry is removed only when it was already a candidate last
    ///   cycle and still is (two-cycle deferral: a reader that loaded a
    ///   mark just before last cycle's sweep rewrote it has long finished
    ///   resolving by the time the entry is actually dropped).
    ///
    /// Unreferenced *aborted* ids are removed immediately: an unknown id
    /// resolves to `Aborted` anyway, so dropping the entry never changes a
    /// resolution. Returns `(entries removed, candidates for next cycle)`.
    pub fn trim_finished(
        &self,
        referenced: &FxHashSet<u64>,
        committed_before: Timestamp,
        approved: &FxHashSet<u64>,
    ) -> (usize, FxHashSet<u64>) {
        let mut inner = self.inner.lock();
        let before = inner.commits.len() + inner.aborted.len();
        inner.aborted.retain(|id| referenced.contains(id));
        let candidates: FxHashSet<u64> = inner
            .commits
            .iter()
            .filter(|(id, &cts)| cts <= committed_before && !referenced.contains(*id))
            .map(|(&id, _)| id)
            .collect();
        inner
            .commits
            .retain(|id, _| !(candidates.contains(id) && approved.contains(id)));
        let removed = before - (inner.commits.len() + inner.aborted.len());
        (removed, candidates)
    }
}

/// A client transaction handle.
///
/// Dropping an unfinished transaction aborts it (write safety by default).
pub struct Transaction {
    mgr: Arc<TxnManager>,
    id: TxnId,
    begin_ts: Timestamp,
    level: IsolationLevel,
    finished: bool,
    /// Tables this transaction wrote (or locked rows in), recorded by the
    /// storage layer so commit/abort visit only these instead of the whole
    /// catalog. Interior mutability: write paths hold `&Transaction`.
    touched: Mutex<Vec<TableId>>,
}

impl Transaction {
    /// This transaction's id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The snapshot timestamp taken at begin.
    pub fn begin_ts(&self) -> Timestamp {
        self.begin_ts
    }

    /// The isolation level.
    pub fn level(&self) -> IsolationLevel {
        self.level
    }

    /// True once committed or aborted.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The snapshot a new statement should read under.
    ///
    /// Transaction-level SI always returns the begin snapshot; statement-
    /// level SI returns a fresh snapshot at the current clock, seeing all
    /// commits so far.
    pub fn read_snapshot(&self) -> Snapshot {
        let ts = match self.level {
            IsolationLevel::Transaction => self.begin_ts,
            IsolationLevel::Statement => self.mgr.now(),
        };
        Snapshot::for_txn(ts, self.id)
    }

    /// Record that this transaction touched `table` (wrote a row or
    /// acquired a row lock there). Idempotent; the set stays tiny for OLTP
    /// transactions, so a linear dedup beats hashing.
    pub fn note_table(&self, table: TableId) {
        let mut touched = self.touched.lock();
        if !touched.contains(&table) {
            touched.push(table);
        }
    }

    /// The tables recorded by [`note_table`](Self::note_table), in first-
    /// touch order.
    pub fn touched_tables(&self) -> Vec<TableId> {
        self.touched.lock().clone()
    }

    /// Commit via the owning manager.
    pub fn commit(&mut self) -> Result<Timestamp> {
        let mgr = Arc::clone(&self.mgr);
        mgr.commit(self)
    }

    /// Abort via the owning manager.
    pub fn abort(&mut self) -> Result<()> {
        let mgr = Arc::clone(&self.mgr);
        mgr.abort(self)
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.abort();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_advances_clock_and_commit_table() {
        let mgr = TxnManager::new();
        let t0 = mgr.now();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        let id = txn.id();
        assert_eq!(mgr.state_of(id), TxnState::Active);
        let cts = txn.commit().unwrap();
        assert!(cts > t0);
        assert_eq!(mgr.now(), cts);
        assert_eq!(mgr.state_of(id), TxnState::Committed(cts));
        assert_eq!(mgr.resolve_mark(id), Resolution::Committed(cts));
    }

    #[test]
    fn abort_is_remembered() {
        let mgr = TxnManager::new();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        let id = txn.id();
        txn.abort().unwrap();
        assert_eq!(mgr.state_of(id), TxnState::Aborted);
        assert_eq!(mgr.resolve_mark(id), Resolution::Aborted);
    }

    #[test]
    fn double_finish_rejected() {
        let mgr = TxnManager::new();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        txn.commit().unwrap();
        assert!(txn.commit().is_err());
        assert!(txn.abort().is_err());
    }

    #[test]
    fn drop_aborts() {
        let mgr = TxnManager::new();
        let id = {
            let txn = mgr.begin(IsolationLevel::Transaction);
            txn.id()
        };
        assert_eq!(mgr.state_of(id), TxnState::Aborted);
        assert_eq!(mgr.active_count(), 0);
    }

    #[test]
    fn unknown_txn_resolves_aborted() {
        let mgr = TxnManager::new();
        assert_eq!(mgr.state_of(TxnId(999)), TxnState::Aborted);
    }

    #[test]
    fn statement_si_sees_later_commits_transaction_si_does_not() {
        let mgr = TxnManager::new();
        let stmt_txn = mgr.begin(IsolationLevel::Statement);
        let txn_txn = mgr.begin(IsolationLevel::Transaction);
        let snap_before_t = txn_txn.read_snapshot();
        let snap_before_s = stmt_txn.read_snapshot();
        // A third transaction commits in between.
        let mut writer = mgr.begin(IsolationLevel::Transaction);
        let cts = writer.commit().unwrap();
        let snap_after_t = txn_txn.read_snapshot();
        let snap_after_s = stmt_txn.read_snapshot();
        // Transaction-level snapshots are frozen.
        assert_eq!(snap_before_t.ts(), snap_after_t.ts());
        assert!(snap_after_t.ts() < cts);
        // Statement-level snapshots advance.
        assert!(snap_after_s.ts() >= cts);
        assert!(snap_before_s.ts() < snap_after_s.ts());
    }

    #[test]
    fn watermark_tracks_oldest_active() {
        let mgr = TxnManager::new();
        let old = mgr.begin(IsolationLevel::Transaction);
        let w0 = mgr.watermark();
        assert_eq!(w0, old.begin_ts());
        // New commits move the clock but not the watermark.
        let mut w = mgr.begin(IsolationLevel::Transaction);
        w.commit().unwrap();
        assert_eq!(mgr.watermark(), w0);
        drop(old);
        // With nothing active, watermark follows the clock.
        assert_eq!(mgr.watermark(), mgr.now());
    }

    #[test]
    fn touched_tables_dedup_in_touch_order() {
        let mgr = TxnManager::new();
        let txn = mgr.begin(IsolationLevel::Transaction);
        assert!(txn.touched_tables().is_empty());
        txn.note_table(TableId(3));
        txn.note_table(TableId(1));
        txn.note_table(TableId(3));
        assert_eq!(txn.touched_tables(), vec![TableId(3), TableId(1)]);
    }

    #[test]
    fn advance_clock_for_recovery() {
        let mgr = TxnManager::new();
        mgr.advance_clock_to(500);
        assert_eq!(mgr.now(), 500);
        mgr.advance_clock_to(100); // never goes backwards
        assert_eq!(mgr.now(), 500);
    }
}
