//! Property test: the unified table behaves exactly like a trivial
//! in-memory model under arbitrary committed operation sequences with
//! merges injected at arbitrary points.

use hana_common::{ColumnDef, ColumnId, DataType, HanaError, Schema, TableConfig, Value};
use hana_core::Database;
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
    MergeL1,
    MergeClassic,
    MergeResort,
    MergePartial,
    Savepoint, // only used in the durable variant
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..40, any::<i64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        3 => (0i64..40, any::<i64>()).prop_map(|(k, v)| Op::Update(k, v)),
        2 => (0i64..40).prop_map(Op::Delete),
        1 => Just(Op::MergeL1),
        1 => Just(Op::MergeClassic),
        1 => Just(Op::MergeResort),
        1 => Just(Op::MergePartial),
    ]
}

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("k", DataType::Int).unique(),
            ColumnDef::new("v", DataType::Int),
        ],
    )
    .unwrap()
}

fn apply_ops(
    db: &std::sync::Arc<Database>,
    t: &std::sync::Arc<hana_core::UnifiedTable>,
    model: &mut BTreeMap<i64, i64>,
    ops: &[Op],
) {
    for op in ops {
        match op {
            Op::Insert(k, v) => {
                let mut txn = db.begin(IsolationLevel::Transaction);
                match t.insert(&txn, vec![Value::Int(*k), Value::Int(*v)]) {
                    Ok(_) => {
                        assert!(!model.contains_key(k), "insert succeeded on live key {k}");
                        db.commit(&mut txn).unwrap();
                        model.insert(*k, *v);
                    }
                    Err(HanaError::Constraint(_)) => {
                        assert!(model.contains_key(k), "constraint on free key {k}");
                        db.abort(&mut txn).unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            Op::Update(k, v) => {
                let mut txn = db.begin(IsolationLevel::Transaction);
                match t.update_where(
                    &txn,
                    ColumnId(0),
                    &Value::Int(*k),
                    &[(ColumnId(1), Value::Int(*v))],
                ) {
                    Ok(_) => {
                        assert!(model.contains_key(k));
                        db.commit(&mut txn).unwrap();
                        model.insert(*k, *v);
                    }
                    Err(HanaError::NotFound(_)) => {
                        assert!(!model.contains_key(k));
                        db.abort(&mut txn).unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            Op::Delete(k) => {
                let mut txn = db.begin(IsolationLevel::Transaction);
                match t.delete_where(&txn, ColumnId(0), &Value::Int(*k)) {
                    Ok(_) => {
                        assert!(model.contains_key(k));
                        db.commit(&mut txn).unwrap();
                        model.remove(k);
                    }
                    Err(HanaError::NotFound(_)) => {
                        assert!(!model.contains_key(k));
                        db.abort(&mut txn).unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            Op::MergeL1 => {
                t.drain_l1().unwrap();
            }
            Op::MergeClassic => t.merge_delta_as(MergeDecision::Classic).unwrap(),
            Op::MergeResort => t.merge_delta_as(MergeDecision::ReSorting).unwrap(),
            Op::MergePartial => t.merge_delta_as(MergeDecision::Partial).unwrap(),
            Op::Savepoint => {
                let _ = db.savepoint();
            }
        }
    }
}

fn check_equiv(
    db: &std::sync::Arc<Database>,
    t: &std::sync::Arc<hana_core::UnifiedTable>,
    model: &BTreeMap<i64, i64>,
) {
    let r = db.begin(IsolationLevel::Transaction);
    let read = t.read(&r);
    let mut got: BTreeMap<i64, i64> = BTreeMap::new();
    read.for_each_visible(|row| {
        let k = row.values[0].as_int().unwrap();
        let v = row.values[1].as_int().unwrap();
        assert!(got.insert(k, v).is_none(), "key {k} visible twice");
    });
    assert_eq!(&got, model);
    // Point queries agree per key.
    for (k, v) in model {
        let rows = read.point(0, &Value::Int(*k)).unwrap();
        assert_eq!(rows.len(), 1, "key {k}");
        assert_eq!(rows[0][1], Value::Int(*v));
    }
}

/// One writer's op against its private key range (no cross-writer
/// conflicts, so each thread's outcome is deterministic against its own
/// shadow model even while merges race).
#[derive(Debug, Clone)]
enum WOp {
    Insert(i64, i64),
    Update(i64, i64),
    Delete(i64),
}

fn wop_strategy() -> impl Strategy<Value = WOp> {
    prop_oneof![
        4 => (0i64..24, any::<i64>()).prop_map(|(k, v)| WOp::Insert(k, v)),
        3 => (0i64..24, any::<i64>()).prop_map(|(k, v)| WOp::Update(k, v)),
        2 => (0i64..24).prop_map(WOp::Delete),
    ]
}

/// Shape raw values so the cost-based chooser exercises all four main
/// encodings across cases: 0 → high-entropy (BitPacked), 1 → tiny domain
/// (Rle), 2 → dominant-with-exceptions (Sparse), 3 → blocky (Cluster).
fn shape_value(profile: usize, key: i64, raw: i64) -> i64 {
    match profile {
        0 => raw,
        1 => key.rem_euclid(3),
        2 => {
            if raw.rem_euclid(10) == 0 {
                raw
            } else {
                7
            }
        }
        _ => key / 8,
    }
}

fn apply_writer_stream(
    db: &std::sync::Arc<Database>,
    t: &std::sync::Arc<hana_core::UnifiedTable>,
    base: i64,
    profile: usize,
    ops: &[WOp],
) -> BTreeMap<i64, i64> {
    let mut shadow = BTreeMap::new();
    for op in ops {
        match op {
            WOp::Insert(k, v) => {
                let (k, v) = (base + k, shape_value(profile, base + k, *v));
                let mut txn = db.begin(IsolationLevel::Transaction);
                match t.insert(&txn, vec![Value::Int(k), Value::Int(v)]) {
                    Ok(_) => {
                        assert!(!shadow.contains_key(&k), "insert succeeded on live key {k}");
                        db.commit(&mut txn).unwrap();
                        shadow.insert(k, v);
                    }
                    Err(HanaError::Constraint(_)) => {
                        assert!(shadow.contains_key(&k), "constraint on free key {k}");
                        db.abort(&mut txn).unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            WOp::Update(k, v) => {
                let (k, v) = (base + k, shape_value(profile, base + k, *v));
                let mut txn = db.begin(IsolationLevel::Transaction);
                match t.update_where(
                    &txn,
                    ColumnId(0),
                    &Value::Int(k),
                    &[(ColumnId(1), Value::Int(v))],
                ) {
                    Ok(_) => {
                        assert!(shadow.contains_key(&k));
                        db.commit(&mut txn).unwrap();
                        shadow.insert(k, v);
                    }
                    Err(HanaError::NotFound(_)) => {
                        assert!(!shadow.contains_key(&k));
                        db.abort(&mut txn).unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            WOp::Delete(k) => {
                let k = base + k;
                let mut txn = db.begin(IsolationLevel::Transaction);
                match t.delete_where(&txn, ColumnId(0), &Value::Int(k)) {
                    Ok(_) => {
                        assert!(shadow.contains_key(&k));
                        db.commit(&mut txn).unwrap();
                        shadow.remove(&k);
                    }
                    Err(HanaError::NotFound(_)) => {
                        assert!(!shadow.contains_key(&k));
                        db.abort(&mut txn).unwrap();
                    }
                    Err(e) => panic!("unexpected {e}"),
                }
            }
        }
    }
    shadow
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// In-memory table ≡ model under random op/merge interleavings.
    #[test]
    fn unified_table_matches_model(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let db = Database::in_memory();
        let t = db
            .create_table(schema(), TableConfig::small().with_l1_max(8).with_l2_max(24))
            .unwrap();
        let mut model = BTreeMap::new();
        apply_ops(&db, &t, &mut model, &ops);
        check_equiv(&db, &t, &model);
    }

    /// Durable table ≡ model, including a crash-recovery at the end and
    /// savepoints injected mid-stream.
    #[test]
    fn durable_table_matches_model_after_recovery(
        mut ops in prop::collection::vec(op_strategy(), 1..60),
        savepoint_at in 0usize..60,
    ) {
        if savepoint_at < ops.len() {
            ops.insert(savepoint_at, Op::Savepoint);
        }
        let dir = tempfile::tempdir().unwrap();
        let mut model = BTreeMap::new();
        {
            let db = Database::open(dir.path()).unwrap();
            let t = db
                .create_table(schema(), TableConfig::small().with_l1_max(8).with_l2_max(24))
                .unwrap();
            apply_ops(&db, &t, &mut model, &ops);
            check_equiv(&db, &t, &model);
            // "Crash": drop without clean shutdown.
        }
        let db = Database::open(dir.path()).unwrap();
        let t = db.table("t").unwrap();
        check_equiv(&db, &t, &model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent writer streams ≡ serial shadow while a merge thread
    /// hammers the non-blocking L1→L2 publication and delta-to-main swaps
    /// underneath them. Writers own disjoint key ranges, so each stream's
    /// serial shadow is deterministic; the union of shadows must equal the
    /// final table — writes racing the publication swap land in the
    /// still-open L1 and are reconciled through the pending-ends queue +
    /// re-read anchor. `profile` shapes values so the main build exercises
    /// all four encodings across cases (BitPacked/Rle/Sparse/Cluster).
    #[test]
    fn concurrent_writers_match_serial_shadow(
        s0 in prop::collection::vec(wop_strategy(), 1..50),
        s1 in prop::collection::vec(wop_strategy(), 1..50),
        s2 in prop::collection::vec(wop_strategy(), 1..50),
        profile in 0usize..4,
    ) {
        let db = Database::in_memory();
        let t = db
            .create_table(schema(), TableConfig::small().with_l1_max(8).with_l2_max(24))
            .unwrap();
        let streams = [s0, s1, s2];
        let done = std::sync::atomic::AtomicUsize::new(0);
        let shadows: Vec<BTreeMap<i64, i64>> = std::thread::scope(|scope| {
            // The merge thread: continuous L1→L2 drains and delta merges.
            // Retryable outcomes (in-flight stamps, a generation handoff
            // abandoning a copy) are expected under race; anything else is
            // a real bug.
            let mh = {
                let t = std::sync::Arc::clone(&t);
                let done = &done;
                scope.spawn(move || {
                    let mut k = 0usize;
                    while done.load(std::sync::atomic::Ordering::Relaxed) < 3 {
                        if let Err(e) = t.drain_l1() {
                            assert!(e.is_retryable(), "L1 merge failed hard: {e}");
                        }
                        let decision = match k % 3 {
                            0 => MergeDecision::Classic,
                            1 => MergeDecision::ReSorting,
                            _ => MergeDecision::Partial,
                        };
                        k += 1;
                        if let Err(e) = t.merge_delta_as(decision) {
                            assert!(e.is_retryable(), "delta merge failed hard: {e}");
                        }
                    }
                })
            };
            let handles: Vec<_> = streams
                .iter()
                .enumerate()
                .map(|(w, ops)| {
                    let db = std::sync::Arc::clone(&db);
                    let t = std::sync::Arc::clone(&t);
                    let done = &done;
                    scope.spawn(move || {
                        let shadow = apply_writer_stream(&db, &t, w as i64 * 100, profile, ops);
                        done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        shadow
                    })
                })
                .collect();
            let shadows = handles.into_iter().map(|h| h.join().unwrap()).collect();
            mh.join().unwrap();
            shadows
        });
        let mut model = BTreeMap::new();
        for s in shadows {
            model.extend(s);
        }
        check_equiv(&db, &t, &model);
        // Settle everything into a fresh main and re-verify: the final
        // image after publication must agree with the shadow too.
        t.force_full_merge().unwrap();
        check_equiv(&db, &t, &model);
    }
}
