//! The unified table structure: state, construction, low-level accessors.
//!
//! The write paths live in [`crate::write`], the read views in
//! [`crate::read`], the record-lifecycle machinery in [`crate::lifecycle`],
//! and savepoint image conversion in [`crate::snapshot_image`].
//!
//! ## Locking protocol
//!
//! * `fence` (database-wide): writers shared, savepoint exclusive — the
//!   savepoint must see no write between image building and log truncation.
//! * `state`: writers and readers take it shared for the duration of one
//!   operation / view capture; merge *publications* take it exclusively for
//!   a constant-time window (pointer swap + bounded reconciliation — never
//!   per-column or per-row-set work). Both the delta-to-main build and the
//!   L1→L2 copy stream run without any lock: the former against a frozen
//!   L2 + immutable main, the latter against an L1 snapshot and the open
//!   L2's unpublished tail.
//! * End-stamp writes that land in the frozen L2 or the main while a
//!   delta-to-main merge is building are recorded in `pending_ends`; the
//!   merge drains them off-line against the finished build and re-applies
//!   only the residue at publication — no deletion can be lost to the
//!   structure swap. End stamps landing in L1 slots while an L1→L2 copy
//!   runs are likewise queued in `pending_l1_ends` and, as the correctness
//!   anchor, every moved slot's end stamp is re-read under the exclusive
//!   lock before the publication (writers stamp ends inside `state.read()`
//!   sections, so those stores happen-before our `state.write()`).
//! * `l1_merge_lock` serializes L1→L2 merges against each other and against
//!   bulk loads (the only two producers of open-L2 rows); it is *not* held
//!   across the delta-to-main merge, which instead hands the open L2 off by
//!   generation: freezing swaps in a new open L2, and an in-flight L1→L2
//!   run detects the generation change at publication time and abandons
//!   (its unpublished appends die with the frozen L2 once merged away).
//!
//! Lock order: `fence` → `l1_merge_lock`/`delta_merge_lock` → `state` →
//! store internals. Never acquire `state` twice on one call path.

use crate::loc::Loc;
use hana_common::{Result, RowId, Schema, TableConfig, TableId, Timestamp, Value};
use hana_persist::Persistence;
use hana_rowstore::L1Delta;
use hana_store::{HistoryStore, L2Delta, MainStore};
use hana_txn::{LockTable, TxnManager};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Structure versions guarded by the state lock.
pub(crate) struct TableState {
    /// The open L2-delta accepting the L1 merge stream and bulk loads.
    pub l2: Arc<L2Delta>,
    /// A closed L2-delta currently being merged into the main, if any.
    pub l2_frozen: Option<Arc<L2Delta>>,
    /// The main chain.
    pub main: Arc<MainStore>,
}

/// One table of the database, managed through the record life cycle.
pub struct UnifiedTable {
    pub(crate) id: TableId,
    pub(crate) schema: Schema,
    pub(crate) config: TableConfig,
    pub(crate) mgr: Arc<TxnManager>,
    pub(crate) persist: Option<Arc<Persistence>>,
    pub(crate) fence: Arc<RwLock<()>>,
    pub(crate) l1: L1Delta,
    pub(crate) state: RwLock<TableState>,
    pub(crate) locks: LockTable,
    pub(crate) history: Option<HistoryStore>,
    pub(crate) next_row_id: AtomicU64,
    pub(crate) next_gen: AtomicU64,
    /// Serializes L1→L2 merges.
    pub(crate) l1_merge_lock: Mutex<()>,
    /// Serializes delta-to-main merges.
    pub(crate) delta_merge_lock: Mutex<()>,
    /// True while a delta-to-main merge is building its new main.
    pub(crate) delta_merge_running: AtomicBool,
    /// End-stamp writes raced against the running merge (see module docs).
    pub(crate) pending_ends: Mutex<Vec<(RowId, Timestamp)>>,
    /// True while an L1→L2 merge is copying its snapshot off-lock.
    pub(crate) l1_merge_running: AtomicBool,
    /// `(L1 logical position, end stamp)` writes raced against the running
    /// L1→L2 copy (fast-path queue; see module docs).
    pub(crate) pending_l1_ends: Mutex<Vec<(u64, Timestamp)>>,
    /// Metrics of the most recent delta-to-main merge.
    pub(crate) last_merge_metrics: Mutex<Option<hana_merge::MergeMetrics>>,
    /// Longest time any merge held the writers' `state` lock exclusively
    /// (ns) — the F7c "writer-observed stall" instrument: on the
    /// non-blocking protocol this stays constant-time regardless of table
    /// size.
    pub(crate) publication_stall_ns: AtomicU64,
    /// Sum + count of those exclusive holds, for a preemption-robust mean
    /// (a single mid-hold descheduling inflates the max by a scheduler
    /// quantum on small machines).
    pub(crate) publication_stall_total_ns: AtomicU64,
    pub(crate) publication_stall_events: AtomicU64,
    /// Background-GC bookkeeping (watermark of the last cycle, per-part
    /// end-version highwater) — see [`crate::gc`].
    pub(crate) gc_state: Mutex<crate::gc::TableGcState>,
    /// Database-wide interference governor (admission, fan-out clamping,
    /// commit priority) — see [`crate::governor`]. Standalone tables get
    /// a private governor with the default configuration.
    pub(crate) governor: Arc<crate::governor::ResourceGovernor>,
}

impl UnifiedTable {
    /// Create an empty table (used by [`crate::database::Database`]; tests
    /// may call it directly for a standalone table).
    pub fn create(
        id: TableId,
        schema: Schema,
        config: TableConfig,
        mgr: Arc<TxnManager>,
        persist: Option<Arc<Persistence>>,
        fence: Arc<RwLock<()>>,
        governor: Arc<crate::governor::ResourceGovernor>,
    ) -> Arc<Self> {
        let l2 = Arc::new(L2Delta::new(schema.clone(), 0));
        Arc::new(UnifiedTable {
            id,
            history: config.historic.then(HistoryStore::new),
            schema: schema.clone(),
            config,
            mgr,
            persist,
            fence,
            l1: L1Delta::new(),
            state: RwLock::new(TableState {
                l2,
                l2_frozen: None,
                main: Arc::new(MainStore::empty(schema)),
            }),
            locks: LockTable::new(),
            next_row_id: AtomicU64::new(0),
            next_gen: AtomicU64::new(1),
            l1_merge_lock: Mutex::new(()),
            delta_merge_lock: Mutex::new(()),
            delta_merge_running: AtomicBool::new(false),
            pending_ends: Mutex::new(Vec::new()),
            l1_merge_running: AtomicBool::new(false),
            pending_l1_ends: Mutex::new(Vec::new()),
            last_merge_metrics: Mutex::new(None),
            publication_stall_ns: AtomicU64::new(0),
            publication_stall_total_ns: AtomicU64::new(0),
            publication_stall_events: AtomicU64::new(0),
            gc_state: Mutex::new(crate::gc::TableGcState::default()),
            governor,
        })
    }

    /// A standalone in-memory table with its own fence and a private
    /// default-configured governor (convenience for tests and benches).
    pub fn standalone(schema: Schema, config: TableConfig, mgr: Arc<TxnManager>) -> Arc<Self> {
        Self::create(
            TableId(0),
            schema,
            config,
            mgr,
            None,
            Arc::new(RwLock::new(())),
            crate::governor::ResourceGovernor::new(hana_common::GovernorConfig::default()),
        )
    }

    /// The interference governor this table schedules its scans through.
    pub fn governor(&self) -> &Arc<crate::governor::ResourceGovernor> {
        &self.governor
    }

    /// The table's catalog id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The lifecycle configuration.
    pub fn config(&self) -> &TableConfig {
        &self.config
    }

    /// The owning transaction manager.
    pub fn txn_manager(&self) -> &Arc<TxnManager> {
        &self.mgr
    }

    /// The history store, for historic tables.
    pub fn history(&self) -> Option<&HistoryStore> {
        self.history.as_ref()
    }

    /// Longest observed exclusive hold of the writers' lock by any merge
    /// publication, in nanoseconds (0 if no merge ran yet).
    pub fn max_publication_stall_ns(&self) -> u64 {
        self.publication_stall_ns.load(Ordering::Relaxed)
    }

    /// Sum of all exclusive holds across merge publications, in nanoseconds.
    pub fn total_publication_stall_ns(&self) -> u64 {
        self.publication_stall_total_ns.load(Ordering::Relaxed)
    }

    /// Mean exclusive hold across all merge publications, in nanoseconds.
    pub fn mean_publication_stall_ns(&self) -> u64 {
        let n = self.publication_stall_events.load(Ordering::Relaxed);
        if n == 0 {
            return 0;
        }
        self.publication_stall_total_ns.load(Ordering::Relaxed) / n
    }

    /// Zero the stall instruments — benchmarks call this to scope the
    /// measurement to a quiesced window.
    pub fn reset_publication_stall(&self) {
        self.publication_stall_ns.store(0, Ordering::Relaxed);
        self.publication_stall_total_ns.store(0, Ordering::Relaxed);
        self.publication_stall_events.store(0, Ordering::Relaxed);
    }

    /// Record one exclusive-section duration (called by the merge paths).
    pub(crate) fn note_publication_stall(&self, held_for: std::time::Duration) {
        let ns = held_for.as_nanos() as u64;
        self.publication_stall_ns.fetch_max(ns, Ordering::Relaxed);
        self.publication_stall_total_ns
            .fetch_add(ns, Ordering::Relaxed);
        self.publication_stall_events
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Release this transaction's row locks (called by
    /// [`Database::commit`](crate::Database::commit) / abort).
    pub fn finish_txn(&self, txn: hana_common::TxnId) {
        self.locks.release_all(txn);
    }

    /// Encodings of `col`'s compressed code vectors across the main chain,
    /// in chain order (introspection for tests and benches asserting scan
    /// coverage per encoding).
    pub fn main_encodings(&self, col: usize) -> Vec<hana_column::Encoding> {
        let state = self.state.read();
        state
            .main
            .parts()
            .iter()
            .map(|p| p.code_vector(col).encoding())
            .collect()
    }

    pub(crate) fn alloc_row_id(&self) -> RowId {
        RowId(self.next_row_id.fetch_add(1, Ordering::SeqCst))
    }

    pub(crate) fn alloc_row_id_block(&self, n: u64) -> RowId {
        RowId(self.next_row_id.fetch_add(n, Ordering::SeqCst))
    }

    pub(crate) fn alloc_generation(&self) -> u64 {
        self.next_gen.fetch_add(1, Ordering::SeqCst)
    }

    /// Resolve `(row_id, begin, end, values)` at a location, against the
    /// given state (the caller holds the state lock).
    pub(crate) fn version_at_locked(
        &self,
        state: &TableState,
        loc: Loc,
    ) -> Option<(RowId, Timestamp, Timestamp, Vec<Value>)> {
        match loc {
            Loc::L1(pos) => self
                .l1
                .with_slot(pos, |s| (s.row_id, s.begin(), s.end(), s.values.to_vec())),
            Loc::L2 { gen, pos } => {
                let l2 = self.l2_by_gen(state, gen)?;
                Some((l2.row_id(pos), l2.begin(pos), l2.end(pos), l2.row(pos)))
            }
            Loc::Main { part_gen, pos } => {
                let (pi, part) = state
                    .main
                    .parts()
                    .iter()
                    .enumerate()
                    .find(|(_, p)| p.generation() == part_gen)?;
                let hit = hana_store::PartHit { part: pi, pos };
                Some((
                    part.row_id(pos),
                    part.begin(pos),
                    part.end(pos),
                    state.main.row_at(hit),
                ))
            }
        }
    }

    fn l2_by_gen<'a>(&self, state: &'a TableState, gen: u64) -> Option<&'a Arc<L2Delta>> {
        if state.l2.generation() == gen {
            Some(&state.l2)
        } else {
            state.l2_frozen.as_ref().filter(|f| f.generation() == gen)
        }
    }

    /// Write an end stamp at a location (caller holds the state lock, which
    /// guarantees the location is current). Records the write for merge
    /// reconciliation when a delta merge is building.
    pub(crate) fn store_end_locked(
        &self,
        state: &TableState,
        row_id: RowId,
        loc: Loc,
        ts: Timestamp,
    ) {
        match loc {
            Loc::L1(pos) => {
                self.l1.with_slot(pos, |s| s.store_end(ts));
                if self.l1_merge_running.load(Ordering::Acquire) {
                    self.pending_l1_ends.lock().push((pos, ts));
                }
            }
            Loc::L2 { gen, pos } => {
                let frozen = state
                    .l2_frozen
                    .as_ref()
                    .is_some_and(|f| f.generation() == gen);
                if let Some(l2) = self.l2_by_gen(state, gen) {
                    l2.store_end(pos, ts);
                }
                if frozen && self.delta_merge_running.load(Ordering::Acquire) {
                    self.pending_ends.lock().push((row_id, ts));
                }
            }
            Loc::Main { part_gen, pos } => {
                if let Some(p) = state
                    .main
                    .parts()
                    .iter()
                    .find(|p| p.generation() == part_gen)
                {
                    p.store_end(pos, ts);
                    if self.delta_merge_running.load(Ordering::Acquire) {
                        self.pending_ends.lock().push((row_id, ts));
                    }
                }
            }
        }
    }

    /// All physical version coordinates whose `col` equals `v`, against the
    /// given state: L1 scan, L2 inverted indexes, main inverted indexes.
    pub(crate) fn versions_by_value_locked(
        &self,
        state: &TableState,
        col: usize,
        v: &Value,
    ) -> Vec<Loc> {
        let mut out = Vec::new();
        for (pos, slot) in self.l1.snapshot().iter() {
            if &slot.values[col] == v {
                out.push(Loc::L1(pos));
            }
        }
        if let Some(f) = &state.l2_frozen {
            // Published fence, not physical length: an abandoned L1→L2 run
            // may have appended unpublished rows past it.
            let fence = f.published_len();
            for pos in f.positions_eq(col, v, fence) {
                out.push(Loc::L2 {
                    gen: f.generation(),
                    pos,
                });
            }
        }
        {
            let fence = state.l2.published_len();
            for pos in state.l2.positions_eq(col, v, fence) {
                out.push(Loc::L2 {
                    gen: state.l2.generation(),
                    pos,
                });
            }
        }
        for hit in state.main.positions_eq(col, v) {
            out.push(Loc::Main {
                part_gen: state.main.parts()[hit.part].generation(),
                pos: hit.pos,
            });
        }
        out
    }

    /// Log a REDO record if the table is durable. Routed through
    /// [`Persistence::append_record`] so repeated device failures feed the
    /// health tracker and degraded (read-only) mode rejects the write
    /// before it mutates in-memory state.
    pub(crate) fn redo(&self, rec: &hana_persist::LogRecord) -> Result<()> {
        if let Some(p) = &self.persist {
            p.append_record(rec)?;
        }
        Ok(())
    }
}
