//! Group-commit pipeline, end to end: the durability contract under
//! concurrent committers, torn-log crash recovery with no torn
//! transactions, commit-timestamp / log-order agreement, and the
//! persisted commit configuration.

use hana_common::{ColumnDef, CommitConfig, DataType, Schema, TableConfig, TxnId, Value};
use hana_core::Database;
use hana_persist::{FaultErrorKind, FaultPolicy, IoOp, LogRecord, RedoLog};
use hana_txn::IsolationLevel;
use rand::{Rng, SeedableRng};
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Int).unique(),
            ColumnDef::new("v", DataType::Str),
        ],
    )
    .unwrap()
}

/// Spawn `threads` committers, each running `txns` transactions that insert
/// `rows_per_txn` uniquely-tagged rows and commit through the database.
fn run_committers(db: &Arc<Database>, threads: usize, txns: usize, rows_per_txn: i64) {
    let t = db.table("t").unwrap();
    std::thread::scope(|s| {
        for w in 0..threads {
            let (db, t) = (Arc::clone(db), Arc::clone(&t));
            s.spawn(move || {
                for k in 0..txns {
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    let base = (w * txns + k) as i64 * 100;
                    for j in 0..rows_per_txn {
                        t.insert(&txn, vec![Value::Int(base + j), Value::str("x")])
                            .unwrap();
                    }
                    db.commit(&mut txn).unwrap();
                }
            });
        }
    });
}

/// Crash-recovery property: truncate the redo log at an arbitrary byte and
/// reopen — every transaction whose commit record survived must be fully
/// visible, every other transaction fully invisible. Checked for both
/// commit modes at several truncation points.
#[test]
fn torn_log_never_tears_a_transaction() {
    for cfg in [CommitConfig::serial(), CommitConfig::default()] {
        let dir = tempfile::tempdir().unwrap();
        {
            let db = Database::open(dir.path()).unwrap();
            db.set_commit_config(cfg);
            db.create_table(schema(), TableConfig::small()).unwrap();
            run_committers(&db, 4, 5, 3);
        }
        let log_path = dir.path().join("redo.log");
        let full_log = std::fs::read(&log_path).unwrap();

        // From the intact log: which rows belong to which transaction.
        let mut rows_of: FxHashMap<TxnId, Vec<i64>> = FxHashMap::default();
        for rec in RedoLog::read_all(&log_path).unwrap() {
            if let LogRecord::InsertL1 { txn, row, .. } = rec {
                let id = row[0].as_int().expect("tagged id column");
                rows_of.entry(txn).or_default().push(id);
            }
        }
        assert_eq!(rows_of.len(), 20);

        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..8 {
            let cut = rng.gen_range(0..full_log.len());
            let crash = tempfile::tempdir().unwrap();
            std::fs::write(crash.path().join("redo.log"), &full_log[..cut]).unwrap();

            // The surviving commit records define the expected state.
            let survived: FxHashSet<TxnId> = RedoLog::read_all(&crash.path().join("redo.log"))
                .unwrap()
                .into_iter()
                .filter_map(|r| match r {
                    LogRecord::Commit { txn, .. } => Some(txn),
                    _ => None,
                })
                .collect();

            let db = Database::open(crash.path()).unwrap();
            let Ok(t) = db.table("t") else {
                // The cut fell before the CreateTable record — then no
                // commit record can have survived either.
                assert!(survived.is_empty());
                continue;
            };
            let r = db.begin(IsolationLevel::Transaction);
            let read = t.read(&r);
            for (txn, ids) in &rows_of {
                let visible = ids
                    .iter()
                    .filter(|id| !read.point(0, &Value::Int(**id)).unwrap().is_empty())
                    .count();
                if survived.contains(txn) {
                    assert_eq!(visible, ids.len(), "{txn} durable but partially visible");
                } else {
                    assert_eq!(visible, 0, "{txn} not durable but {visible} rows visible");
                }
            }
        }
    }
}

/// Commit timestamps must be strictly increasing in on-disk record order —
/// the sequencing section assigns the timestamp and appends atomically, so
/// a crash can never keep a later transaction while losing an earlier one.
#[test]
fn commit_timestamps_monotone_with_log_order() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        db.create_table(schema(), TableConfig::small()).unwrap();
        run_committers(&db, 8, 10, 1);
    }
    let mut prev = 0;
    let mut commits = 0;
    for rec in RedoLog::read_all(&dir.path().join("redo.log")).unwrap() {
        if let LogRecord::Commit { ts, .. } = rec {
            assert!(ts > prev, "commit ts {ts} out of order (prev {prev})");
            prev = ts;
            commits += 1;
        }
    }
    assert_eq!(commits, 80);
}

/// A reader that begins after `commit()` returned sees the transaction,
/// even while other writers keep the group pipeline busy.
#[test]
fn reader_after_commit_returns_sees_the_transaction() {
    let dir = tempfile::tempdir().unwrap();
    let db = Database::open(dir.path()).unwrap();
    let t = db.create_table(schema(), TableConfig::small()).unwrap();
    std::thread::scope(|s| {
        for w in 0..4usize {
            let (db, t) = (Arc::clone(&db), Arc::clone(&t));
            s.spawn(move || {
                for k in 0..20 {
                    let id = (w * 20 + k) as i64;
                    let mut txn = db.begin(IsolationLevel::Transaction);
                    t.insert(&txn, vec![Value::Int(id), Value::str("x")])
                        .unwrap();
                    let cts = db.commit(&mut txn).unwrap();
                    let r = db.begin(IsolationLevel::Transaction);
                    assert!(r.read_snapshot().ts() >= cts);
                    assert!(
                        !t.read(&r).point(0, &Value::Int(id)).unwrap().is_empty(),
                        "row {id} invisible right after its commit returned"
                    );
                }
            });
        }
    });
}

/// Under concurrent load the pipeline shares fsyncs across commits.
#[test]
fn concurrent_commits_share_fsyncs() {
    let dir = tempfile::tempdir().unwrap();
    let db = Database::open(dir.path()).unwrap();
    // A wide gather window keeps this deterministic on fast filesystems.
    db.set_commit_config(CommitConfig::default().with_max_wait_us(5_000));
    db.create_table(schema(), TableConfig::small()).unwrap();
    run_committers(&db, 8, 15, 1);
    let stats = db.log_stats().unwrap();
    assert!(stats.records >= 120, "{stats:?}");
    assert!(
        stats.fsyncs < stats.records,
        "no batching engaged: {stats:?}"
    );
    assert!(stats.avg_batch_len > 1.0, "{stats:?}");
}

/// The fsync-failure contract of the pipeline: when the batch leader's
/// flush fails, EVERY committer sequenced into that batch gets the error —
/// followers must not hang on a durability notification that will never
/// come — and once the device recovers, commits succeed again.
#[test]
fn injected_fsync_failure_fails_every_waiter_and_none_hang() {
    let dir = tempfile::tempdir().unwrap();
    let db = Database::open(dir.path()).unwrap();
    // A wide gather window forces real leader/follower batching.
    db.set_commit_config(CommitConfig::default().with_max_wait_us(5_000));
    let t = db.create_table(schema(), TableConfig::small()).unwrap();

    // Every LogSync fails until the injector is disarmed; commits observe
    // the failure (directly or via the degraded-mode gate that repeated
    // failures arm) instead of hanging.
    let injector = Arc::clone(db.injector().unwrap());
    injector.arm(FaultPolicy::fail_nth(IoOp::LogSync, 0, FaultErrorKind::Eio).persistent());

    let threads = 8;
    let errors = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..threads {
            let (db, t, errors) = (Arc::clone(&db), Arc::clone(&t), &errors);
            s.spawn(move || {
                let mut txn = db.begin(IsolationLevel::Transaction);
                // The insert itself may already be rejected once the
                // instance degrades to read-only; that counts as a clean
                // failure, not a hang.
                let res = t
                    .insert(&txn, vec![Value::Int(w as i64), Value::str("x")])
                    .and_then(|_| db.commit(&mut txn).map(|_| ()));
                if res.is_err() {
                    errors.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(
        errors.load(std::sync::atomic::Ordering::SeqCst),
        threads,
        "every committer must observe the fsync failure"
    );
    let health = db.health_stats().unwrap();
    assert!(health.io_failures > 0, "{health:?}");

    // Device recovered: disarm, leave degraded mode, commit cleanly.
    injector.disarm();
    db.clear_degraded();
    let mut txn = db.begin(IsolationLevel::Transaction);
    t.insert(&txn, vec![Value::Int(1000), Value::str("after")])
        .unwrap();
    db.commit(&mut txn).unwrap();
    drop(db);

    // The post-recovery transaction is durable. The failed commits are
    // in-doubt: their records sat in the retained buffer and may have
    // ridden the later successful flush to disk (commit acknowledged as
    // failed, yet durable — the classic lost-ack window). Either way each
    // transaction must be atomic: exactly one row or none, never garbage.
    let db = Database::open(dir.path()).unwrap();
    let t = db.table("t").unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    let read = t.read(&r);
    assert_eq!(read.point(0, &Value::Int(1000)).unwrap().len(), 1);
    for w in 0..threads {
        assert!(
            read.point(0, &Value::Int(w as i64)).unwrap().len() <= 1,
            "in-doubt commit {w} must be atomic"
        );
    }
}

/// The commit configuration rides the savepoint manifest across restarts;
/// aborts are durable (flushed) like commits.
#[test]
fn commit_config_persists_and_aborts_are_durable() {
    let dir = tempfile::tempdir().unwrap();
    let custom = CommitConfig {
        group_commit: false,
        max_batch: 16,
        max_wait_us: 250,
    };
    {
        let db = Database::open(dir.path()).unwrap();
        let t = db.create_table(schema(), TableConfig::small()).unwrap();
        db.set_commit_config(custom);
        let mut txn = db.begin(IsolationLevel::Transaction);
        t.insert(&txn, vec![Value::Int(1), Value::str("x")])
            .unwrap();
        db.abort(&mut txn).unwrap();
        db.savepoint().unwrap();
    }
    // The abort record was flushed before `abort` returned: the log was
    // truncated by the savepoint, so just reopen and check the config and
    // that the aborted row stayed invisible.
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(db.commit_config(), custom);
    let t = db.table("t").unwrap();
    let r = db.begin(IsolationLevel::Transaction);
    assert_eq!(t.read(&r).count(), 0);
}
