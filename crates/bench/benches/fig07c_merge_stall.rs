//! Fig 7c — writer-observed stall during delta-to-main publication.
//!
//! Claims regenerated: (a) the legacy blocking protocol holds the writers'
//! lock for work proportional to the new main (index build + pending-end
//! replay), so its publication stall grows with table size; (b) the
//! non-blocking protocol reconciles raced end stamps off-lock and publishes
//! with a constant-time swap, so its stall is flat; (c) a background GC
//! sweep over a churned table is cheap enough to run continuously.
//!
//! The stall is measured with `iter_custom` from the table's own
//! publication-stall instrument (time the exclusive section was actually
//! held), not wall-clock merge latency — the build phase dominates the
//! latter identically in both protocols.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hana_bench::{fill_l2, staged_sales, StagedTable};
use hana_common::{ColumnId, MergeConfig, Value};
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;

/// Build a staged table with `main_rows` in main and a filled L2, with the
/// requested publication protocol.
fn staged(main_rows: i64, legacy: bool) -> StagedTable {
    let st = hana_bench::staged_sales_merge(
        main_rows,
        hana_bench::Stage::Main,
        7,
        MergeConfig::default().with_legacy_blocking_publication(legacy),
    );
    fill_l2(&st, main_rows, 2_000, 13);
    st
}

/// One merge with a short-lived racer that end-stamps rows while the
/// off-lock build runs, so publication has pending ends to reconcile —
/// the case where the two protocols differ.
fn merge_with_raced_ends(st: &StagedTable) -> Duration {
    st.table.reset_publication_stall();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let racer = scope.spawn(|| {
            while !done.load(Ordering::Relaxed) && st.table.stage_stats().l2_frozen_rows == 0 {
                std::thread::yield_now();
            }
            if !done.load(Ordering::Relaxed) {
                let mut txn = st.db.begin(IsolationLevel::Transaction);
                for k in 0..8i64 {
                    let _ = st.table.update_where(
                        &txn,
                        ColumnId(0),
                        &Value::Int(k * 97),
                        &[(ColumnId(4), Value::Int(-1))],
                    );
                }
                let _ = st.db.commit(&mut txn);
            }
        });
        st.table.merge_delta_as(MergeDecision::Classic).unwrap();
        done.store(true, Ordering::Relaxed);
        racer.join().unwrap();
    });
    Duration::from_nanos(st.table.total_publication_stall_ns())
}

fn bench_publication_stall(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07c_publication_stall");
    g.sample_size(10);
    for main_rows in [10_000i64, 40_000] {
        for (name, legacy) in [("blocking", true), ("non-blocking", false)] {
            g.bench_function(BenchmarkId::new(name, main_rows), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let st = staged(main_rows, legacy);
                        total += merge_with_raced_ends(&st);
                    }
                    total
                })
            });
        }
    }
    g.finish();
}

fn bench_gc_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07c_gc_sweep");
    g.sample_size(10);
    for rows in [10_000i64, 40_000] {
        g.bench_function(BenchmarkId::from_parameter(rows), |b| {
            // Churn a staged table so the sweep has marks to resolve, then
            // measure repeated sweeps (steady-state cost, memoized parts).
            let st = staged_sales(rows, hana_bench::Stage::Main, 7);
            let mut txn = st.db.begin(IsolationLevel::Transaction);
            for k in 0..1_000i64 {
                let _ = st.table.update_where(
                    &txn,
                    ColumnId(0),
                    &Value::Int(k % rows),
                    &[(ColumnId(4), Value::Int(k))],
                );
            }
            st.db.commit(&mut txn).unwrap();
            b.iter(|| {
                let report = st.table.gc_sweep();
                std::hint::black_box(report.referenced.len());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_publication_stall, bench_gc_sweep);
criterion_main!(benches);
