//! The persistence façade: savepoints + log + recovery.
//!
//! Layout in the database directory:
//!
//! * `data.pages` — the page store. Pages 0 and 1 are the two alternating
//!   superblock slots holding the savepoint manifest (version counter,
//!   clock, virtual-file list, CRC-protected). A savepoint writes all table
//!   images as virtual files, then flips the superblock, then rotates the
//!   REDO log to the new epoch — crash-safe at every step: until the new
//!   superblock is synced, recovery still sees the previous savepoint plus
//!   the old log; after the flip, a stale-epoch log is ignored rather than
//!   replayed onto images that already contain its rows.
//! * `redo.log` — the REDO log since the last savepoint, headered with the
//!   epoch (savepoint version) its records apply on top of.
//!
//! ## Integrity
//!
//! Every persisted artifact — page, log record, manifest, table image — is
//! wrapped in the checksummed [`integrity`](crate::integrity) envelope and
//! verified on every read. A savepoint is *recoverable* only when its
//! manifest page verifies, the manifest parses, and every image blob it
//! references verifies and decodes; recovery picks the newest recoverable
//! manifest, falling back to the previous savepoint when the newest one is
//! damaged. When **no** recoverable manifest exists but the log's epoch
//! proves a savepoint once did, the open fails closed with
//! [`HanaError::Corruption`] — silently restarting as an empty database
//! would be data loss dressed up as recovery. [`Persistence::scrub_tick`]
//! walks the live pages in the background so bit rot is found while the
//! redundancy to recover from it still exists.
//!
//! Every physical operation flows through one shared [`FaultInjector`], and
//! every failure is scored by a [`Health`] tracker: repeated consecutive
//! I/O failures — including detected corruption — flip the instance into
//! **read-only degraded mode** — writes and savepoints are rejected with a
//! clear error while reads keep working — until
//! [`Persistence::clear_degraded`] is called.

use crate::codec::{crc32, Decoder, Encoder};
use crate::fault::{FailureSite, FaultInjector, Health, HealthStats};
use crate::group::{GroupCommit, LogStats};
use crate::image::TableImage;
use crate::integrity::{self, ArtifactKind, EnvelopeError, IntegrityState, IntegrityStats};
use crate::log::{LogRecord, RedoLog, NO_EPOCH};
use crate::page::{PageFormat, PageId, PageStore, DEFAULT_PAGE_SIZE};
use crate::vfile::VirtualFile;
use hana_common::{CommitConfig, GovernorConfig, HanaError, Result, Timestamp};
use parking_lot::Mutex;
use rustc_hash::FxHashSet;
use std::path::Path;
use std::sync::Arc;

/// Everything recovery reconstructs.
pub struct RecoveredState {
    /// Clock value at savepoint time (recovery advances it past replayed
    /// commits).
    pub clock: Timestamp,
    /// Savepoint version that was loaded (0 = none existed).
    pub savepoint_version: u64,
    /// Per-table images from the savepoint.
    pub images: Vec<TableImage>,
    /// Intact log records since that savepoint. Empty when the log's epoch
    /// doesn't match the manifest version (a stale log must not be replayed
    /// onto images that already contain its rows).
    pub log_records: Vec<LogRecord>,
    /// Commit-pipeline configuration persisted by the savepoint (defaults
    /// when no savepoint existed).
    pub commit_config: CommitConfig,
    /// Workload-isolation (resource governor) configuration persisted by
    /// the savepoint (defaults when no savepoint existed).
    pub governor_config: GovernorConfig,
}

struct Manifest {
    version: u64,
    clock: Timestamp,
    commit_config: CommitConfig,
    governor_config: GovernorConfig,
    files: Vec<VirtualFile>,
}

/// Page bookkeeping snapshot: on a freshly opened store,
/// `allocated == 2 + free + live` (the crash harness's no-leak invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAccounting {
    /// Pages ever allocated, including the two superblock slots.
    pub allocated: u64,
    /// Pages on the free list.
    pub free: u64,
    /// Pages referenced by the live savepoint's virtual files.
    pub live: u64,
}

/// Result of one background-scrub batch (see [`Persistence::scrub_tick`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubTick {
    /// Pages whose checksums were verified (or legacy-verified) this batch.
    pub scanned: u64,
    /// Newly detected corrupt artifacts (pages quarantined / blobs failed).
    pub corrupt: u64,
    /// True when this batch wrapped: one full pass over every live page
    /// completed (and one table-image blob was re-verified end-to-end).
    pub completed_pass: bool,
}

/// Round-robin position of the background scrub.
#[derive(Default)]
struct ScrubCursor {
    /// Index into the conceptual `[superblocks… live pages…]` list.
    pos: usize,
    /// Which live image blob the next completed pass re-verifies.
    blob_rr: usize,
}

/// The durable side of a database instance.
pub struct Persistence {
    pages: PageStore,
    log: RedoLog,
    group: GroupCommit,
    health: Health,
    injector: Arc<FaultInjector>,
    /// Integrity accounting shared by the page store, the log, and the
    /// manifest/scrub paths of this instance.
    integrity: Arc<IntegrityState>,
    scrub: Mutex<ScrubCursor>,
    /// Version counter + the previous savepoint's virtual files (released
    /// after the next successful savepoint).
    state: Mutex<(u64, Vec<VirtualFile>)>,
}

impl Persistence {
    /// Open (or initialize) persistence in `dir` with the default page size.
    pub fn open(dir: &Path) -> Result<Self> {
        Self::open_with_page_size(dir, DEFAULT_PAGE_SIZE)
    }

    /// Open with an explicit page size ("visible page limits of configurable
    /// size").
    pub fn open_with_page_size(dir: &Path, page_size: usize) -> Result<Self> {
        Self::open_with_injector(dir, page_size, FaultInjector::new())
    }

    /// Open with an explicit fault injector shared by every physical I/O
    /// site of this instance (the crash-everywhere harness's entry point).
    pub fn open_with_injector(
        dir: &Path,
        page_size: usize,
        injector: Arc<FaultInjector>,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let integrity = Arc::new(IntegrityState::new());
        let pages = PageStore::open_full(
            &dir.join("data.pages"),
            page_size,
            Arc::clone(&injector),
            Arc::clone(&integrity),
        )?;
        let log = RedoLog::open_full(
            &dir.join("redo.log"),
            Arc::clone(&injector),
            Arc::clone(&integrity),
        )?;
        let (best, saw_corruption) = read_best_valid_manifest(&pages);
        let state = match best {
            Some(l) => (l.manifest.version, l.manifest.files),
            None => {
                // A log rotated past epoch 0 proves a savepoint once
                // published a manifest. If no slot is recoverable now, the
                // authoritative state is gone: opening as a fresh database
                // (and rotating the log to epoch 0) would silently discard
                // every row it ever held. Fail closed instead.
                if log.epoch() != 0 {
                    return Err(HanaError::Corruption(format!(
                        "no recoverable savepoint manifest{} but the REDO log is at \
                         epoch {} — a savepoint was once published, so the durable \
                         state is lost; refusing to reinitialize as empty",
                        if saw_corruption {
                            " (superblock or table-image checksum failures)"
                        } else {
                            ""
                        },
                        log.epoch()
                    )));
                }
                (0, Vec::new())
            }
        };
        // Reconcile the log epoch with the recovered manifest. A crash
        // between the superblock flip and the log rotation leaves a
        // stale-epoch log whose rows the images already contain; rotating
        // here discards it before any new record could land behind them.
        if log.epoch() != state.0 {
            log.rotate(state.0)?;
        }
        // Reconstruct the free list: every allocated page the live manifest
        // does not reference is reclaimable. This is what un-leaks pages a
        // crashed savepoint had allocated for images it never published.
        let mut live: FxHashSet<u64> = FxHashSet::default();
        for f in &state.1 {
            for p in &f.pages {
                live.insert(p.0);
            }
        }
        let free: Vec<PageId> = (2..pages.allocated_pages())
            .filter(|p| !live.contains(p))
            .map(PageId)
            .collect();
        pages.reset_free_list(free);
        Ok(Persistence {
            pages,
            log,
            group: GroupCommit::new(),
            health: Health::default(),
            injector,
            integrity,
            scrub: Mutex::new(ScrubCursor::default()),
            state: Mutex::new(state),
        })
    }

    /// The REDO log handle.
    pub fn log(&self) -> &RedoLog {
        &self.log
    }

    /// The fault injector shared by this instance's I/O sites.
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }

    /// The health/degradation tracker.
    pub fn health(&self) -> &Health {
        &self.health
    }

    /// Snapshot of the health counters.
    pub fn health_stats(&self) -> HealthStats {
        self.health.stats()
    }

    /// Leave read-only degraded mode (operator action after the underlying
    /// device recovered).
    pub fn clear_degraded(&self) {
        self.health.clear_degraded();
    }

    /// Integrity accounting shared by every verification site of this
    /// instance (page reads, log replay, manifests, scrubbing).
    pub fn integrity(&self) -> &Arc<IntegrityState> {
        &self.integrity
    }

    /// Snapshot of the integrity counters.
    pub fn integrity_stats(&self) -> IntegrityStats {
        self.integrity.stats()
    }

    /// Page ids referenced by the live savepoint's virtual files, sorted
    /// (superblock slots excluded). The corruption-injection surface.
    pub fn live_page_ids(&self) -> Vec<u64> {
        let state = self.state.lock();
        let mut v: Vec<u64> = state
            .1
            .iter()
            .flat_map(|f| f.pages.iter().map(|p| p.0))
            .collect();
        v.sort_unstable();
        v
    }

    /// One batch of background scrubbing: verify up to `max_pages` on-disk
    /// checksums, walking the superblock slots plus every page the live
    /// savepoint references, wrapping around. Newly detected corruption is
    /// quarantined by the read path and scored against the [`Health`]
    /// tracker (site [`FailureSite::Scrub`]) so persistent rot degrades the
    /// instance to read-only instead of going unnoticed; already-quarantined
    /// pages are skipped so one bad page is scored once, not every pass.
    /// Each completed pass additionally re-verifies one live table-image
    /// blob end-to-end (round-robin). Transient I/O errors are not the
    /// scrub's business and are ignored here.
    pub fn scrub_tick(&self, max_pages: usize) -> ScrubTick {
        let (version, targets, files) = {
            let state = self.state.lock();
            let mut v = vec![PageId(0), PageId(1)];
            for f in &state.1 {
                v.extend(f.pages.iter().copied());
            }
            (state.0, v, state.1.clone())
        };
        let mut tick = ScrubTick::default();
        let mut cursor = self.scrub.lock();
        for _ in 0..max_pages {
            if cursor.pos >= targets.len() {
                // Wrapped: end the batch at the pass boundary.
                cursor.pos = 0;
                tick.completed_pass = true;
                break;
            }
            let p = targets[cursor.pos];
            cursor.pos += 1;
            if self.integrity.is_quarantined(p.0) {
                continue; // known-bad: counted when first detected
            }
            tick.scanned += 1;
            match self.pages.read_page(p) {
                Ok(_) => {}
                Err(e @ HanaError::Corruption(_)) => {
                    tick.corrupt += 1;
                    self.health.record_failure(FailureSite::Scrub, &e);
                }
                Err(_) => {}
            }
        }
        if tick.completed_pass && !files.is_empty() {
            let i = cursor.blob_rr % files.len();
            cursor.blob_rr = cursor.blob_rr.wrapping_add(1);
            let intact = match files[i].read(&self.pages) {
                Ok(blob) => {
                    match integrity::open_envelope(ArtifactKind::TableImage, version, &blob) {
                        Ok(_) => true,
                        // A legacy (pre-checksum) blob has no envelope to
                        // check; its pages were still verified above.
                        Err(EnvelopeError::NotEnvelope) => true,
                        Err(EnvelopeError::Corrupt(_)) => false,
                    }
                }
                Err(HanaError::Corruption(_)) => false,
                Err(_) => true,
            };
            if !intact {
                tick.corrupt += 1;
                self.integrity.note_image_corrupt();
                let e = HanaError::Corruption(format!(
                    "table image blob {i} of savepoint v{version} failed verification \
                     during scrub"
                ));
                self.health.record_failure(FailureSite::Scrub, &e);
            }
        }
        self.integrity
            .note_scrub_batch(tick.scanned, tick.corrupt, tick.completed_pass);
        tick
    }

    /// Buffer one data record (first-appearance insert/bulk-load/delete,
    /// DDL, merge event). Rejected in degraded mode: accepting a write the
    /// instance already knows it cannot make durable would be a lie.
    pub fn append_record(&self, rec: &LogRecord) -> Result<()> {
        if self.health.is_read_only() {
            return Err(Health::read_only_error());
        }
        match self.log.append(rec) {
            Ok(()) => Ok(()),
            Err(e) => {
                if Health::counts_as_io_failure(&e) {
                    self.health.record_failure(FailureSite::Log, &e);
                }
                Err(e)
            }
        }
    }

    /// Flush buffered data records to disk. DDL uses this: the record must
    /// be durable before the new object becomes visible to other sessions.
    pub fn flush_records(&self) -> Result<()> {
        match self.log.flush() {
            Ok(()) => {
                self.health.record_success();
                Ok(())
            }
            Err(e) => {
                if Health::counts_as_io_failure(&e) {
                    self.health.record_failure(FailureSite::Log, &e);
                }
                Err(e)
            }
        }
    }

    /// Sequence one commit/abort record through the group-commit pipeline
    /// and return only once it is durable (see [`crate::group`]). `seq`
    /// runs under the pipeline's sequencing lock, so the order it
    /// establishes (commit-clock order) is the on-disk record order.
    pub fn commit_record<T>(
        &self,
        cfg: &CommitConfig,
        seq: impl FnOnce() -> Result<(LogRecord, T)>,
    ) -> Result<T> {
        if self.health.is_read_only() {
            return Err(Health::read_only_error());
        }
        match self.group.submit(&self.log, cfg, seq) {
            Ok(v) => {
                self.health.record_success();
                Ok(v)
            }
            Err(e) => {
                // Semantic sequencing failures (write conflict, finished
                // txn) say nothing about the device and don't count.
                if Health::counts_as_io_failure(&e) {
                    self.health.record_failure(FailureSite::Log, &e);
                }
                Err(e)
            }
        }
    }

    /// Counters of the group-commit pipeline.
    pub fn log_stats(&self) -> LogStats {
        self.group.stats()
    }

    /// The page store (exposed for introspection/benches).
    pub fn pages(&self) -> &PageStore {
        &self.pages
    }

    /// Page bookkeeping snapshot (see [`PageAccounting`]).
    pub fn page_accounting(&self) -> PageAccounting {
        let state = self.state.lock();
        let live = state.1.iter().map(|f| f.pages.len() as u64).sum();
        PageAccounting {
            allocated: self.pages.allocated_pages(),
            free: self.pages.free_pages(),
            live,
        }
    }

    /// Write a savepoint: persist `images`, flip the superblock, rotate the
    /// log to the new epoch. The database-wide `commit_config` rides along
    /// in the manifest (like the per-table merge/scan knobs ride in each
    /// table's image). Returns the new savepoint version.
    ///
    /// Failure-atomic: on any error before the superblock flip, every page
    /// written for the new images is released and the previous savepoint
    /// stays the recovery target. Once the flip may have reached disk the
    /// pages stay allocated (reclaimed by free-list reconstruction at the
    /// next open) and the log is wedged until a retry rotates it — a record
    /// appended to a stale-epoch log would be silently ignored by recovery.
    pub fn savepoint(
        &self,
        clock: Timestamp,
        commit_config: &CommitConfig,
        governor_config: &GovernorConfig,
        images: &[TableImage],
    ) -> Result<u64> {
        if self.health.is_read_only() {
            return Err(Health::read_only_error());
        }
        let r = self.savepoint_inner(clock, commit_config, governor_config, images);
        match &r {
            Ok(_) => self.health.record_success(),
            Err(e) if Health::counts_as_io_failure(e) => {
                self.health.record_failure(FailureSite::Savepoint, e)
            }
            Err(_) => {}
        }
        r
    }

    fn savepoint_inner(
        &self,
        clock: Timestamp,
        commit_config: &CommitConfig,
        governor_config: &GovernorConfig,
        images: &[TableImage],
    ) -> Result<u64> {
        let mut state = self.state.lock();
        let version = state.0 + 1;
        let release_all = |files: &[VirtualFile]| {
            for f in files {
                f.release(&self.pages);
            }
        };

        // 1. Write each table image as a virtual file. The blob carries its
        //    own envelope (salted with the savepoint version) on top of the
        //    per-page checksums, so a whole image can be re-verified without
        //    trusting the page layer — the scrub's end-to-end check.
        let mut files = Vec::with_capacity(images.len());
        for img in images {
            let mut e = Encoder::new();
            img.encode(&mut e);
            let blob = integrity::seal(ArtifactKind::TableImage, version, &e.into_bytes());
            match VirtualFile::write(&self.pages, &blob) {
                Ok(f) => files.push(f),
                Err(e) => {
                    // The failed file released its own pages; drop the
                    // completed ones too.
                    release_all(&files);
                    return Err(e);
                }
            }
        }
        if let Err(e) = self.pages.sync() {
            release_all(&files);
            return Err(e);
        }

        // 2. Flip the superblock (slot = version % 2).
        let mut m = Encoder::new();
        m.u64(version);
        m.u64(clock);
        encode_commit_config(&mut m, commit_config);
        encode_governor_config(&mut m, governor_config);
        m.u32(files.len() as u32);
        for f in &files {
            f.encode(&mut m);
        }
        // The manifest rides its page's envelope: the superblock slot *is*
        // the page id, so the page checksum (salted with it) already binds
        // and verifies the manifest end-to-end.
        let payload = m.into_bytes();
        if let Err(e) = self.pages.write_page(PageId(version % 2), &payload) {
            // Nothing durable changed (a torn slot fails its CRC and falls
            // back): the old savepoint still wins. Reclaim the new pages.
            release_all(&files);
            return Err(e);
        }
        if let Err(e) = self.pages.sync() {
            // The flip is *indeterminate*: the superblock sits in the page
            // cache and may reach disk despite the failed fsync. Keep both
            // generations' pages allocated (reopen reconstructs the free
            // list from whichever manifest survived) and wedge the log —
            // its epoch may no longer match the manifest on disk.
            self.log
                .wedge("savepoint superblock sync failed; manifest state indeterminate");
            return Err(e);
        }

        // 3. Rotate the log to the new epoch and release the previous
        //    savepoint's pages.
        if let Err(e) = self.log.rotate(version) {
            // The new manifest IS durable but the log still carries the old
            // epoch: recovery would ignore anything appended to it. Fail
            // loudly until a retry (same version, same slot) rotates it.
            self.log
                .wedge("savepoint manifest flipped but log rotation failed");
            return Err(e);
        }
        let prev_files = std::mem::replace(&mut *state, (version, files)).1;
        release_all(&prev_files);
        Ok(version)
    }

    /// Recover the durable state from `dir`.
    pub fn recover(dir: &Path) -> Result<RecoveredState> {
        Self::recover_with_page_size(dir, DEFAULT_PAGE_SIZE)
    }

    /// Recover with an explicit page size.
    ///
    /// Picks the newest *recoverable* manifest (manifest page, parse, and
    /// every image blob all verify), so a damaged newest savepoint falls
    /// back to the previous one. A corrupt log (a complete frame failing
    /// its checksum) and a lost manifest chain both surface as
    /// [`HanaError::Corruption`] — recovery never serves damaged state.
    pub fn recover_with_page_size(dir: &Path, page_size: usize) -> Result<RecoveredState> {
        let pages_path = dir.join("data.pages");
        let (best, saw_corruption) = if pages_path.exists() {
            let pages = PageStore::open(&pages_path, page_size)?;
            read_best_valid_manifest(&pages)
        } else {
            (None, false)
        };
        let (epoch, records) = RedoLog::read_all_with_epoch(&dir.join("redo.log"))?;
        match best {
            Some(l) => {
                // Replay only a log whose epoch matches the manifest it
                // extends (a stale or newer-epoch log must not be replayed
                // onto images that don't pair with it).
                let log_records = if epoch == l.manifest.version {
                    records
                } else {
                    Vec::new()
                };
                Ok(RecoveredState {
                    clock: l.manifest.clock,
                    savepoint_version: l.manifest.version,
                    images: l.images,
                    log_records,
                    commit_config: l.manifest.commit_config,
                    governor_config: l.manifest.governor_config,
                })
            }
            None => {
                // See `open_with_injector`: an epoch past 0 proves a
                // savepoint once published; with every slot unrecoverable
                // the authoritative state is lost. (NO_EPOCH — a garbage
                // header — keeps its long-standing "ignore the file"
                // semantics.)
                if epoch != 0 && epoch != NO_EPOCH {
                    return Err(HanaError::Corruption(format!(
                        "no recoverable savepoint manifest{} but the REDO log is at \
                         epoch {epoch} — refusing to recover as an empty database",
                        if saw_corruption {
                            " (superblock or table-image checksum failures)"
                        } else {
                            ""
                        }
                    )));
                }
                let log_records = if epoch == 0 { records } else { Vec::new() };
                Ok(RecoveredState {
                    clock: 0,
                    savepoint_version: 0,
                    images: Vec::new(),
                    log_records,
                    commit_config: CommitConfig::default(),
                    governor_config: GovernorConfig::default(),
                })
            }
        }
    }
}

fn encode_commit_config(e: &mut Encoder, c: &CommitConfig) {
    e.bool(c.group_commit);
    e.u64(c.max_batch as u64);
    e.u64(c.max_wait_us);
}

fn decode_commit_config(d: &mut Decoder<'_>) -> Result<CommitConfig> {
    Ok(CommitConfig {
        group_commit: d.bool()?,
        max_batch: d.u64()? as usize,
        max_wait_us: d.u64()?,
    })
}

fn encode_governor_config(e: &mut Encoder, c: &GovernorConfig) {
    e.bool(c.enabled);
    e.u64(c.max_concurrent_scans as u64);
    e.u64(c.scan_queue_timeout_ms);
    e.u64(c.oltp_p99_budget_us);
    e.u64(c.min_scan_parallelism as u64);
}

fn decode_governor_config(d: &mut Decoder<'_>) -> Result<GovernorConfig> {
    Ok(GovernorConfig {
        enabled: d.bool()?,
        max_concurrent_scans: d.u64()? as usize,
        scan_queue_timeout_ms: d.u64()?,
        oltp_p99_budget_us: d.u64()?,
        min_scan_parallelism: d.u64()? as usize,
    })
}

/// A manifest that proved fully recoverable: its page verified, it parsed,
/// and every image blob it references verified and decoded.
struct LoadedManifest {
    manifest: Manifest,
    images: Vec<TableImage>,
}

/// What one superblock slot holds.
enum Slot {
    Valid(Box<LoadedManifest>),
    /// Never written, or a torn write that never became a manifest — the
    /// normal state of the inactive slot.
    Absent,
    /// Checksummed bytes that no longer verify: bit rot, not a tear.
    Corrupt,
}

fn parse_manifest(payload: &[u8]) -> Option<Manifest> {
    let mut d = Decoder::new(payload);
    let version = d.u64().ok()?;
    let clock = d.u64().ok()?;
    let commit_config = decode_commit_config(&mut d).ok()?;
    let governor_config = decode_governor_config(&mut d).ok()?;
    let n = d.u32().ok()? as usize;
    let mut files = Vec::with_capacity(n);
    for _ in 0..n {
        files.push(VirtualFile::decode(&mut d).ok()?);
    }
    Some(Manifest {
        version,
        clock,
        commit_config,
        governor_config,
        files,
    })
}

/// Read one superblock slot end-to-end, distinguishing *absent* (never a
/// manifest) from *corrupt* (was one, no longer verifies) — the distinction
/// the fail-closed rule and the fallback both hinge on.
fn load_manifest_slot(pages: &PageStore, slot: u64) -> Slot {
    let integrity = pages.integrity();
    let (payload, format) = match pages.read_page_with_format(PageId(slot)) {
        Ok(p) => p,
        Err(HanaError::Corruption(_)) => {
            integrity.note_manifest_corrupt();
            return Slot::Corrupt;
        }
        // Short file / transient I/O: the slot was never written.
        Err(_) => return Slot::Absent,
    };
    let manifest = match format {
        // A verified envelope page holds the manifest bytes directly (the
        // slot is the page id, so the page checksum already binds them).
        PageFormat::Envelope => match parse_manifest(&payload) {
            Some(m) => m,
            None => {
                // Verified bytes that don't parse: the damage predates the
                // checksum, i.e. the writer's bytes were already wrong.
                integrity.note_manifest_corrupt();
                return Slot::Corrupt;
            }
        },
        // A legacy page wraps the manifest in the pre-envelope
        // `[crc32][payload]` framing. That format cannot distinguish rot
        // from a tear, so any failure stays Absent — exactly the
        // pre-checksum behaviour.
        PageFormat::Legacy => {
            let parsed = (|| {
                let mut d = Decoder::new(&payload);
                let stored_crc = d.u32().ok()?;
                let inner = d.bytes().ok()?;
                if crc32(inner) != stored_crc {
                    return None;
                }
                parse_manifest(inner)
            })();
            match parsed {
                Some(m) => m,
                None => return Slot::Absent,
            }
        }
    };
    // A manifest is only as good as the images it points at: the savepoint
    // is recoverable iff every blob verifies and decodes.
    let mut images = Vec::with_capacity(manifest.files.len());
    for f in &manifest.files {
        let blob = match f.read(pages) {
            Ok(b) => b,
            Err(_) => return Slot::Corrupt,
        };
        let img = match integrity::open_envelope(ArtifactKind::TableImage, manifest.version, &blob)
        {
            Ok(payload) => match TableImage::decode(&mut Decoder::new(payload)) {
                Ok(img) => {
                    integrity.note_image_verified();
                    img
                }
                Err(_) => {
                    integrity.note_image_corrupt();
                    return Slot::Corrupt;
                }
            },
            // Legacy raw blob from a pre-checksum savepoint.
            Err(EnvelopeError::NotEnvelope) => match TableImage::decode(&mut Decoder::new(&blob)) {
                Ok(img) => {
                    integrity.note_image_legacy();
                    img
                }
                Err(_) => {
                    integrity.note_image_corrupt();
                    return Slot::Corrupt;
                }
            },
            Err(EnvelopeError::Corrupt(_)) => {
                integrity.note_image_corrupt();
                return Slot::Corrupt;
            }
        };
        images.push(img);
    }
    Slot::Valid(Box::new(LoadedManifest { manifest, images }))
}

/// The newest fully recoverable manifest, plus whether any slot showed
/// checksum-level corruption (reported in fail-closed error messages).
fn read_best_valid_manifest(pages: &PageStore) -> (Option<LoadedManifest>, bool) {
    let a = load_manifest_slot(pages, 0);
    let b = load_manifest_slot(pages, 1);
    let saw_corruption = matches!(a, Slot::Corrupt) || matches!(b, Slot::Corrupt);
    let best = match (a, b) {
        (Slot::Valid(x), Slot::Valid(y)) => Some(if x.manifest.version >= y.manifest.version {
            *x
        } else {
            *y
        }),
        (Slot::Valid(x), _) => Some(*x),
        (_, Slot::Valid(y)) => Some(*y),
        _ => None,
    };
    (best, saw_corruption)
}

/// Validate a recovered manifest chain invariant (used by tests/tools).
pub fn check_recovered(state: &RecoveredState) -> Result<()> {
    for img in &state.images {
        for p in &img.main_parts {
            if p.row_ids.len() != p.begins.len() || p.begins.len() != p.ends.len() {
                return Err(HanaError::Persist(format!(
                    "inconsistent part image in table {}",
                    img.schema.name
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultErrorKind, FaultPolicy, IoOp};
    use crate::image::{DeltaImage, RowImage};
    use hana_common::TableId;
    use hana_common::{ColumnDef, DataType, RowId, Schema, TableConfig, TxnId, Value};
    use tempfile::tempdir;

    fn image(name: &str, rows: usize) -> TableImage {
        let schema = Schema::new(
            name,
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("v", DataType::Str),
            ],
        )
        .unwrap();
        TableImage {
            table_id: 1,
            schema,
            config: TableConfig::default(),
            next_row_id: rows as u64,
            next_generation: 1,
            l1_rows: (0..rows)
                .map(|i| RowImage {
                    row_id: RowId(i as u64),
                    begin: 5,
                    end: u64::MAX,
                    values: vec![Value::Int(i as i64), Value::str(format!("v{i}"))],
                })
                .collect(),
            l2: DeltaImage::default(),
            main_parts: vec![],
            passive_count: 0,
            history: vec![],
        }
    }

    #[test]
    fn savepoint_then_recover() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.log()
            .append(&LogRecord::Commit {
                txn: TxnId(1),
                ts: 9,
            })
            .unwrap();
        p.log().flush().unwrap();
        let v = p
            .savepoint(
                10,
                &CommitConfig::default(),
                &GovernorConfig::default(),
                &[image("t", 100)],
            )
            .unwrap();
        assert_eq!(v, 1);
        // Log rotated (emptied) by the savepoint, onto the new epoch.
        assert_eq!(p.log().len_bytes().unwrap(), 0);
        assert_eq!(p.log().epoch(), 1);
        // Post-savepoint activity lands in the log.
        p.log()
            .append(&LogRecord::Delete {
                table: TableId(1),
                row_id: RowId(0),
                txn: TxnId(2),
            })
            .unwrap();
        p.log().flush().unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 1);
        assert_eq!(rec.clock, 10);
        assert_eq!(rec.images.len(), 1);
        assert_eq!(rec.images[0].l1_rows.len(), 100);
        assert_eq!(rec.log_records.len(), 1);
        check_recovered(&rec).unwrap();
    }

    #[test]
    fn commit_config_round_trips_through_manifest() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        let cfg = CommitConfig::serial()
            .with_max_batch(17)
            .with_max_wait_us(250);
        p.savepoint(3, &cfg, &GovernorConfig::default(), &[image("t", 1)])
            .unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.commit_config, cfg);
        // No savepoint ⇒ defaults.
        let dir2 = tempdir().unwrap();
        let rec2 = Persistence::recover_with_page_size(dir2.path(), 256).unwrap();
        assert_eq!(rec2.commit_config, CommitConfig::default());
    }

    #[test]
    fn governor_config_round_trips_through_manifest() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        let gov = GovernorConfig::default()
            .with_max_concurrent_scans(7)
            .with_scan_queue_timeout_ms(321)
            .with_oltp_p99_budget_us(1234)
            .with_min_scan_parallelism(2);
        p.savepoint(3, &CommitConfig::default(), &gov, &[image("t", 1)])
            .unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.governor_config, gov);
        // A disabled governor survives the round trip too.
        let dir2 = tempdir().unwrap();
        let p2 = Persistence::open_with_page_size(dir2.path(), 256).unwrap();
        p2.savepoint(
            1,
            &CommitConfig::default(),
            &GovernorConfig::disabled(),
            &[image("t", 1)],
        )
        .unwrap();
        drop(p2);
        let rec2 = Persistence::recover_with_page_size(dir2.path(), 256).unwrap();
        assert_eq!(rec2.governor_config, GovernorConfig::disabled());
        // No savepoint ⇒ defaults.
        let dir3 = tempdir().unwrap();
        let rec3 = Persistence::recover_with_page_size(dir3.path(), 256).unwrap();
        assert_eq!(rec3.governor_config, GovernorConfig::default());
    }

    #[test]
    fn recover_empty_directory() {
        let dir = tempdir().unwrap();
        let rec = Persistence::recover(dir.path()).unwrap();
        assert_eq!(rec.savepoint_version, 0);
        assert!(rec.images.is_empty());
        assert!(rec.log_records.is_empty());
    }

    #[test]
    fn successive_savepoints_alternate_and_supersede() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(
            5,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 10)],
        )
        .unwrap();
        p.savepoint(
            8,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 20)],
        )
        .unwrap();
        let v3 = p
            .savepoint(
                12,
                &CommitConfig::default(),
                &GovernorConfig::default(),
                &[image("t", 30)],
            )
            .unwrap();
        assert_eq!(v3, 3);
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 3);
        assert_eq!(rec.clock, 12);
        assert_eq!(rec.images[0].l1_rows.len(), 30);
    }

    #[test]
    fn crash_before_superblock_flip_keeps_old_savepoint() {
        // Simulate: savepoint 1 completes; then new image pages are written
        // but the superblock never flips (crash). Recovery must see v1.
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(
            5,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 10)],
        )
        .unwrap();
        // Write orphan pages (as an interrupted savepoint would).
        let orphan = VirtualFile::write(p.pages(), &vec![9u8; 600]).unwrap();
        let _ = orphan;
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 1);
        assert_eq!(rec.images[0].l1_rows.len(), 10);
    }

    #[test]
    fn reopen_reclaims_orphaned_pages() {
        // Pages a crashed savepoint allocated but never published must be
        // reusable after reopen: allocated == 2 + free + live.
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(
            5,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 10)],
        )
        .unwrap();
        let _orphan = VirtualFile::write(p.pages(), &vec![9u8; 2000]).unwrap();
        drop(p);
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        let acc = p.page_accounting();
        assert_eq!(
            acc.allocated,
            2 + acc.free + acc.live,
            "every non-superblock page is either live or free: {acc:?}"
        );
        assert!(acc.free > 0, "the orphaned pages are on the free list");
    }

    #[test]
    fn failed_savepoint_releases_pages_and_keeps_old_manifest() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(
            5,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 10)],
        )
        .unwrap();
        let before = p.page_accounting();
        // Fail the 3rd image-page write of the next savepoint.
        p.injector().arm(FaultPolicy::fail_nth(
            IoOp::PageWrite,
            2,
            FaultErrorKind::Enospc,
        ));
        let err = p
            .savepoint(
                8,
                &CommitConfig::default(),
                &GovernorConfig::default(),
                &[image("t", 50)],
            )
            .unwrap_err();
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        let after = p.page_accounting();
        assert_eq!(
            after.allocated - 2 - after.live,
            after.free,
            "partial savepoint must not leak pages: {after:?}"
        );
        assert_eq!(after.live, before.live, "old savepoint still live");
        // A healthy retry succeeds and recovery sees it.
        let v = p
            .savepoint(
                8,
                &CommitConfig::default(),
                &GovernorConfig::default(),
                &[image("t", 50)],
            )
            .unwrap();
        assert_eq!(v, 2);
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 2);
        assert_eq!(rec.images[0].l1_rows.len(), 50);
    }

    #[test]
    fn crash_between_flip_and_rotation_does_not_replay_stale_log() {
        // The window the epoch header closes: manifest v1 is durable but the
        // old log (epoch 0) still holds records whose rows v1's images
        // already contain. Replaying them would duplicate the rows.
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.log()
            .append(&LogRecord::Commit {
                txn: TxnId(1),
                ts: 9,
            })
            .unwrap();
        p.log().flush().unwrap();
        // Savepoint whose rotation "crashes".
        p.injector().arm(FaultPolicy::fail_nth(
            IoOp::LogRotate,
            0,
            FaultErrorKind::Eio,
        ));
        assert!(p
            .savepoint(
                10,
                &CommitConfig::default(),
                &GovernorConfig::default(),
                &[image("t", 10)]
            )
            .is_err());
        // The log is wedged: appending to the stale epoch would lose data.
        assert!(p.log().is_wedged());
        assert!(p
            .append_record(&LogRecord::Abort { txn: TxnId(9) })
            .is_err());
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.savepoint_version, 1, "manifest v1 is durable");
        assert!(
            rec.log_records.is_empty(),
            "stale epoch-0 records must not replay onto v1 images"
        );
        // Reopening reconciles: the log is rotated to the manifest's epoch.
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(p.log().epoch(), 1);
        assert!(!p.log().is_wedged());
    }

    #[test]
    fn repeated_io_failures_flip_read_only_degraded_mode() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.injector()
            .arm(FaultPolicy::fail_nth(IoOp::PageWrite, 0, FaultErrorKind::Eio).persistent());
        for i in 0..3 {
            assert!(p
                .savepoint(
                    i,
                    &CommitConfig::default(),
                    &GovernorConfig::default(),
                    &[image("t", 5)]
                )
                .is_err());
        }
        let hs = p.health_stats();
        assert!(hs.read_only, "{hs:?}");
        assert_eq!(hs.savepoint_failures, 3);
        assert_eq!(hs.consecutive_failures, 3);
        // Degraded: writes rejected even though the device is now healthy…
        p.injector().disarm();
        let err = p
            .append_record(&LogRecord::Abort { txn: TxnId(1) })
            .unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
        assert!(p
            .commit_record(&CommitConfig::default(), || {
                Ok((
                    LogRecord::Commit {
                        txn: TxnId(1),
                        ts: 1,
                    },
                    (),
                ))
            })
            .is_err());
        assert!(p
            .savepoint(
                9,
                &CommitConfig::default(),
                &GovernorConfig::default(),
                &[image("t", 5)]
            )
            .is_err());
        // …until the operator clears it.
        p.clear_degraded();
        assert!(!p.health_stats().read_only);
        p.savepoint(
            9,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 5)],
        )
        .unwrap();
    }

    #[test]
    fn corrupt_newest_superblock_falls_back() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(
            5,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 10)],
        )
        .unwrap(); // slot 1
        p.savepoint(
            8,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("t", 20)],
        )
        .unwrap(); // slot 0 (v2)
        drop(p);
        // Corrupt slot 0 (the newest, version 2).
        let path = dir.path().join("data.pages");
        let mut raw = std::fs::read(&path).unwrap();
        for b in raw.iter_mut().take(64) {
            *b ^= 0xFF;
        }
        std::fs::write(&path, &raw).unwrap();
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        // Falls back to version 1.
        assert_eq!(rec.savepoint_version, 1);
        assert_eq!(rec.images[0].l1_rows.len(), 10);
    }

    #[test]
    fn multiple_tables_per_savepoint() {
        let dir = tempdir().unwrap();
        let p = Persistence::open_with_page_size(dir.path(), 256).unwrap();
        p.savepoint(
            5,
            &CommitConfig::default(),
            &GovernorConfig::default(),
            &[image("a", 3), image("b", 7)],
        )
        .unwrap();
        drop(p);
        let rec = Persistence::recover_with_page_size(dir.path(), 256).unwrap();
        assert_eq!(rec.images.len(), 2);
        assert_eq!(rec.images[0].schema.name, "a");
        assert_eq!(rec.images[1].l1_rows.len(), 7);
    }
}
