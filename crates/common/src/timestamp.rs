//! MVCC timestamp conventions.
//!
//! The transaction manager hands out monotonically increasing commit
//! timestamps from a single atomic clock. Row versions carry a `begin` and an
//! `end` timestamp:
//!
//! * `begin == TXN_MARK | txn_id` — the version was written by a transaction
//!   that had not committed when the stamp was taken; readers resolve the
//!   real commit timestamp through the commit table.
//! * `end == COMMIT_TS_MAX` — the version is live (not deleted/superseded).
//!
//! Keeping these conventions in `hana-common` lets the row store, the column
//! stores and the merge engine all interpret version stamps identically
//! without depending on the transaction manager crate.

use std::fmt;

/// A commit timestamp (or a marked transaction id, see [`TXN_MARK`]).
pub type Timestamp = u64;

/// High bit set: this "timestamp" is actually a transaction id of an
/// uncommitted writer. Real commit timestamps never reach this bit.
pub const TXN_MARK: Timestamp = 1 << 63;

/// `end` stamp of a live (undeleted) version.
pub const COMMIT_TS_MAX: Timestamp = u64::MAX;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Encode this id as an uncommitted-writer stamp.
    #[inline]
    pub fn mark(self) -> Timestamp {
        debug_assert!(self.0 < TXN_MARK, "txn id overflow");
        TXN_MARK | self.0
    }

    /// Decode a marked stamp back into a transaction id, if it is one.
    #[inline]
    pub fn from_mark(ts: Timestamp) -> Option<TxnId> {
        if ts != COMMIT_TS_MAX && ts & TXN_MARK != 0 {
            Some(TxnId(ts & !TXN_MARK))
        } else {
            None
        }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// True if `ts` is a plain committed timestamp (not a mark, not "live").
#[inline]
pub fn is_committed_stamp(ts: Timestamp) -> bool {
    ts & TXN_MARK == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_round_trip() {
        let id = TxnId(42);
        let m = id.mark();
        assert!(!is_committed_stamp(m));
        assert_eq!(TxnId::from_mark(m), Some(id));
    }

    #[test]
    fn committed_stamps_are_not_marks() {
        assert!(is_committed_stamp(0));
        assert!(is_committed_stamp(123456));
        assert_eq!(TxnId::from_mark(123456), None);
    }

    #[test]
    fn live_sentinel_is_not_a_mark() {
        // COMMIT_TS_MAX has the high bit set but must never decode as a txn.
        assert_eq!(TxnId::from_mark(COMMIT_TS_MAX), None);
    }
}
