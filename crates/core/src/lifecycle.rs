//! Record-lifecycle orchestration on the unified table.
//!
//! * [`UnifiedTable::merge_l1`] — the incremental L1→L2 merge. The copy
//!   stream runs **without any lock** against an L1 snapshot, appending into
//!   the open L2's unpublished tail; publication (advance the L2 fence,
//!   truncate the L1 prefix, reconcile raced end stamps) is a brief
//!   exclusive section bounded by `l1_max_rows`, never by the stream length.
//!   If the open L2 was frozen by a delta merge while the copy ran, the run
//!   *abandons*: its unpublished appends stay invisible and die with the
//!   frozen L2, and the rows remain in L1 for a retry into the new open L2
//!   (the generation handoff that lets both merge kinds overlap).
//! * [`UnifiedTable::merge_delta`] — the delta-to-main merge: freeze the
//!   open L2 and open a fresh one (brief exclusive lock), build the new main
//!   **without any lock**, drain raced end stamps off-line against the
//!   finished build, then publish with a constant-time swap that re-applies
//!   only the residue. A failed merge keeps the frozen L2 and is retried
//!   later ("the system still operates with the new L2-delta and retries
//!   the merge").
//! * [`UnifiedTable::maybe_merge`] — the policy-driven entry point the
//!   [`MergeDaemon`](hana_merge::MergeDaemon) calls.
//!
//! `MergeConfig::legacy_blocking_publication` re-enables the old protocol
//! (stream + reconciliation inside the exclusive section) as the baseline
//! arm of the F7c writer-stall experiment.

use crate::table::UnifiedTable;
use hana_column::Pos;
use hana_common::{HanaError, Result, RowId, Timestamp};
use hana_merge::{
    classic_merge, decide_delta_merge, decide_l1_merge, l1_to_l2_merge, partial_merge,
    resort_merge, MergeDecision, MergeInput, MergeTarget,
};
use hana_persist::LogRecord;
use hana_store::{L2Delta, MainStore};
use rustc_hash::FxHashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Row/byte counts per stage (Fig 11's footprint axis).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StageStats {
    /// Unmerged L1 slots.
    pub l1_rows: usize,
    /// Rows in the open L2-delta (physical).
    pub l2_rows: usize,
    /// Rows in a frozen L2-delta awaiting merge.
    pub l2_frozen_rows: usize,
    /// Rows across all main parts.
    pub main_rows: usize,
    /// Main parts in the chain.
    pub main_parts: usize,
    /// Rows in the active main (0 if none).
    pub active_main_rows: usize,
    /// Approximate L1 bytes.
    pub l1_bytes: usize,
    /// Approximate L2 bytes (open + frozen).
    pub l2_bytes: usize,
    /// Approximate main bytes (including inverted indexes).
    pub main_bytes: usize,
    /// Main bytes without inverted indexes (pure data).
    pub main_data_bytes: usize,
}

impl UnifiedTable {
    /// Current per-stage statistics.
    pub fn stage_stats(&self) -> StageStats {
        let state = self.state.read();
        StageStats {
            l1_rows: self.l1.len(),
            l2_rows: state.l2.len(),
            l2_frozen_rows: state.l2_frozen.as_ref().map_or(0, |f| f.len()),
            main_rows: state.main.total_rows(),
            main_parts: state.main.parts().len(),
            active_main_rows: state.main.active_rows(),
            l1_bytes: self.l1.approx_bytes(),
            l2_bytes: state.l2.approx_bytes()
                + state.l2_frozen.as_ref().map_or(0, |f| f.approx_bytes()),
            main_bytes: state.main.approx_bytes(),
            main_data_bytes: state.main.data_bytes(),
        }
    }

    /// Run one L1→L2 merge step (up to `l1_max_rows` slots). Returns the
    /// number of rows moved.
    pub fn merge_l1(&self) -> Result<usize> {
        let _m = self.l1_merge_lock.lock();
        if self.config.merge.legacy_blocking_publication {
            return self.merge_l1_blocking();
        }

        // Step 1 (brief shared lock): pin the open L2 and remember its
        // generation for the publication-time handoff check.
        let (l2, gen) = {
            let state = self.state.read();
            (Arc::clone(&state.l2), state.l2.generation())
        };
        // L1 positions are never reused, so stale queue entries from an
        // earlier run are harmless — but start clean anyway. The flag must
        // be up before the copy reads any stamp.
        self.pending_l1_ends.lock().clear();
        self.l1_merge_running.store(true, Ordering::SeqCst);

        // Step 2 (no lock): copy the settled L1 prefix into the open L2's
        // unpublished tail. A racing freeze may close `l2` under us; the
        // append then fails retryably and the next run targets the new L2.
        let outcome = match l1_to_l2_merge(
            &self.l1,
            &l2,
            &self.mgr,
            self.history.is_some(),
            self.config.l1_max_rows.max(1),
        ) {
            Ok(o) => o,
            Err(e) => {
                self.l1_merge_running.store(false, Ordering::SeqCst);
                return Err(e);
            }
        };
        let moved = outcome.moved.len();
        if moved == 0 && outcome.dropped.is_empty() {
            self.l1_merge_running.store(false, Ordering::SeqCst);
            return Ok(0);
        }

        // Step 3 (no lock): drain end stamps that raced the copy, applying
        // them to the L2 copies while still unpublished. This is the fast
        // path that keeps the exclusive section's residue small.
        let pos_map: FxHashMap<u64, Pos> = outcome
            .moved
            .iter()
            .map(|&(_, l1_pos, l2_pos)| (l1_pos, l2_pos))
            .collect();
        let apply = |queued: Vec<(u64, Timestamp)>| {
            for (l1_pos, ts) in queued {
                if let Some(&l2_pos) = pos_map.get(&l1_pos) {
                    l2.store_end(l2_pos, ts);
                }
            }
        };
        apply(std::mem::take(&mut *self.pending_l1_ends.lock()));

        // Step 4 (brief exclusive lock): publish — or abandon if the open
        // L2 changed generation (a delta merge froze it mid-copy).
        let published = {
            let state = self.state.write();
            let held = std::time::Instant::now();
            let published = if state.l2.generation() != gen {
                false
            } else {
                apply(std::mem::take(&mut *self.pending_l1_ends.lock()));
                // Correctness anchor (the queue alone has a store-ordering
                // race): every moved slot's end stamp is re-read here.
                // Writers only stamp ends inside `state.read()` sections,
                // all of which happened-before this `state.write()`.
                for &(_, l1_pos, l2_pos) in &outcome.moved {
                    if let Some(end) = self.l1.with_slot(l1_pos, |s| s.end()) {
                        if end != l2.end(l2_pos) {
                            l2.store_end(l2_pos, end);
                        }
                    }
                }
                l2.publish_all();
                self.l1.truncate_prefix(outcome.truncate_upto);
                if let Some(h) = &self.history {
                    for v in outcome.historic {
                        h.push(v);
                    }
                }
                true
            };
            drop(state);
            self.note_publication_stall(held.elapsed());
            published
        };
        self.l1_merge_running.store(false, Ordering::SeqCst);
        if !published {
            // Unpublished appends die with the frozen L2; the rows are
            // still in L1 and the next run re-merges them into the new L2.
            return Err(HanaError::Merge(
                "open L2 frozen during L1→L2 copy; retry against the new L2".into(),
            ));
        }
        if moved > 0 {
            // Best-effort: the rows have already moved, recovery replays
            // them from their first-appearance records and ignores merge
            // events, and a degraded log must not block in-memory memory
            // management.
            let _ = self.redo(&LogRecord::MergeEvent {
                table: self.id,
                kind: 0,
                l2_generation: gen,
            });
        }
        Ok(moved)
    }

    /// The pre-non-blocking L1→L2 protocol: stream + publication both under
    /// the exclusive state lock. Baseline arm of the F7c experiment.
    fn merge_l1_blocking(&self) -> Result<usize> {
        let state = self.state.write();
        let held = std::time::Instant::now();
        let outcome = l1_to_l2_merge(
            &self.l1,
            &state.l2,
            &self.mgr,
            self.history.is_some(),
            self.config.l1_max_rows.max(1),
        )?;
        let moved = outcome.moved.len();
        if moved > 0 || !outcome.dropped.is_empty() {
            state.l2.publish_all();
            self.l1.truncate_prefix(outcome.truncate_upto);
            if let Some(h) = &self.history {
                for v in outcome.historic {
                    h.push(v);
                }
            }
        }
        let gen = state.l2.generation();
        drop(state);
        self.note_publication_stall(held.elapsed());
        if moved > 0 {
            let _ = self.redo(&LogRecord::MergeEvent {
                table: self.id,
                kind: 0,
                l2_generation: gen,
            });
        }
        Ok(moved)
    }

    /// Drain the whole L1 into the L2 (repeated merge steps until empty or
    /// blocked). Returns rows moved.
    pub fn drain_l1(&self) -> Result<usize> {
        let mut total = 0;
        loop {
            let before = self.l1.len();
            if before == 0 {
                break;
            }
            let moved = self.merge_l1()?;
            total += moved;
            if self.l1.len() == before {
                break; // blocked on an in-flight transaction
            }
        }
        Ok(total)
    }

    /// Run a delta-to-main merge with an explicit strategy decision.
    pub fn merge_delta_as(&self, decision: MergeDecision) -> Result<()> {
        if decision == MergeDecision::NotYet {
            return Ok(());
        }
        let _m = self.delta_merge_lock.lock();

        // Phase 1 (brief exclusive lock): freeze the open L2-delta unless a
        // previous failed merge left one frozen, and open a fresh L2. The
        // frozen L2 is *not* blindly published: an L1→L2 copy racing this
        // freeze may have appended unreconciled rows past the fence, and
        // those must stay invisible (that run abandons on the generation
        // change). Everything legitimately in the L2 is already published —
        // both producers publish inside their own critical sections.
        let (frozen, main) = {
            let mut state = self.state.write();
            let held = std::time::Instant::now();
            if state.l2_frozen.is_none() {
                let fresh = Arc::new(L2Delta::new(self.schema.clone(), self.alloc_generation()));
                let old = std::mem::replace(&mut state.l2, fresh);
                old.close();
                state.l2_frozen = Some(old);
            }
            self.pending_ends.lock().clear();
            self.delta_merge_running.store(true, Ordering::SeqCst);
            let pinned = (
                Arc::clone(state.l2_frozen.as_ref().unwrap()),
                Arc::clone(&state.main),
            );
            drop(state);
            self.note_publication_stall(held.elapsed());
            pinned
        };

        // Phase 2 (no lock): build the new main. The per-column work fans
        // out over the configured worker count (0 = auto).
        let generation = self.alloc_generation();
        let input = MergeInput {
            main: &main,
            l2: &frozen,
            watermark: self.mgr.watermark(),
            block_size: self.config.block_size,
            generation,
            parallel: self.config.merge.column_parallelism,
        };
        let history = self.history.as_ref();
        let built = match decision {
            MergeDecision::Classic | MergeDecision::Consolidate => {
                classic_merge(&input, &self.mgr, history).map(|o| (o.new_main, o.metrics))
            }
            MergeDecision::ReSorting => resort_merge(&input, &self.mgr, history)
                .map(|o| (o.merge.new_main, o.merge.metrics)),
            MergeDecision::Partial => {
                partial_merge(&input, &self.mgr, history).map(|o| (o.new_main, o.metrics))
            }
            MergeDecision::NotYet => unreachable!(),
        };
        let (new_main, metrics) = match built {
            Ok(m) => m,
            Err(e) => {
                // Keep the frozen L2; a later attempt retries the merge.
                self.delta_merge_running.store(false, Ordering::SeqCst);
                return Err(e);
            }
        };

        if self.config.merge.legacy_blocking_publication {
            // Legacy protocol: index building + full pending replay inside
            // the exclusive section (work proportional to the new main).
            let mut state = self.state.write();
            let held = std::time::Instant::now();
            let pending = std::mem::take(&mut *self.pending_ends.lock());
            if !pending.is_empty() {
                for part in new_main
                    .parts()
                    .iter()
                    .filter(|p| p.generation() == generation)
                {
                    let index: FxHashMap<_, _> = part
                        .row_ids()
                        .iter()
                        .enumerate()
                        .map(|(pos, id)| (*id, pos as u32))
                        .collect();
                    for (row_id, ts) in &pending {
                        if let Some(&pos) = index.get(row_id) {
                            part.store_end(pos, *ts);
                        }
                    }
                }
            }
            state.main = Arc::new(new_main);
            state.l2_frozen = None;
            *self.last_merge_metrics.lock() = Some(metrics);
            self.delta_merge_running.store(false, Ordering::SeqCst);
            drop(state);
            self.note_publication_stall(held.elapsed());
        } else {
            // Phase 2b (no lock): index the freshly built part(s) — rows of
            // this merge live in parts stamped `generation`; passive parts
            // of a partial merge are shared `Arc`s whose end stamps writers
            // hit directly — and drain the bulk of the raced end stamps
            // against the still-unpublished build.
            let index: FxHashMap<RowId, (usize, u32)> = new_main
                .parts()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.generation() == generation)
                .flat_map(|(pi, p)| {
                    p.row_ids()
                        .iter()
                        .enumerate()
                        .map(move |(pos, id)| (*id, (pi, pos as u32)))
                        .collect::<Vec<_>>()
                })
                .collect();
            let apply = |new_main: &MainStore, queued: Vec<(RowId, Timestamp)>| {
                for (row_id, ts) in queued {
                    if let Some(&(pi, pos)) = index.get(&row_id) {
                        new_main.parts()[pi].store_end(pos, ts);
                    }
                }
            };
            apply(&new_main, std::mem::take(&mut *self.pending_ends.lock()));

            // Phase 3 (brief exclusive lock): drain the residue through the
            // prebuilt index — bounded by the end stamps that raced the one
            // off-line drain above, not by table size — then swap.
            let mut state = self.state.write();
            let held = std::time::Instant::now();
            apply(&new_main, std::mem::take(&mut *self.pending_ends.lock()));
            state.main = Arc::new(new_main);
            state.l2_frozen = None;
            *self.last_merge_metrics.lock() = Some(metrics);
            self.delta_merge_running.store(false, Ordering::SeqCst);
            drop(state);
            self.note_publication_stall(held.elapsed());
        }
        // Best-effort, after publication: the new main is already visible
        // and correct without this record (recovery ignores merge events),
        // so a log failure here must not turn a succeeded merge into an
        // error.
        let _ = self.redo(&LogRecord::MergeEvent {
            table: self.id,
            kind: 1,
            l2_generation: frozen.generation(),
        });
        Ok(())
    }

    /// Metrics of the most recent successful delta-to-main merge.
    pub fn last_merge_metrics(&self) -> Option<hana_merge::MergeMetrics> {
        *self.last_merge_metrics.lock()
    }

    /// Force a consolidating full merge (L1 → L2 → single-part main).
    pub fn force_full_merge(&self) -> Result<()> {
        self.drain_l1()?;
        self.merge_delta_as(MergeDecision::Consolidate)
    }

    /// Policy-driven merge check: L1 threshold, then delta threshold (or a
    /// pending frozen L2 from a failed merge). Returns whether anything
    /// merged.
    pub fn maybe_merge_once(&self) -> Result<bool> {
        let mut did = false;
        if decide_l1_merge(&self.config, self.l1.len()) {
            did |= self.merge_l1()? > 0;
        }
        let (decision, has_frozen) = {
            let state = self.state.read();
            let d = decide_delta_merge(&self.config, &state.main, state.l2.len());
            (d, state.l2_frozen.is_some())
        };
        if has_frozen {
            // Retry the interrupted merge with the configured strategy.
            let retry = if decision == MergeDecision::NotYet {
                MergeDecision::Classic
            } else {
                decision
            };
            self.merge_delta_as(retry)?;
            did = true;
        } else if decision != MergeDecision::NotYet {
            self.merge_delta_as(decision)?;
            did = true;
        }
        Ok(did)
    }
}

impl MergeTarget for UnifiedTable {
    fn maybe_merge(&self) -> Result<bool> {
        match self.maybe_merge_once() {
            Ok(did) => Ok(did),
            // Retryable merge failures are expected under load.
            Err(HanaError::Merge(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn last_merge_metrics(&self) -> Option<hana_merge::MergeMetrics> {
        UnifiedTable::last_merge_metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, MergeStrategy, Schema, TableConfig, Value};
    use hana_txn::{IsolationLevel, TxnManager};

    fn table(cfg: TableConfig) -> (Arc<TxnManager>, Arc<UnifiedTable>) {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("city", DataType::Str),
            ],
        )
        .unwrap();
        let t = UnifiedTable::standalone(schema, cfg, Arc::clone(&mgr));
        (mgr, t)
    }

    fn fill(mgr: &Arc<TxnManager>, t: &Arc<UnifiedTable>, lo: i64, hi: i64) {
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in lo..hi {
            t.insert(
                &txn,
                vec![Value::Int(i), Value::str(format!("city{}", i % 5))],
            )
            .unwrap();
        }
        txn.commit().unwrap();
    }

    #[test]
    fn full_lifecycle_preserves_queries() {
        let (mgr, t) = table(TableConfig::small());
        fill(&mgr, &t, 0, 50);
        // Stage 1: everything in L1.
        let r = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&r).stage_row_counts().0, 50);
        // Stage 2: L1 → L2.
        let moved = t.drain_l1().unwrap();
        assert_eq!(moved, 50);
        let r = mgr.begin(IsolationLevel::Transaction);
        let (l1, l2, main) = t.read(&r).stage_row_counts();
        assert_eq!((l1, l2, main), (0, 50, 0));
        assert_eq!(t.read(&r).count(), 50);
        // Stage 3: L2 → main.
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        let r = mgr.begin(IsolationLevel::Transaction);
        let (l1, l2, main) = t.read(&r).stage_row_counts();
        assert_eq!((l1, l2, main), (0, 0, 50));
        assert_eq!(t.read(&r).count(), 50);
        // Point query still works from the main.
        let rows = t.read(&r).point(0, &Value::Int(17)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::str("city2"));
    }

    #[test]
    fn old_reader_view_survives_merges() {
        let (mgr, t) = table(TableConfig::small());
        fill(&mgr, &t, 0, 30);
        let reader = mgr.begin(IsolationLevel::Transaction);
        let view = t.read(&reader); // pinned before any merge
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        fill(&mgr, &t, 30, 40);
        // The pinned view still sees exactly the original 30 rows, once.
        assert_eq!(view.count(), 30);
        // A fresh view sees 40.
        let r2 = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&r2).count(), 40);
    }

    #[test]
    fn updates_and_deletes_across_stages() {
        let (mgr, t) = table(TableConfig::small());
        fill(&mgr, &t, 0, 10);
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        // Update a main-resident row; delete another.
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.update_where(
            &txn,
            hana_common::ColumnId(0),
            &Value::Int(3),
            &[(hana_common::ColumnId(1), Value::str("updated"))],
        )
        .unwrap();
        t.delete_where(&txn, hana_common::ColumnId(0), &Value::Int(7))
            .unwrap();
        txn.commit().unwrap();
        t.finish_txn(hana_common::TxnId(0)); // no-op sanity
        let r = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&r);
        assert_eq!(read.count(), 9);
        assert_eq!(
            read.point(0, &Value::Int(3)).unwrap()[0][1],
            Value::str("updated")
        );
        assert!(read.point(0, &Value::Int(7)).unwrap().is_empty());
        // Merge everything again: the update/delete survive the rebuild.
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        let r = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&r);
        assert_eq!(read.count(), 9);
        assert_eq!(
            read.point(0, &Value::Int(3)).unwrap()[0][1],
            Value::str("updated")
        );
        assert!(read.point(0, &Value::Int(7)).unwrap().is_empty());
    }

    #[test]
    fn partial_merge_chain_through_policy() {
        let cfg = TableConfig {
            l1_max_rows: 8,
            l2_max_rows: 16,
            merge_strategy: MergeStrategy::Auto,
            active_main_max_fraction: 0.5,
            ..TableConfig::default()
        };
        let (mgr, t) = table(cfg);
        for round in 0..6 {
            fill(&mgr, &t, round * 20, (round + 1) * 20);
            while t.maybe_merge_once().unwrap() {}
        }
        let r = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&r).count(), 120);
        let stats = t.stage_stats();
        assert_eq!(stats.l1_rows + stats.l2_rows + stats.main_rows, 120);
        // Every row still point-queryable.
        for i in [0i64, 25, 77, 119] {
            assert_eq!(
                t.read(&r).point(0, &Value::Int(i)).unwrap().len(),
                1,
                "id {i}"
            );
        }
    }

    #[test]
    fn merge_blocked_by_inflight_txn_retries() {
        let (mgr, t) = table(TableConfig::small());
        fill(&mgr, &t, 0, 5);
        t.drain_l1().unwrap();
        // An uncommitted row sits in L2 via bulk load.
        let open = mgr.begin(IsolationLevel::Transaction);
        t.bulk_load(&open, vec![vec![Value::Int(100), Value::str("pending")]])
            .unwrap();
        let err = t.merge_delta_as(MergeDecision::Classic).unwrap_err();
        assert!(err.is_retryable());
        // Reads still work mid-failure (frozen L2 still served).
        let r = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&r).count(), 5);
        // Commit and retry.
        let mut open = open;
        open.commit().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        let r = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&r).count(), 6);
        assert_eq!(t.stage_stats().main_rows, 6);
    }

    #[test]
    fn resorting_merge_through_table() {
        let cfg = TableConfig::small().with_strategy(MergeStrategy::ReSorting);
        let (mgr, t) = table(cfg);
        fill(&mgr, &t, 0, 64);
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::ReSorting).unwrap();
        let r = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&r);
        assert_eq!(read.count(), 64);
        for i in [0i64, 31, 63] {
            assert_eq!(read.point(0, &Value::Int(i)).unwrap().len(), 1);
        }
    }

    #[test]
    fn delete_racing_delta_merge_is_not_lost() {
        // Deterministic version of the race: freeze, delete a frozen-L2 row
        // mid-"build" (simulated by doing it between phases via the public
        // API timing), publish, verify the delete survived.
        let (mgr, t) = table(TableConfig::small());
        fill(&mgr, &t, 0, 10);
        t.drain_l1().unwrap();
        // Run the merge on one thread while another deletes continuously.
        let t2 = Arc::clone(&t);
        let mgr2 = Arc::clone(&mgr);
        let deleter = std::thread::spawn(move || {
            for i in 0..10 {
                let mut txn = mgr2.begin(IsolationLevel::Transaction);
                let _ = t2.delete_where(&txn, hana_common::ColumnId(0), &Value::Int(i));
                let _ = txn.commit();
                t2.finish_txn(txn.id());
            }
        });
        // Merge until it sticks (in-flight deleters cause retryable fails).
        loop {
            match t.merge_delta_as(MergeDecision::Classic) {
                Ok(()) => break,
                Err(e) if e.is_retryable() => std::thread::yield_now(),
                Err(e) => panic!("{e}"),
            }
        }
        deleter.join().unwrap();
        // After everything settles every row 0..10 must be gone.
        let r = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&r).count(), 0, "deletes must survive the merge");
    }

    #[test]
    fn stats_reflect_stages() {
        let (mgr, t) = table(TableConfig::small());
        fill(&mgr, &t, 0, 20);
        let s = t.stage_stats();
        assert_eq!(s.l1_rows, 20);
        assert!(s.l1_bytes > 0);
        t.drain_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
        let s = t.stage_stats();
        assert_eq!(s.main_rows, 20);
        assert_eq!(s.main_parts, 1);
        assert!(s.main_bytes > 0);
        assert!(s.main_data_bytes <= s.main_bytes);
    }
}
