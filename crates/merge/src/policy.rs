//! Cost-based merge scheduling.
//!
//! "Merges into the active main and especially full merges to create a new
//! main structure are scheduled with a very low frequency. The merge of L1-
//! to L2-delta, in contrast, can be performed incrementally" (§4.4) —
//! L1 merges trigger on a small row threshold, delta-to-main merges on a
//! large one, and the *strategy* for the latter is picked here:
//! [`MergeDecision::Partial`] while the active main stays below the
//! configured fraction of the table, consolidating [`MergeDecision::Consolidate`]
//! (a full classic merge over the chain) once it outgrows it — "the major
//! advantage of the concept is to delay a full merge".

use hana_common::{MergeStrategy, TableConfig};
use hana_store::MainStore;

/// What the scheduler decided for a delta-to-main merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeDecision {
    /// Below threshold: no merge now.
    NotYet,
    /// Full classic merge (§4.1).
    Classic,
    /// Full re-sorting merge (§4.2).
    ReSorting,
    /// Partial merge into the active main (§4.3).
    Partial,
    /// Consolidating full merge collapsing passive+active into one part.
    Consolidate,
}

/// Should the L1-delta be merged into the L2-delta?
pub fn decide_l1_merge(cfg: &TableConfig, l1_rows: usize) -> bool {
    l1_rows >= cfg.l1_max_rows
}

/// Decide how (and whether) to merge the L2-delta into the main.
pub fn decide_delta_merge(cfg: &TableConfig, main: &MainStore, l2_rows: usize) -> MergeDecision {
    if l2_rows < cfg.l2_max_rows {
        return MergeDecision::NotYet;
    }
    let total = main.total_rows() + l2_rows;
    let active_after = main.active_rows() + l2_rows;
    let over_fraction =
        total > 0 && (active_after as f64) > cfg.active_main_max_fraction * total as f64;
    match cfg.merge_strategy {
        MergeStrategy::Classic => MergeDecision::Classic,
        MergeStrategy::ReSorting => MergeDecision::ReSorting,
        MergeStrategy::Partial => {
            if over_fraction && !main.passive_parts().is_empty() {
                MergeDecision::Consolidate
            } else {
                MergeDecision::Partial
            }
        }
        MergeStrategy::Auto => {
            if main.is_empty() {
                // First merge: build the initial (passive) main outright.
                MergeDecision::Classic
            } else if over_fraction {
                MergeDecision::Consolidate
            } else {
                MergeDecision::Partial
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema};

    fn schema() -> Schema {
        Schema::new("t", vec![ColumnDef::new("x", DataType::Int)]).unwrap()
    }

    fn cfg(strategy: MergeStrategy) -> TableConfig {
        TableConfig {
            l1_max_rows: 10,
            l2_max_rows: 100,
            merge_strategy: strategy,
            active_main_max_fraction: 0.25,
            ..TableConfig::default()
        }
    }

    #[test]
    fn l1_threshold() {
        let c = cfg(MergeStrategy::Auto);
        assert!(!decide_l1_merge(&c, 9));
        assert!(decide_l1_merge(&c, 10));
    }

    #[test]
    fn below_threshold_no_merge() {
        let c = cfg(MergeStrategy::Auto);
        let main = MainStore::empty(schema());
        assert_eq!(decide_delta_merge(&c, &main, 99), MergeDecision::NotYet);
    }

    #[test]
    fn explicit_strategies_respected() {
        let main = MainStore::empty(schema());
        assert_eq!(
            decide_delta_merge(&cfg(MergeStrategy::Classic), &main, 100),
            MergeDecision::Classic
        );
        assert_eq!(
            decide_delta_merge(&cfg(MergeStrategy::ReSorting), &main, 100),
            MergeDecision::ReSorting
        );
        assert_eq!(
            decide_delta_merge(&cfg(MergeStrategy::Partial), &main, 100),
            MergeDecision::Partial
        );
    }

    #[test]
    fn auto_bootstraps_with_classic_then_goes_partial() {
        let c = cfg(MergeStrategy::Auto);
        let empty = MainStore::empty(schema());
        assert_eq!(decide_delta_merge(&c, &empty, 100), MergeDecision::Classic);
        // A large passive main with a small delta: partial.
        let main = fake_main(10_000, 0);
        assert_eq!(decide_delta_merge(&c, &main, 100), MergeDecision::Partial);
    }

    #[test]
    fn auto_consolidates_when_active_outgrows_fraction() {
        let c = cfg(MergeStrategy::Auto);
        // Passive 1000, active 400 ⇒ with 100 more the active fraction is
        // 500/1500 = 0.33 > 0.25 ⇒ consolidate.
        let main = fake_main(1000, 400);
        assert_eq!(
            decide_delta_merge(&c, &main, 100),
            MergeDecision::Consolidate
        );
    }

    /// Build a main with `passive` rows in part 0 and optionally `active`
    /// rows in an active part, values disjoint between parts.
    fn fake_main(passive: usize, active: usize) -> MainStore {
        use hana_common::{RowId, Value, COMMIT_TS_MAX};
        use hana_dict::SortedDict;
        use hana_store::{MainColumnData, MainPart};
        use std::sync::Arc;
        let mk = |n: usize, offset: i64, base: u32, gen: u64| {
            let dict =
                SortedDict::from_values((0..n as i64).map(|i| Value::Int(i + offset)).collect());
            let codes: Vec<u32> = (0..n as u32).map(|i| i + base).collect();
            Arc::new(MainPart::build(
                gen,
                vec![MainColumnData { dict, base, codes }],
                (0..n as u64).map(|i| RowId(i + offset as u64)).collect(),
                vec![1; n],
                vec![COMMIT_TS_MAX; n],
                64,
            ))
        };
        let mut parts = vec![mk(passive, 0, 0, 0)];
        if active > 0 {
            parts.push(mk(active, 1_000_000, passive as u32, 1));
        }
        MainStore::with_active(schema(), parts, 1)
    }
}
