//! Property tests for the on-disk integrity envelope.
//!
//! The envelope's whole job is a yes/no question — "are these the bytes
//! that were sealed, under this kind and salt?" — so the properties are
//! exhaustive answers to it: an undamaged envelope always verifies and
//! returns the exact payload; any single flipped bit, any truncation, any
//! wrong kind and any wrong salt is always detected. Runs at the default
//! case count per push and at `PROPTEST_CASES=4096` in the nightly deep
//! suite.

use hana_persist::{open_envelope, seal, ArtifactKind, EnvelopeError, ENVELOPE_HEADER};
use proptest::prelude::*;

fn kind_for(tag: u8) -> ArtifactKind {
    ArtifactKind::ALL[tag as usize % ArtifactKind::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: seal then open returns the payload verbatim, for every
    /// artifact kind, payload and salt — including with trailing padding,
    /// which a page-sized buffer always has.
    #[test]
    fn undamaged_envelope_verifies(
        payload in prop::collection::vec(any::<u8>(), 0..600),
        kind_tag in any::<u8>(),
        salt in any::<u64>(),
        pad in 0usize..32,
    ) {
        let kind = kind_for(kind_tag);
        let mut sealed = seal(kind, salt, &payload);
        sealed.resize(sealed.len() + pad, 0);
        let got = open_envelope(kind, salt, &sealed).expect("pristine envelope must verify");
        prop_assert_eq!(got, &payload[..]);
    }

    /// Detection: flipping any single bit anywhere in the sealed region
    /// (header, length, CRC or payload) is always detected — the open
    /// either refuses the bytes as not-an-envelope or reports corruption,
    /// but never returns a payload.
    #[test]
    fn any_single_bit_flip_is_detected(
        payload in prop::collection::vec(any::<u8>(), 0..600),
        kind_tag in any::<u8>(),
        salt in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let kind = kind_for(kind_tag);
        let mut sealed = seal(kind, salt, &payload);
        let bit = (flip_seed % (sealed.len() as u64 * 8)) as usize;
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            open_envelope(kind, salt, &sealed).is_err(),
            "flipped bit {} of {} sealed bytes went undetected",
            bit,
            sealed.len()
        );
    }

    /// Truncation anywhere inside the sealed bytes is detected (short
    /// header reads as not-an-envelope; short payload as corruption).
    #[test]
    fn truncation_is_detected(
        payload in prop::collection::vec(any::<u8>(), 1..600),
        kind_tag in any::<u8>(),
        salt in any::<u64>(),
        cut_seed in any::<u64>(),
    ) {
        let kind = kind_for(kind_tag);
        let sealed = seal(kind, salt, &payload);
        let keep = (cut_seed % sealed.len() as u64) as usize;
        prop_assert!(open_envelope(kind, salt, &sealed[..keep]).is_err());
    }

    /// Kind and salt are part of the seal: bytes sealed for one artifact
    /// kind or salt never verify under another (a stale or misdirected
    /// read cannot masquerade as the requested artifact).
    #[test]
    fn wrong_kind_or_salt_is_detected(
        payload in prop::collection::vec(any::<u8>(), 0..600),
        kind_tag in any::<u8>(),
        salt in any::<u64>(),
        other_salt in any::<u64>(),
    ) {
        let kind = kind_for(kind_tag);
        let other_kind = ArtifactKind::ALL[(kind_tag as usize + 1) % ArtifactKind::ALL.len()];
        let sealed = seal(kind, salt, &payload);
        prop_assert!(matches!(
            open_envelope(other_kind, salt, &sealed),
            Err(EnvelopeError::Corrupt(_))
        ));
        if other_salt != salt {
            prop_assert!(matches!(
                open_envelope(kind, other_salt, &sealed),
                Err(EnvelopeError::Corrupt(_))
            ));
        }
    }

    /// The header overhead is constant: a sealed artifact is exactly
    /// `ENVELOPE_HEADER` bytes larger than its payload.
    #[test]
    fn overhead_is_exactly_one_header(
        payload in prop::collection::vec(any::<u8>(), 0..600),
        kind_tag in any::<u8>(),
        salt in any::<u64>(),
    ) {
        let kind = kind_for(kind_tag);
        prop_assert_eq!(seal(kind, salt, &payload).len(), payload.len() + ENVELOPE_HEADER);
    }
}
