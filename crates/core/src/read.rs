//! Statement-scoped read views.
//!
//! A [`TableRead`] pins everything one statement may see: the MVCC snapshot,
//! an L1 segment view, the L2 structures with their row-count fences, and
//! the main chain `Arc`. Merges swap structures for *new* views; an existing
//! view keeps reading its pinned ones — the paper's "all running operations
//! either see the full L1-delta and the old end-of-delta border or the
//! truncated version … with the expanded version of the L2-delta", and
//! §4.1's "keep the old and the new versions … until all database operations
//! of open transactions … have finished".
//!
//! Main-store access runs through the parallel scan engine: per-part
//! visibility resolves once through the wholly-visible summary or a cached
//! per-snapshot bitmap (see [`MainPart::cached_visibility`]), then fixed-size
//! row chunks fan out over a bounded worker pool
//! ([`hana_merge::map_indexed`]) and reassemble in chain order, so a
//! parallel scan is bit-identical to the serial one.

use crate::filter::{zone_admits, ColumnPredicate, ScanStats};
use crate::scan::{plan_chunks, plan_ranges, PartVisibility};
use crate::table::UnifiedTable;
use hana_column::kernel::refine_bitmap;
use hana_column::{Bitmap, CodeMatcher, Pos};
use hana_common::{HanaError, Result, RowId, Timestamp, TxnId, Value};
use hana_dict::GlobalSortedDict;
use hana_merge::{effective_workers, map_indexed};
use hana_rowstore::L1Snapshot;
use hana_store::{L2Delta, MainStore, PartHit, VisBitmap, L2_NULL_CODE};
use hana_txn::{version_visible, Snapshot, Transaction};
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[allow(unused_imports)] // referenced by the module docs
use hana_store::MainPart;

/// A consistent, merge-proof view of one table under one snapshot.
pub struct TableRead {
    table: Arc<UnifiedTable>,
    snap: Snapshot,
    l1: L1Snapshot,
    l2: Arc<L2Delta>,
    l2_fence: Pos,
    l2_frozen: Option<(Arc<L2Delta>, Pos)>,
    main: Arc<MainStore>,
    /// Visibility-bitmap cache hits observed through this view.
    cache_hits: AtomicU64,
    /// Visibility bitmaps this view had to compute from raw stamps.
    cache_misses: AtomicU64,
    /// Set when this view is one shard of a partition fan-out: chunk-level
    /// parallelism is suppressed so the partition-level fan-out alone
    /// sizes the thread pool (see `PartitionedRead`).
    serial_shard: bool,
}

/// A visible row surfaced by a scan.
#[derive(Debug, Clone, PartialEq)]
pub struct VisibleRow {
    /// Stable record id.
    pub row_id: RowId,
    /// The row payload.
    pub values: Vec<Value>,
}

impl UnifiedTable {
    /// Open a read view for one statement of `txn`.
    pub fn read(self: &Arc<Self>, txn: &Transaction) -> TableRead {
        self.read_at(txn.read_snapshot())
    }

    /// Open a read view under an explicit snapshot (time travel uses
    /// `Snapshot::at(ts)`).
    pub fn read_at(self: &Arc<Self>, snap: Snapshot) -> TableRead {
        let state = self.state.read();
        TableRead {
            snap,
            l1: self.l1.snapshot(),
            l2: Arc::clone(&state.l2),
            l2_fence: state.l2.published_len(),
            l2_frozen: state
                .l2_frozen
                .as_ref()
                .map(|f| (Arc::clone(f), f.published_len())),
            main: Arc::clone(&state.main),
            table: Arc::clone(self),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            serial_shard: false,
        }
    }
}

/// Materialize one L2 row under a projection. `narrow` returns only the
/// projected columns (in projection order); otherwise unprojected columns
/// are `Null` placeholders so downstream column indexes stay stable.
fn l2_row(
    l2: &L2Delta,
    pos: Pos,
    arity: usize,
    proj: Option<&[usize]>,
    narrow: bool,
) -> Vec<Value> {
    match proj {
        None => l2.row(pos),
        Some(cols) if narrow => cols.iter().map(|&c| l2.value(pos, c)).collect(),
        Some(cols) => {
            let mut row = vec![Value::Null; arity];
            for &c in cols {
                row[c] = l2.value(pos, c);
            }
            row
        }
    }
}

/// Materialize an L1 slot's values under a projection, cloning only the
/// columns the caller asked for.
fn slot_row(values: &[Value], proj: Option<&[usize]>, narrow: bool) -> Vec<Value> {
    match proj {
        None => values.to_vec(),
        Some(cols) if narrow => cols.iter().map(|&c| values[c].clone()).collect(),
        Some(cols) => {
            let mut row = vec![Value::Null; values.len()];
            for &c in cols {
                row[c] = values[c].clone();
            }
            row
        }
    }
}

impl TableRead {
    /// The snapshot this view reads under.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snap
    }

    /// Mark this view as one shard of a partition fan-out: chunk-level
    /// parallelism is suppressed so only the partition level fans out.
    pub(crate) fn set_serial_shard(&mut self) {
        self.serial_shard = true;
    }

    /// The table's (database-wide) resource governor — the engine layer
    /// takes scan admission tokens through this.
    pub fn governor(&self) -> &Arc<crate::governor::ResourceGovernor> {
        self.table.governor()
    }

    /// The pinned main chain (exposed for engine-layer operators).
    pub fn main(&self) -> &MainStore {
        &self.main
    }

    /// `(hits, misses)` of the per-part visibility-bitmap cache as seen by
    /// this view. A *hit* reused a bitmap cached by an earlier statement at
    /// the same snapshot; a *miss* computed one from raw MVCC stamps.
    /// Wholly-visible parts bypass the bitmaps entirely and count as
    /// neither.
    pub fn vis_cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    fn visible(&self, begin: Timestamp, end: Timestamp) -> bool {
        version_visible(&self.table.mgr, &self.snap, begin, end)
    }

    fn schema_col(&self, col: usize) -> Result<()> {
        if col >= self.table.schema.arity() {
            return Err(HanaError::Schema(format!(
                "column index {col} out of range for {}",
                self.table.schema.name
            )));
        }
        Ok(())
    }

    fn check_projection(&self, proj: Option<&[usize]>) -> Result<()> {
        if let Some(cols) = proj {
            for &c in cols {
                self.schema_col(c)?;
            }
        }
        Ok(())
    }

    /// Resolve the scan fan-out degree for `jobs` chunks of work: the
    /// configured `scan_parallelism`, clamped by the governor (never more
    /// workers than cores; down to `min_scan_parallelism` while the OLTP
    /// signal is hot) and additionally forced serial when this read is one
    /// shard of a partition fan-out (the parallelism then lives at the
    /// partition level — nesting both fan-outs oversubscribes the pool).
    fn scan_workers(&self, jobs: usize) -> usize {
        if jobs <= 1 || self.serial_shard {
            return 1;
        }
        let requested = self.table.config.scan.scan_parallelism;
        if requested == 1 {
            1
        } else {
            self.table
                .governor
                .effective_parallelism(effective_workers(requested))
                .min(jobs)
        }
    }

    /// Resolve the visibility of main part `pi` under this snapshot:
    /// the wholly-visible summary when it applies, a cached bitmap when one
    /// matches, or a freshly computed bitmap (cached for later statements
    /// unless the snapshot timestamp lies in the future — time travel —
    /// where a later commit could still slide under it).
    pub(crate) fn part_visibility(&self, pi: usize) -> PartVisibility {
        let part = &self.main.parts()[pi];
        let ts = self.snap.ts();
        if part.fully_visible_at(ts) {
            return PartVisibility::All;
        }
        let txn = self.snap.txn();
        if let Some(entry) = part.cached_visibility(ts, txn) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return PartVisibility::Filtered(entry);
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        // Capture the end-stamp version *before* reading any stamp: a
        // deletion landing mid-scan then invalidates the cached entry
        // instead of racing it.
        let end_version = part.end_version();
        let mut visible = Bitmap::zeros(part.len());
        let mut txn_sensitive = false;
        for pos in 0..part.len() as Pos {
            let begin = part.begin(pos);
            let end = part.end(pos);
            if TxnId::from_mark(begin).is_some() || TxnId::from_mark(end).is_some() {
                txn_sensitive = true;
            }
            if self.visible(begin, end) {
                visible.set(pos as usize);
            }
        }
        let entry = Arc::new(VisBitmap {
            ts,
            txn,
            txn_sensitive,
            end_version,
            visible,
        });
        if ts <= self.table.mgr.now() {
            part.store_visibility(Arc::clone(&entry), self.table.mgr.watermark());
        }
        PartVisibility::Filtered(entry)
    }

    /// Materialize one main row under a projection (see [`l2_row`] for the
    /// `narrow` semantics).
    fn main_row(&self, hit: PartHit, proj: Option<&[usize]>, narrow: bool) -> Vec<Value> {
        match proj {
            None => self.main.row_at(hit),
            Some(cols) if narrow => cols.iter().map(|&c| self.main.value_at(hit, c)).collect(),
            Some(cols) => {
                let mut row = vec![Value::Null; self.table.schema.arity()];
                for &c in cols {
                    row[c] = self.main.value_at(hit, c);
                }
                row
            }
        }
    }

    /// Upper bound on visible rows: used to pre-size collection output.
    fn row_upper_bound(&self) -> usize {
        self.main.total_rows()
            + self.l2_fence as usize
            + self.l2_frozen.as_ref().map_or(0, |(_, f)| *f as usize)
            + self.l1.len()
    }

    /// The scan core: visit every visible row, main first (chunked and
    /// fanned out over the scan pool, reassembled in chain order), then
    /// frozen L2, open L2, L1 — oldest store to newest, matching merge
    /// order.
    fn scan_visible(&self, proj: Option<&[usize]>, narrow: bool, f: &mut dyn FnMut(VisibleRow)) {
        let parts = self.main.parts();
        let vis: Vec<PartVisibility> = (0..parts.len())
            .map(|pi| self.part_visibility(pi))
            .collect();
        let chunks = plan_chunks(parts);
        let workers = self.scan_workers(chunks.len());
        let scan_epoch = self.table.governor.epoch();
        let produced = map_indexed(chunks.len(), workers, |ci| {
            let mut seen = scan_epoch;
            self.table.governor.chunk_yield(&mut seen);
            let ch = chunks[ci];
            let part = &parts[ch.part];
            let mut rows = Vec::new();
            for pos in ch.start..ch.end {
                if vis[ch.part].is_visible(pos) {
                    rows.push(VisibleRow {
                        row_id: part.row_id(pos),
                        values: self.main_row(PartHit { part: ch.part, pos }, proj, narrow),
                    });
                }
            }
            rows
        });
        for rows in produced {
            for r in rows {
                f(r);
            }
        }
        let arity = self.table.schema.arity();
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in 0..*fence {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    f(VisibleRow {
                        row_id: frozen.row_id(pos),
                        values: l2_row(frozen, pos, arity, proj, narrow),
                    });
                }
            }
        }
        for pos in 0..self.l2_fence {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                f(VisibleRow {
                    row_id: self.l2.row_id(pos),
                    values: l2_row(&self.l2, pos, arity, proj, narrow),
                });
            }
        }
        for (_, slot) in self.l1.iter() {
            if self.visible(slot.begin(), slot.end()) {
                f(VisibleRow {
                    row_id: slot.row_id,
                    values: slot_row(&slot.values, proj, narrow),
                });
            }
        }
    }

    /// Iterate every *visible* row, main first, then frozen L2, then open
    /// L2, then L1 — oldest store to newest, matching merge order.
    pub fn for_each_visible(&self, mut f: impl FnMut(VisibleRow)) {
        self.scan_visible(None, false, &mut f);
    }

    /// Materialize all visible rows.
    pub fn collect_rows(&self) -> Vec<VisibleRow> {
        self.collect_rows_projected(None)
    }

    /// Materialize all visible rows under a projection pushed down from the
    /// engine layer: unprojected columns stay `Null` placeholders so the
    /// caller's column indexes remain valid.
    pub fn collect_rows_projected(&self, proj: Option<&[usize]>) -> Vec<VisibleRow> {
        let mut out = Vec::with_capacity(self.row_upper_bound());
        self.scan_visible(proj, false, &mut |r| out.push(r));
        out
    }

    /// Late materialization: all visible rows narrowed to `cols`, in
    /// projection order. Only the requested columns are ever decoded or
    /// cloned.
    pub fn project(&self, cols: &[usize]) -> Result<Vec<VisibleRow>> {
        for &c in cols {
            self.schema_col(c)?;
        }
        let mut out = Vec::with_capacity(self.row_upper_bound());
        self.scan_visible(Some(cols), true, &mut |r| out.push(r));
        Ok(out)
    }

    /// Compressed-domain filtered scan: all visible rows satisfying *every*
    /// conjunct in `preds`, plus the pruning/filtering counters.
    ///
    /// The main chain never materializes a value to decide the filter: each
    /// conjunct is compiled per part into a [`CodeMatcher`]
    /// (see [`ColumnPredicate::compile_for_part`]), whole parts and
    /// 16Ki-row chunks whose zone maps contradict the compiled spans are
    /// skipped, and the surviving chunks run the encoding-aware kernels
    /// ([`hana_column::CodeVector::filter_range`]) in the parallel scan
    /// fan-out; hit bits are then ANDed with the snapshot-visibility
    /// resolution of PR 2 (summary or cached bitmap) before materializing
    /// only matching rows under `proj`. A non-null `Eq` conjunct routes
    /// through the inverted indexes instead of scanning, verifying the other
    /// conjuncts per hit — still in the code domain. The L2-deltas probe
    /// their unsorted dictionaries once per conjunct into code sets; only
    /// the (small) L1 is evaluated row-wise on values.
    ///
    /// With empty `preds` this is [`collect_rows_projected`]
    /// (Self::collect_rows_projected). Output order matches
    /// [`for_each_visible`](Self::for_each_visible): main in chunk order,
    /// then frozen L2, open L2, L1 — so parallel execution stays
    /// bit-identical to serial.
    pub fn scan_filtered(
        &self,
        preds: &[ColumnPredicate],
        proj: Option<&[usize]>,
    ) -> Result<(Vec<VisibleRow>, ScanStats)> {
        self.check_projection(proj)?;
        for p in preds {
            self.schema_col(p.column())?;
        }
        let mut stats = ScanStats::default();
        if preds.is_empty() {
            return Ok((self.collect_rows_projected(proj), stats));
        }
        let cols: Vec<usize> = preds.iter().map(|p| p.column()).collect();
        let mut out = Vec::new();

        // ---- Main chain ----
        let parts = self.main.parts();
        let matchers: Vec<Vec<CodeMatcher>> = (0..parts.len())
            .map(|pi| {
                preds
                    .iter()
                    .map(|p| p.compile_for_part(&self.main, pi))
                    .collect()
            })
            .collect();
        let eq_route = preds.iter().find_map(|p| match p {
            ColumnPredicate::Eq(c, v) if !v.is_null() => Some((*c, v)),
            _ => None,
        });
        if let Some((col, v)) = eq_route {
            // Selective point conjunct: inverted-index probe instead of a
            // scan; remaining conjuncts verify on raw codes per hit.
            stats.index_probes += 1;
            let hits = self.main.positions_eq(col, v);
            stats.code_filtered_rows += hits.len() as u64;
            let mut vis: Vec<Option<PartVisibility>> = Vec::with_capacity(parts.len());
            vis.resize_with(parts.len(), || None);
            for h in hits {
                let part = &parts[h.part];
                if !matchers[h.part]
                    .iter()
                    .zip(&cols)
                    .all(|(m, &c)| m.matches(part.code_at(h.pos, c)))
                {
                    continue;
                }
                let v = vis[h.part].get_or_insert_with(|| self.part_visibility(h.part));
                if v.is_visible(h.pos) {
                    out.push(VisibleRow {
                        row_id: part.row_id(h.pos),
                        values: self.main_row(h, proj, false),
                    });
                }
            }
        } else {
            // Zone-map pruning: whole parts first, then chunks. A part whose
            // compiled filter is empty (dictionary proved no match) prunes
            // the same way.
            let mut part_active = vec![true; parts.len()];
            for (pi, part) in parts.iter().enumerate() {
                let dead = matchers[pi]
                    .iter()
                    .zip(&cols)
                    .any(|(m, &c)| m.never_matches() || !zone_admits(part.zone_map(c).part(), m));
                if dead && !part.is_empty() {
                    part_active[pi] = false;
                    stats.parts_pruned += 1;
                    stats.zone_pruned_rows += part.len() as u64;
                }
            }
            let chunks: Vec<_> = plan_chunks(parts)
                .into_iter()
                .filter(|ch| {
                    if !part_active[ch.part] {
                        return false;
                    }
                    let part = &parts[ch.part];
                    let dead = matchers[ch.part]
                        .iter()
                        .zip(&cols)
                        .any(|(m, &c)| !zone_admits(part.zone_map(c).chunk_at(ch.start), m));
                    if dead {
                        stats.chunks_pruned += 1;
                        stats.zone_pruned_rows += (ch.end - ch.start) as u64;
                    }
                    !dead
                })
                .collect();
            stats.code_filtered_rows += chunks
                .iter()
                .map(|ch| (ch.end - ch.start) as u64)
                .sum::<u64>();
            let vis: Vec<PartVisibility> = (0..parts.len())
                .map(|pi| {
                    if part_active[pi] && !parts[pi].is_empty() {
                        self.part_visibility(pi)
                    } else {
                        PartVisibility::All // never consulted for pruned parts
                    }
                })
                .collect();
            let workers = self.scan_workers(chunks.len());
            stats.effective_parallelism = workers;
            let scan_epoch = self.table.governor.epoch();
            let produced = map_indexed(chunks.len(), workers, |ci| {
                // Chunk-boundary cooperation: surrender the timeslice when
                // a committer entered the pipeline, so a long scan never
                // monopolizes the pool while the commit path queues.
                let mut seen = scan_epoch;
                self.table.governor.chunk_yield(&mut seen);
                let ch = chunks[ci];
                let part = &parts[ch.part];
                let n = (ch.end - ch.start) as usize;
                let ms = &matchers[ch.part];
                let mut hits = Bitmap::zeros(n);
                part.code_vector(cols[0]).filter_range(
                    ch.start as usize,
                    ch.end as usize,
                    &ms[0],
                    &mut hits,
                );
                for (m, &c) in ms.iter().zip(&cols).skip(1) {
                    if hits.count_ones() == 0 {
                        break;
                    }
                    refine_bitmap(
                        |i| part.code_at(i as Pos, c),
                        ch.start as usize,
                        m,
                        &mut hits,
                    );
                }
                // Visibility-AND: fold the snapshot bitmap into the hit
                // bitmap word-wise instead of branching per hit.
                vis[ch.part].mask_hits(&mut hits, ch.start);
                let mut rows = Vec::with_capacity(hits.count_ones());
                for k in hits.iter_ones() {
                    let pos = ch.start + k as Pos;
                    rows.push(VisibleRow {
                        row_id: part.row_id(pos),
                        values: self.main_row(PartHit { part: ch.part, pos }, proj, false),
                    });
                }
                rows
            });
            out.extend(produced.into_iter().flatten());
        }

        // ---- L2 stages (frozen, then open) ----
        let arity = self.table.schema.arity();
        let l2_side = |l2: &L2Delta, fence: Pos, out: &mut Vec<VisibleRow>, st: &mut ScanStats| {
            if fence == 0 {
                return;
            }
            // One lock acquisition for every filter column + stamps; the
            // dictionaries are probed once per conjunct, then rows are
            // tested on raw codes. Visibility resolves inside the closure
            // (it only touches the txn manager, never the L2 lock).
            let keep: Vec<Pos> = l2.with_columns_stamped(&cols, fence, |views, begins, ends| {
                let ms: Vec<CodeMatcher> = preds
                    .iter()
                    .zip(views)
                    .map(|(p, (dict, _))| p.compile_for_l2(dict))
                    .collect();
                let mut keep = Vec::new();
                if ms.iter().any(|m| m.never_matches()) {
                    return keep;
                }
                let n = views[0].1.len();
                for pos in 0..n {
                    if !ms
                        .iter()
                        .zip(views)
                        .all(|(m, (_, codes))| m.matches(codes[pos]))
                    {
                        continue;
                    }
                    let begin = begins[pos].load(Ordering::Acquire);
                    let end = ends[pos].load(Ordering::Acquire);
                    if self.visible(begin, end) {
                        keep.push(pos as Pos);
                    }
                }
                keep
            });
            st.code_filtered_rows += fence as u64;
            for pos in keep {
                out.push(VisibleRow {
                    row_id: l2.row_id(pos),
                    values: l2_row(l2, pos, arity, proj, false),
                });
            }
        };
        if let Some((frozen, fence)) = &self.l2_frozen {
            l2_side(frozen, *fence, &mut out, &mut stats);
        }
        l2_side(&self.l2, self.l2_fence, &mut out, &mut stats);

        // ---- L1 (row store): row-wise on values ----
        for (_, slot) in self.l1.iter() {
            stats.rowwise_rows += 1;
            if preds
                .iter()
                .all(|p| p.matches_value(&slot.values[p.column()]))
                && self.visible(slot.begin(), slot.end())
            {
                out.push(VisibleRow {
                    row_id: slot.row_id,
                    values: slot_row(&slot.values, proj, false),
                });
            }
        }
        Ok((out, stats))
    }

    /// Count visible rows. Wholly-visible parts contribute their length,
    /// bitmap-resolved parts a popcount — no row is materialized.
    pub fn count(&self) -> usize {
        let parts = self.main.parts();
        let mut n = 0usize;
        for (pi, part) in parts.iter().enumerate() {
            n += self.part_visibility(pi).visible_rows(part.len());
        }
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in 0..*fence {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    n += 1;
                }
            }
        }
        for pos in 0..self.l2_fence {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                n += 1;
            }
        }
        for (_, slot) in self.l1.iter() {
            if self.visible(slot.begin(), slot.end()) {
                n += 1;
            }
        }
        n
    }

    /// Filter a main-store hit list through the visibility summary/bitmaps
    /// and materialize the surviving rows, fanning large lists out over the
    /// scan pool (in-order reassembly keeps the output deterministic).
    fn materialize_main_hits(&self, hits: &[PartHit], proj: Option<&[usize]>) -> Vec<Vec<Value>> {
        if hits.is_empty() {
            return Vec::new();
        }
        let parts = self.main.parts();
        let mut vis: Vec<Option<PartVisibility>> = Vec::with_capacity(parts.len());
        vis.resize_with(parts.len(), || None);
        for h in hits {
            if vis[h.part].is_none() {
                vis[h.part] = Some(self.part_visibility(h.part));
            }
        }
        let ranges = plan_ranges(hits.len());
        let workers = self.scan_workers(ranges.len());
        let produced = map_indexed(ranges.len(), workers, |ri| {
            let (start, end) = ranges[ri];
            let mut rows = Vec::new();
            for h in &hits[start..end] {
                if vis[h.part]
                    .as_ref()
                    .expect("visibility resolved")
                    .is_visible(h.pos)
                {
                    rows.push(self.main_row(*h, proj, false));
                }
            }
            rows
        });
        produced.into_iter().flatten().collect()
    }

    /// Point query: visible rows with `col = v`, via the dictionaries and
    /// inverted indexes of the column stages and a scan of the (small) L1.
    pub fn point(&self, col: usize, v: &Value) -> Result<Vec<Vec<Value>>> {
        self.point_projected(col, v, None)
    }

    /// [`point`](Self::point) with a projection pushed into materialization
    /// (unprojected columns are `Null` placeholders).
    pub fn point_projected(
        &self,
        col: usize,
        v: &Value,
        proj: Option<&[usize]>,
    ) -> Result<Vec<Vec<Value>>> {
        self.schema_col(col)?;
        self.check_projection(proj)?;
        let hits = self.main.positions_eq(col, v);
        let mut out = self.materialize_main_hits(&hits, proj);
        let arity = self.table.schema.arity();
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in frozen.positions_eq(col, v, *fence) {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    out.push(l2_row(frozen, pos, arity, proj, false));
                }
            }
        }
        for pos in self.l2.positions_eq(col, v, self.l2_fence) {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                out.push(l2_row(&self.l2, pos, arity, proj, false));
            }
        }
        for (_, slot) in self.l1.iter() {
            if &slot.values[col] == v && self.visible(slot.begin(), slot.end()) {
                out.push(slot_row(&slot.values, proj, false));
            }
        }
        Ok(out)
    }

    /// Range query: visible rows with `col` in `[lo, hi]` bounds. The main
    /// resolves the range per part dictionary (Fig 10); the L2 through its
    /// unsorted dictionaries; the L1 by scan.
    pub fn range(
        &self,
        col: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
    ) -> Result<Vec<Vec<Value>>> {
        self.range_projected(col, lo, hi, None)
    }

    /// [`range`](Self::range) with a projection pushed into materialization
    /// (unprojected columns are `Null` placeholders).
    pub fn range_projected(
        &self,
        col: usize,
        lo: Bound<&Value>,
        hi: Bound<&Value>,
        proj: Option<&[usize]>,
    ) -> Result<Vec<Vec<Value>>> {
        self.schema_col(col)?;
        self.check_projection(proj)?;
        let in_range = |v: &Value| {
            !v.is_null()
                && (match lo {
                    Bound::Unbounded => true,
                    Bound::Included(b) => v >= b,
                    Bound::Excluded(b) => v > b,
                })
                && (match hi {
                    Bound::Unbounded => true,
                    Bound::Included(b) => v <= b,
                    Bound::Excluded(b) => v < b,
                })
        };
        let hits = self.main.positions_range(col, lo, hi);
        let mut out = self.materialize_main_hits(&hits, proj);
        let arity = self.table.schema.arity();
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in frozen.positions_range(col, lo, hi, *fence) {
                if self.visible(frozen.begin(pos), frozen.end(pos)) {
                    out.push(l2_row(frozen, pos, arity, proj, false));
                }
            }
        }
        for pos in self.l2.positions_range(col, lo, hi, self.l2_fence) {
            if self.visible(self.l2.begin(pos), self.l2.end(pos)) {
                out.push(l2_row(&self.l2, pos, arity, proj, false));
            }
        }
        for (_, slot) in self.l1.iter() {
            if in_range(&slot.values[col]) && self.visible(slot.begin(), slot.end()) {
                out.push(slot_row(&slot.values, proj, false));
            }
        }
        Ok(out)
    }

    /// One numeric decode table covering the *whole* main chain: global
    /// code → numeric value (`NaN` for non-numeric entries). Built once per
    /// scan — codes in part `p` never reference later parts, and every
    /// row's NULL sentinel is checked against its own part before lookup,
    /// so the sentinel slots colliding with the next part's base are
    /// harmless.
    fn chain_numeric_table(&self, col: usize) -> Vec<f64> {
        let mut table = vec![f64::NAN; self.main.next_base(col) as usize + 1];
        for p in self.main.parts() {
            let base = p.base(col) as usize;
            let dict = p.dict(col);
            for local in 0..dict.len() as u32 {
                if let Some(x) = dict.value_of(local).as_numeric() {
                    table[base + local as usize] = x;
                }
            }
        }
        table
    }

    /// Columnar aggregation over one numeric column: `(count, sum)` of
    /// visible non-null values. The main path decodes the chain's
    /// dictionaries once into a numeric lookup table and streams the
    /// compressed code vectors in parallel chunks — the OLAP fast path the
    /// unified table keeps even while serving OLTP. Chunk partials combine
    /// in chunk order, so the float sum is independent of the worker count.
    pub fn aggregate_numeric(&self, col: usize) -> Result<(u64, f64)> {
        self.schema_col(col)?;
        let parts = self.main.parts();
        let table = self.chain_numeric_table(col);
        let vis: Vec<PartVisibility> = (0..parts.len())
            .map(|pi| self.part_visibility(pi))
            .collect();
        let chunks = plan_chunks(parts);
        let workers = self.scan_workers(chunks.len());
        let scan_epoch = self.table.governor.epoch();
        let partials = map_indexed(chunks.len(), workers, |ci| {
            let mut seen = scan_epoch;
            self.table.governor.chunk_yield(&mut seen);
            let ch = chunks[ci];
            let part = &parts[ch.part];
            let null_code = part.null_code(col);
            let (mut c, mut s) = (0u64, 0.0f64);
            for pos in ch.start..ch.end {
                if !vis[ch.part].is_visible(pos) {
                    continue;
                }
                let code = part.code_at(pos, col);
                if code == null_code {
                    continue;
                }
                let x = table[code as usize];
                if !x.is_nan() {
                    c += 1;
                    s += x;
                }
            }
            (c, s)
        });
        let mut count = 0u64;
        let mut sum = 0.0f64;
        for (c, s) in partials {
            count += c;
            sum += s;
        }
        // L2 stages: decode via dictionary once; stamps come through the
        // same lock acquisition (never re-lock inside the closure).
        let mut l2_side = |l2: &L2Delta, fence: Pos| {
            l2.with_column_stamped(col, fence, |dict, codes, begins, ends| {
                let table: Vec<f64> = dict
                    .values()
                    .iter()
                    .map(|v| v.as_numeric().unwrap_or(f64::NAN))
                    .collect();
                for (pos, &code) in codes.iter().enumerate() {
                    let begin = begins[pos].load(Ordering::Acquire);
                    let end = ends[pos].load(Ordering::Acquire);
                    if code == L2_NULL_CODE || !self.visible(begin, end) {
                        continue;
                    }
                    let x = table[code as usize];
                    if !x.is_nan() {
                        count += 1;
                        sum += x;
                    }
                }
            });
        };
        if let Some((frozen, fence)) = &self.l2_frozen {
            l2_side(frozen, *fence);
        }
        l2_side(&self.l2, self.l2_fence);
        // L1 rows.
        for (_, slot) in self.l1.iter() {
            if !self.visible(slot.begin(), slot.end()) {
                continue;
            }
            if let Some(x) = slot.values[col].as_numeric() {
                count += 1;
                sum += x;
            }
        }
        Ok((count, sum))
    }

    /// Group-by aggregation: for each distinct value of `group_col`, the
    /// `(count, sum)` over `agg_col` of visible rows.
    ///
    /// Columnar fast path: main chunks aggregate over dictionary *codes*
    /// into dense accumulators in parallel, decode each surviving group key
    /// once, and merge in chunk order (deterministic float sums); the L2
    /// deltas aggregate per-code maps. Only the small L1 is processed
    /// row-wise.
    pub fn group_aggregate(
        &self,
        group_col: usize,
        agg_col: usize,
    ) -> Result<Vec<(Value, u64, f64)>> {
        self.schema_col(group_col)?;
        self.schema_col(agg_col)?;
        let mut groups: rustc_hash::FxHashMap<Value, (u64, f64)> = Default::default();

        // Main chunks: dense per-code accumulators over the chain-wide
        // numeric table (built once — not once per part).
        let parts = self.main.parts();
        let num = self.chain_numeric_table(agg_col);
        let vis: Vec<PartVisibility> = (0..parts.len())
            .map(|pi| self.part_visibility(pi))
            .collect();
        let chunks = plan_chunks(parts);
        let workers = self.scan_workers(chunks.len());
        let scan_epoch = self.table.governor.epoch();
        let partials: Vec<Vec<(Value, u64, f64)>> = map_indexed(chunks.len(), workers, |ci| {
            let mut seen = scan_epoch;
            self.table.governor.chunk_yield(&mut seen);
            let ch = chunks[ci];
            let part = &parts[ch.part];
            let g_null = part.null_code(group_col);
            let a_null = part.null_code(agg_col);
            let mut acc = vec![(0u64, 0.0f64); g_null as usize + 1];
            for pos in ch.start..ch.end {
                if !vis[ch.part].is_visible(pos) {
                    continue;
                }
                let g = part.code_at(pos, group_col) as usize;
                let e = &mut acc[g];
                e.0 += 1;
                let a = part.code_at(pos, agg_col);
                if a != a_null {
                    let x = num[a as usize];
                    if !x.is_nan() {
                        e.1 += x;
                    }
                }
            }
            acc.into_iter()
                .enumerate()
                .filter(|&(_, (c, _))| c > 0)
                .map(|(code, (c, s))| {
                    let key = if code as u32 == g_null {
                        Value::Null
                    } else {
                        self.main
                            .value_of_code(group_col, code as u32)
                            .expect("group code resolves in the chain")
                    };
                    (key, c, s)
                })
                .collect()
        });
        for chunk_groups in partials {
            for (key, c, s) in chunk_groups {
                let e = groups.entry(key).or_insert((0, 0.0));
                e.0 += c;
                e.1 += s;
            }
        }

        // L2 stages: per-code accumulation through the unsorted dictionary.
        let mut l2_side = |l2: &L2Delta, fence: Pos| {
            let (decoded, null_acc) = l2.with_two_columns_stamped(
                group_col,
                agg_col,
                fence,
                |gd, gc, ad, ac, begins, ends| {
                    let num_table: Vec<f64> = ad
                        .values()
                        .iter()
                        .map(|v| v.as_numeric().unwrap_or(f64::NAN))
                        .collect();
                    let mut acc: rustc_hash::FxHashMap<hana_dict::Code, (u64, f64)> =
                        Default::default();
                    let mut null_acc = (0u64, 0.0f64);
                    for pos in 0..gc.len() {
                        let begin = begins[pos].load(Ordering::Acquire);
                        let end = ends[pos].load(Ordering::Acquire);
                        if !self.visible(begin, end) {
                            continue;
                        }
                        let e = if gc[pos] == L2_NULL_CODE {
                            &mut null_acc
                        } else {
                            acc.entry(gc[pos]).or_insert((0, 0.0))
                        };
                        e.0 += 1;
                        let a = ac[pos];
                        if a != L2_NULL_CODE {
                            let x = num_table[a as usize];
                            if !x.is_nan() {
                                e.1 += x;
                            }
                        }
                    }
                    let decoded: Vec<(Value, u64, f64)> = acc
                        .into_iter()
                        .map(|(code, (c, s))| (gd.value_of(code).clone(), c, s))
                        .collect();
                    (decoded, null_acc)
                },
            );
            for (key, c, s) in decoded {
                let e = groups.entry(key).or_insert((0, 0.0));
                e.0 += c;
                e.1 += s;
            }
            if null_acc.0 > 0 {
                let e = groups.entry(Value::Null).or_insert((0, 0.0));
                e.0 += null_acc.0;
                e.1 += null_acc.1;
            }
        };
        if let Some((frozen, fence)) = &self.l2_frozen {
            l2_side(frozen, *fence);
        }
        l2_side(&self.l2, self.l2_fence);

        // L1 rows.
        for (_, slot) in self.l1.iter() {
            if !self.visible(slot.begin(), slot.end()) {
                continue;
            }
            let e = groups
                .entry(slot.values[group_col].clone())
                .or_insert((0, 0.0));
            e.0 += 1;
            if let Some(x) = slot.values[agg_col].as_numeric() {
                e.1 += x;
            }
        }

        let mut out: Vec<(Value, u64, f64)> =
            groups.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// The merged global sorted dictionary over all three stages (§3.1),
    /// including values of rows not visible to this snapshot (a dictionary
    /// property, as in the paper).
    pub fn global_sorted_dict(&self, col: usize) -> Result<GlobalSortedDict> {
        self.schema_col(col)?;
        // Main side: if the chain has several parts, merge their dictionary
        // values into one sorted dictionary view first.
        let main_dict = if self.main.parts().len() == 1 {
            self.main.parts()[0].dict(col).clone()
        } else {
            let mut vals: Vec<Value> = Vec::new();
            for p in self.main.parts() {
                vals.extend(p.dict(col).iter());
            }
            hana_dict::SortedDict::from_values(vals)
        };
        let mut l1_values: Vec<Value> =
            self.l1.iter().map(|(_, s)| s.values[col].clone()).collect();
        // Frozen L2 values fold into the L1 side of the three-way merge.
        if let Some((frozen, fence)) = &self.l2_frozen {
            frozen.with_column(col, *fence, |dict, _| {
                l1_values.extend(dict.values().iter().cloned());
            });
        }
        Ok(self.l2.with_column(col, self.l2_fence, |dict, _| {
            GlobalSortedDict::build(&main_dict, dict, &l1_values)
        }))
    }

    /// Debugging: every physical version matching `col = v` with raw MVCC
    /// stamps, its stage, and whether this view considers it visible.
    #[doc(hidden)]
    pub fn debug_versions(&self, col: usize, v: &Value) -> Vec<(RowId, u64, u64, String, bool)> {
        let mut out = Vec::new();
        for hit in self.main.positions_eq(col, v) {
            let part = &self.main.parts()[hit.part];
            let (b, e) = (part.begin(hit.pos), part.end(hit.pos));
            out.push((
                part.row_id(hit.pos),
                b,
                e,
                format!("main[{}]", hit.part),
                self.visible(b, e),
            ));
        }
        if let Some((frozen, fence)) = &self.l2_frozen {
            for pos in frozen.positions_eq(col, v, *fence) {
                let (b, e) = (frozen.begin(pos), frozen.end(pos));
                out.push((
                    frozen.row_id(pos),
                    b,
                    e,
                    "l2-frozen".into(),
                    self.visible(b, e),
                ));
            }
        }
        for pos in self.l2.positions_eq(col, v, self.l2_fence) {
            let (b, e) = (self.l2.begin(pos), self.l2.end(pos));
            out.push((self.l2.row_id(pos), b, e, "l2".into(), self.visible(b, e)));
        }
        for (p, slot) in self.l1.iter() {
            if &slot.values[col] == v {
                let (b, e) = (slot.begin(), slot.end());
                out.push((slot.row_id, b, e, format!("l1@{p}"), self.visible(b, e)));
            }
        }
        out
    }

    /// Rows of this view per stage `(L1, frozen+open L2, main)` —
    /// diagnostics for the lifecycle benches.
    pub fn stage_row_counts(&self) -> (usize, usize, usize) {
        let l2 = self.l2_fence as usize + self.l2_frozen.as_ref().map_or(0, |(_, f)| *f as usize);
        (self.l1.len(), l2, self.main.total_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig};
    use hana_merge::MergeDecision;
    use hana_txn::{IsolationLevel, TxnManager};

    fn setup() -> (Arc<TxnManager>, Arc<UnifiedTable>) {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("city", DataType::Str),
                ColumnDef::new("amount", DataType::Double),
            ],
        )
        .unwrap();
        let t = UnifiedTable::standalone(schema, TableConfig::default(), Arc::clone(&mgr));
        (mgr, t)
    }

    /// Insert `n` rows and move them all the way to the main store.
    fn main_resident(mgr: &Arc<TxnManager>, t: &Arc<UnifiedTable>, n: i64) {
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 0..n {
            t.insert(
                &txn,
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                    Value::double(i as f64),
                ],
            )
            .unwrap();
        }
        txn.commit().unwrap();
        t.merge_l1().unwrap();
        t.merge_delta_as(MergeDecision::Classic).unwrap();
    }

    #[test]
    fn insert_then_read_through_l1() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(
            &txn,
            vec![Value::Int(1), Value::str("Los Gatos"), Value::double(10.0)],
        )
        .unwrap();
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        assert_eq!(read.count(), 1);
        let rows = read.point(1, &Value::str("Los Gatos")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
        let (c, s) = read.aggregate_numeric(2).unwrap();
        assert_eq!(c, 1);
        assert_eq!(s, 10.0);
        assert_eq!(read.stage_row_counts(), (1, 0, 0));
    }

    #[test]
    fn uncommitted_rows_invisible_to_others() {
        let (mgr, t) = setup();
        let txn = mgr.begin(IsolationLevel::Transaction);
        t.insert(&txn, vec![Value::Int(1), Value::str("x"), Value::Null])
            .unwrap();
        // Own statement sees it; others don't.
        assert_eq!(t.read(&txn).count(), 1);
        let other = mgr.begin(IsolationLevel::Transaction);
        assert_eq!(t.read(&other).count(), 0);
    }

    #[test]
    fn range_and_group_aggregate() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for (i, city) in ["Campbell", "Daily City", "Los Gatos", "Saratoga"]
            .iter()
            .enumerate()
        {
            t.insert(
                &txn,
                vec![
                    Value::Int(i as i64),
                    Value::str(*city),
                    Value::double(i as f64),
                ],
            )
            .unwrap();
        }
        t.insert(
            &txn,
            vec![Value::Int(9), Value::str("Campbell"), Value::double(5.0)],
        )
        .unwrap();
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        let hits = read
            .range(
                1,
                Bound::Included(&Value::str("C")),
                Bound::Excluded(&Value::str("M")),
            )
            .unwrap();
        assert_eq!(hits.len(), 4); // Campbell ×2, Daily City, Los Gatos
        let groups = read.group_aggregate(1, 2).unwrap();
        let campbell = groups
            .iter()
            .find(|g| g.0 == Value::str("Campbell"))
            .unwrap();
        assert_eq!(campbell.1, 2);
        assert_eq!(campbell.2, 5.0);
    }

    #[test]
    fn global_dict_spans_stages() {
        let (mgr, t) = setup();
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for (i, c) in ["b", "a", "c"].iter().enumerate() {
            t.insert(
                &txn,
                vec![Value::Int(i as i64), Value::str(*c), Value::Null],
            )
            .unwrap();
        }
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let g = t.read(&reader).global_sorted_dict(1).unwrap();
        let vals: Vec<Value> = g.iter().map(|(v, _)| v.clone()).collect();
        assert_eq!(vals, ["a", "b", "c"].map(Value::str).to_vec());
    }

    #[test]
    fn wholly_visible_main_skips_bitmaps() {
        let (mgr, t) = setup();
        main_resident(&mgr, &t, 100);
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        assert_eq!(read.count(), 100);
        // All rows committed, none deleted: the summary answers without
        // bitmaps, so neither hits nor misses accrue.
        assert_eq!(read.vis_cache_stats(), (0, 0));
    }

    #[test]
    fn visibility_bitmap_cached_across_statements() {
        let (mgr, t) = setup();
        main_resident(&mgr, &t, 100);
        // A deletion defeats the wholly-visible summary.
        let mut del = mgr.begin(IsolationLevel::Transaction);
        t.delete_where(&del, hana_common::ColumnId(0), &Value::Int(7))
            .unwrap();
        del.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let r1 = t.read(&reader);
        assert_eq!(r1.count(), 99);
        assert_eq!(r1.vis_cache_stats(), (0, 1));
        // Second statement of the same transaction reuses the bitmap.
        let r2 = t.read(&reader);
        assert_eq!(r2.count(), 99);
        assert_eq!(r2.vis_cache_stats(), (1, 0));
        // A snapshot at a different timestamp recomputes.
        let later = mgr.begin(IsolationLevel::Transaction);
        let r3 = t.read(&later);
        assert_eq!(r3.count(), 99);
        assert_eq!(r3.vis_cache_stats(), (0, 1));
    }

    #[test]
    fn projection_narrows_rows() {
        let (mgr, t) = setup();
        main_resident(&mgr, &t, 10);
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        let narrow = read.project(&[2, 0]).unwrap();
        assert_eq!(narrow.len(), 10);
        assert_eq!(narrow[0].values.len(), 2);
        assert_eq!(narrow[3].values, vec![Value::double(3.0), Value::Int(3)]);
        // Full-width projected rows keep placeholders for untouched columns.
        let masked = read.collect_rows_projected(Some(&[0]));
        assert_eq!(
            masked[3].values,
            vec![Value::Int(3), Value::Null, Value::Null]
        );
        assert!(read.project(&[99]).is_err());
    }

    #[test]
    fn scan_filtered_matches_rowwise_filtering() {
        let (mgr, t) = setup();
        main_resident(&mgr, &t, 200);
        // Leave a few rows in L1 so every stage participates.
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 200..210 {
            t.insert(
                &txn,
                vec![
                    Value::Int(i),
                    Value::str(if i % 2 == 0 { "even" } else { "odd" }),
                    Value::double(i as f64),
                ],
            )
            .unwrap();
        }
        txn.commit().unwrap();
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        let preds = vec![
            ColumnPredicate::Eq(1, Value::str("even")),
            ColumnPredicate::Range(
                0,
                Bound::Included(Value::Int(50)),
                Bound::Excluded(Value::Int(205)),
            ),
        ];
        let (rows, stats) = read.scan_filtered(&preds, None).unwrap();
        let expect: Vec<VisibleRow> = read
            .collect_rows()
            .into_iter()
            .filter(|r| preds.iter().all(|p| p.matches_value(&r.values[p.column()])))
            .collect();
        assert_eq!(rows, expect);
        assert!(!rows.is_empty());
        // The Eq conjunct routed through the inverted index.
        assert_eq!(stats.index_probes, 1);
        assert!(stats.code_filtered_rows > 0);
        assert_eq!(stats.rowwise_rows, 10);
    }

    #[test]
    fn scan_filtered_zone_pruning_and_empty_filters() {
        let (mgr, t) = setup();
        main_resident(&mgr, &t, 200);
        let reader = mgr.begin(IsolationLevel::Transaction);
        let read = t.read(&reader);
        // Range entirely above the part's max id: part-level zone map prunes
        // everything before any kernel runs.
        let preds = vec![ColumnPredicate::Range(
            0,
            Bound::Included(Value::Int(1_000)),
            Bound::Excluded(Value::Int(2_000)),
        )];
        let (rows, stats) = read.scan_filtered(&preds, None).unwrap();
        assert!(rows.is_empty());
        assert_eq!(stats.parts_pruned, 1);
        assert_eq!(stats.zone_pruned_rows, 200);
        assert_eq!(stats.code_filtered_rows, 0);
        // In-range kernel path (no Eq): decides rows in the code domain.
        let preds = vec![ColumnPredicate::Range(
            0,
            Bound::Included(Value::Int(10)),
            Bound::Excluded(Value::Int(20)),
        )];
        let (rows, stats) = read.scan_filtered(&preds, None).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(stats.code_filtered_rows, 200);
        assert_eq!(stats.index_probes, 0);
        // IS NULL on a never-null column: empty compiled filter + no nulls
        // in the zone map prunes the part.
        let (rows, _) = read
            .scan_filtered(&[ColumnPredicate::IsNull(1)], None)
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn parallel_scan_matches_serial_over_main() {
        let mgr = TxnManager::new();
        let schema = Schema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Int).unique(),
                ColumnDef::new("city", DataType::Str),
                ColumnDef::new("amount", DataType::Double),
            ],
        )
        .unwrap();
        let serial_t = UnifiedTable::standalone(
            schema.clone(),
            TableConfig::default().with_scan(hana_common::ScanConfig::serial()),
            Arc::clone(&mgr),
        );
        let par_t = UnifiedTable::standalone(
            schema,
            TableConfig::default()
                .with_scan(hana_common::ScanConfig::default().with_scan_parallelism(4)),
            Arc::clone(&mgr),
        );
        for t in [&serial_t, &par_t] {
            main_resident(&mgr, t, 500);
        }
        let reader = mgr.begin(IsolationLevel::Transaction);
        let rs = serial_t.read(&reader);
        let rp = par_t.read(&reader);
        let rows_s: Vec<Vec<Value>> = rs.collect_rows().into_iter().map(|r| r.values).collect();
        let rows_p: Vec<Vec<Value>> = rp.collect_rows().into_iter().map(|r| r.values).collect();
        assert_eq!(rows_s, rows_p);
        assert_eq!(
            rs.aggregate_numeric(2).unwrap(),
            rp.aggregate_numeric(2).unwrap()
        );
        assert_eq!(
            rs.group_aggregate(1, 2).unwrap(),
            rp.group_aggregate(1, 2).unwrap()
        );
    }
}
