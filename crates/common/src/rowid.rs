//! Record identifiers and physical locations.
//!
//! Per the paper (§3): *"Independent of the place of entry, the RowId for any
//! incoming record will be generated when entering the system."* A [`RowId`]
//! is stable for the logical record across its whole life cycle; the
//! [`RowLocation`] says where the *current version* of that record physically
//! lives right now.

use std::fmt;

/// Stable logical record identifier, assigned on first entry (L1 insert or
/// L2 bulk load) and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Which stage of the unified table holds a row version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// Write-optimized row-format store.
    L1Delta,
    /// Column-format store with unsorted dictionaries.
    L2Delta,
    /// Read-optimized compressed main store.
    Main,
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreKind::L1Delta => write!(f, "L1-delta"),
            StoreKind::L2Delta => write!(f, "L2-delta"),
            StoreKind::Main => write!(f, "main"),
        }
    }
}

/// Physical coordinates of one row version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowLocation {
    /// The store holding the version.
    pub store: StoreKind,
    /// Positional address inside that store (slot index for L1, row position
    /// for L2/main — the paper's positional addressing scheme).
    pub pos: u32,
}

impl RowLocation {
    /// Shorthand constructor.
    pub fn new(store: StoreKind, pos: u32) -> Self {
        RowLocation { store, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_assignment() {
        assert!(RowId(1) < RowId(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(RowId(5).to_string(), "r5");
        assert_eq!(StoreKind::Main.to_string(), "main");
        assert_eq!(StoreKind::L1Delta.to_string(), "L1-delta");
    }

    #[test]
    fn location_equality() {
        assert_eq!(
            RowLocation::new(StoreKind::L2Delta, 9),
            RowLocation {
                store: StoreKind::L2Delta,
                pos: 9
            }
        );
    }
}
