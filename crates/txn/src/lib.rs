//! Multi-version concurrency control.
//!
//! The paper (§1): *"the SAP HANA database uses multi-version concurrency
//! control (MVCC) to implement different transaction isolation levels. The
//! SAP HANA database supports both transaction level snapshot isolation and
//! statement level snapshot isolation."*
//!
//! This crate implements exactly that:
//!
//! * a central [`TxnManager`] with an atomic commit clock, an active-set,
//!   and a commit table resolving "marked" stamps of in-flight writers;
//! * [`Snapshot`]s taken once per transaction
//!   ([`IsolationLevel::Transaction`]) or afresh for every statement
//!   ([`IsolationLevel::Statement`]);
//! * the [`visibility`] rules every store applies to its
//!   `(begin, end)`-stamped row versions;
//! * a [`locks::LockTable`] giving first-writer-wins write-write conflict
//!   behaviour;
//! * the **watermark** (oldest snapshot still in use) that gates what the
//!   merge steps may garbage-collect (§4.1: old structure versions are kept
//!   "until all database operations of open transactions … have finished").

pub mod locks;
pub mod manager;
pub mod snapshot;
pub mod visibility;

pub use locks::LockTable;
pub use manager::{Resolution, Transaction, TxnManager, TxnState};
pub use snapshot::{IsolationLevel, Snapshot};
pub use visibility::{version_visible, write_allowed, WriteCheck};
