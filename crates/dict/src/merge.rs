//! Dictionary merge — phase 1 of the delta-to-main merge (paper §4.1, Fig 7).
//!
//! Builds the new sorted main dictionary out of the old main dictionary and
//! the L2-delta's unsorted dictionary, producing the two **position mapping
//! tables** of Fig. 7 (old main code → new code, delta code → new code).
//! Codes of values dropped because no surviving record references them map
//! to [`DROPPED`] — *"the new dictionary contains only valid entries …
//! discarding entries of all deleted or modified records."*
//!
//! The paper's two optimizations are implemented as fast paths:
//!
//! * **delta ⊆ main** ([`MergeKind::DeltaSubset`]): "the first phase of a
//!   dictionary generation is skipped resulting in stable positions of the
//!   main entries";
//! * **delta > main** ([`MergeKind::DeltaAppend`]): e.g. increasing
//!   timestamps — "the dictionary of the L2-delta can be directly added to
//!   the main dictionary."

use crate::sorted::SortedDict;
use crate::unsorted::UnsortedDict;
use crate::Code;
use hana_common::Value;
use std::cmp::Ordering;

/// Sentinel in a mapping table: the old code's value was dropped.
pub const DROPPED: Code = Code::MAX;

/// Which merge path was taken (exposed for the Fig-7 bench and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Every delta value already exists in the main dictionary.
    DeltaSubset,
    /// Every delta value sorts strictly above the main maximum.
    DeltaAppend,
    /// Full two-way merge.
    General,
}

/// Result of a dictionary merge.
#[derive(Debug, Clone)]
pub struct DictMerge {
    /// The new sorted dictionary.
    pub dict: SortedDict,
    /// Old main code → new code (or [`DROPPED`]).
    pub main_map: Vec<Code>,
    /// Delta code → new code (or [`DROPPED`]).
    pub delta_map: Vec<Code>,
    /// Which path produced this merge.
    pub kind: MergeKind,
}

impl DictMerge {
    /// True if every surviving main code kept its position (so the main
    /// value index needs no recoding, only appending).
    pub fn main_positions_stable(&self) -> bool {
        self.kind == MergeKind::DeltaSubset || self.kind == MergeKind::DeltaAppend
    }
}

/// Merge with all codes considered live.
pub fn merge_dicts(main: &SortedDict, delta: &UnsortedDict) -> DictMerge {
    merge_dicts_filtered(main, None, delta, None)
}

/// Merge keeping only codes whose `used` flag is set (when provided).
///
/// `main_used[c]` / `delta_used[c]` say whether any surviving record still
/// references code `c`; unreferenced values are discarded from the new
/// dictionary and their map entries become [`DROPPED`].
pub fn merge_dicts_filtered(
    main: &SortedDict,
    main_used: Option<&[bool]>,
    delta: &UnsortedDict,
    delta_used: Option<&[bool]>,
) -> DictMerge {
    if let Some(u) = main_used {
        assert_eq!(u.len(), main.len(), "main_used length");
    }
    if let Some(u) = delta_used {
        assert_eq!(u.len(), delta.len(), "delta_used length");
    }
    let no_filter = main_used.is_none_or(|u| u.iter().all(|&b| b))
        && delta_used.is_none_or(|u| u.iter().all(|&b| b));

    if no_filter {
        if let Some(fast) = try_fast_paths(main, delta) {
            return fast;
        }
    }
    general_merge(main, main_used, delta, delta_used)
}

fn try_fast_paths(main: &SortedDict, delta: &UnsortedDict) -> Option<DictMerge> {
    // Subset check: every delta value already in main.
    let mut delta_map = Vec::with_capacity(delta.len());
    let mut all_subset = true;
    for v in delta.values() {
        match main.code_of(v) {
            Some(c) => delta_map.push(c),
            None => {
                all_subset = false;
                break;
            }
        }
    }
    if all_subset {
        return Some(DictMerge {
            dict: main.clone(),
            main_map: (0..main.len() as Code).collect(),
            delta_map,
            kind: MergeKind::DeltaSubset,
        });
    }

    // Append check: all delta values strictly above main max.
    let max = main.max_value();
    let above = match &max {
        None => false, // empty main: general path builds from delta alone
        Some(m) => delta.values().iter().all(|v| v > m),
    };
    if above {
        let perm = delta.sorted_codes();
        let n = main.len() as Code;
        let mut delta_map = vec![0 as Code; delta.len()];
        let mut appended: Vec<Value> = Vec::with_capacity(delta.len());
        for (rank, &dc) in perm.iter().enumerate() {
            delta_map[dc as usize] = n + rank as Code;
            appended.push(delta.value_of(dc).clone());
        }
        let mut values: Vec<Value> = main.iter().collect();
        values.extend(appended);
        return Some(DictMerge {
            dict: SortedDict::from_sorted_values(values),
            main_map: (0..n).collect(),
            delta_map,
            kind: MergeKind::DeltaAppend,
        });
    }
    None
}

fn general_merge(
    main: &SortedDict,
    main_used: Option<&[bool]>,
    delta: &UnsortedDict,
    delta_used: Option<&[bool]>,
) -> DictMerge {
    let main_live = |c: Code| main_used.is_none_or(|u| u[c as usize]);
    let delta_live = |c: Code| delta_used.is_none_or(|u| u[c as usize]);

    let delta_perm: Vec<Code> = delta
        .sorted_codes()
        .into_iter()
        .filter(|&c| delta_live(c))
        .collect();

    let mut main_map = vec![DROPPED; main.len()];
    let mut delta_map = vec![DROPPED; delta.len()];
    let mut values: Vec<Value> = Vec::with_capacity(main.len() + delta_perm.len());

    let mut mi: Code = 0;
    let main_len = main.len() as Code;
    let mut di = 0usize;

    // Classic two-pointer merge over (live main codes) × (sorted live delta
    // codes); equal values collapse into one new entry referenced by both
    // maps — exactly the "Los Gatos" case of Fig 7.
    while mi < main_len || di < delta_perm.len() {
        // Skip dead main entries.
        if mi < main_len && !main_live(mi) {
            mi += 1;
            continue;
        }
        let take_main = if mi >= main_len {
            false
        } else if di >= delta_perm.len() {
            true
        } else {
            let mv = main.value_of(mi);
            let dv = delta.value_of(delta_perm[di]);
            match mv.cmp(dv) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => {
                    let new = values.len() as Code;
                    values.push(mv);
                    main_map[mi as usize] = new;
                    delta_map[delta_perm[di] as usize] = new;
                    mi += 1;
                    di += 1;
                    continue;
                }
            }
        };
        if take_main {
            let new = values.len() as Code;
            values.push(main.value_of(mi));
            main_map[mi as usize] = new;
            mi += 1;
        } else {
            let dc = delta_perm[di];
            let new = values.len() as Code;
            values.push(delta.value_of(dc).clone());
            delta_map[dc as usize] = new;
            di += 1;
        }
    }

    DictMerge {
        dict: SortedDict::from_sorted_values(values),
        main_map,
        delta_map,
        kind: MergeKind::General,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn main_dict(vals: &[&str]) -> SortedDict {
        SortedDict::from_values(vals.iter().map(|v| Value::str(*v)).collect())
    }

    fn delta_dict(vals: &[&str]) -> UnsortedDict {
        let mut d = UnsortedDict::new();
        for v in vals {
            d.get_or_insert(&Value::str(*v));
        }
        d
    }

    /// The worked example of Fig. 7: main holds sorted cities, the delta
    /// holds "Los Gatos" (also in main) and "Campbell" (delta-only).
    #[test]
    fn fig7_example() {
        let main = main_dict(&[
            "Daily City",
            "Los Altos",
            "Los Gatos",
            "Palo Alto",
            "Saratoga",
        ]);
        let delta = delta_dict(&["Los Gatos", "Campbell"]);
        let m = merge_dicts(&main, &delta);
        assert_eq!(m.kind, MergeKind::General);
        let new_vals: Vec<Value> = m.dict.iter().collect();
        assert_eq!(
            new_vals,
            [
                "Campbell",
                "Daily City",
                "Los Altos",
                "Los Gatos",
                "Palo Alto",
                "Saratoga"
            ]
            .map(Value::str)
            .to_vec()
        );
        // "Los Gatos" appears in both mapping tables at the same new code.
        let lg_new = m.dict.code_of(&Value::str("Los Gatos")).unwrap();
        assert_eq!(m.main_map[2], lg_new);
        assert_eq!(m.delta_map[0], lg_new);
        // "Campbell" shifts every main position by one.
        assert_eq!(m.main_map, vec![1, 2, 3, 4, 5]);
        assert_eq!(m.delta_map[1], 0);
    }

    #[test]
    fn subset_fast_path_keeps_main_stable() {
        let main = main_dict(&["a", "b", "c", "d"]);
        let delta = delta_dict(&["c", "a"]);
        let m = merge_dicts(&main, &delta);
        assert_eq!(m.kind, MergeKind::DeltaSubset);
        assert!(m.main_positions_stable());
        assert_eq!(m.main_map, vec![0, 1, 2, 3]);
        assert_eq!(m.delta_map, vec![2, 0]);
        assert_eq!(m.dict.len(), 4);
    }

    #[test]
    fn append_fast_path_for_increasing_values() {
        // The paper's example: increasing timestamps.
        let main = SortedDict::from_values((0..5).map(Value::Int).collect());
        let mut delta = UnsortedDict::new();
        for t in [7i64, 9, 6] {
            delta.get_or_insert(&Value::Int(t));
        }
        let m = merge_dicts(&main, &delta);
        assert_eq!(m.kind, MergeKind::DeltaAppend);
        assert_eq!(m.main_map, vec![0, 1, 2, 3, 4]);
        // Delta codes (arrival order 7,9,6) map to sorted tail 6,7,9 → 6,8,5... wait:
        // new dict = 0,1,2,3,4,6,7,9 → 6→5, 7→6, 9→7.
        assert_eq!(m.delta_map, vec![6, 7, 5]);
        assert_eq!(m.dict.value_of(5), Value::Int(6));
    }

    #[test]
    fn empty_main_takes_general_path() {
        let main = SortedDict::empty();
        let delta = delta_dict(&["b", "a"]);
        let m = merge_dicts(&main, &delta);
        assert_eq!(m.kind, MergeKind::General);
        assert_eq!(m.dict.len(), 2);
        assert_eq!(m.delta_map, vec![1, 0]);
    }

    #[test]
    fn empty_delta_is_subset() {
        let main = main_dict(&["a", "b"]);
        let delta = UnsortedDict::new();
        let m = merge_dicts(&main, &delta);
        assert_eq!(m.kind, MergeKind::DeltaSubset);
        assert_eq!(m.dict.len(), 2);
    }

    #[test]
    fn filtered_merge_drops_dead_values() {
        let main = main_dict(&["a", "b", "c"]);
        let delta = delta_dict(&["d", "b"]);
        // "b" no longer referenced anywhere; "d" dead in delta.
        let m = merge_dicts_filtered(
            &main,
            Some(&[true, false, true]),
            &delta,
            Some(&[false, true]),
        );
        let vals: Vec<Value> = m.dict.iter().collect();
        // delta's live "b" keeps "b" alive even though main dropped it.
        assert_eq!(vals, ["a", "b", "c"].map(Value::str).to_vec());
        assert_eq!(m.main_map, vec![0, DROPPED, 2]);
        assert_eq!(m.delta_map, vec![DROPPED, 1]);
    }

    #[test]
    fn filtered_merge_fully_dropping_a_value() {
        let main = main_dict(&["a", "b", "c"]);
        let delta = UnsortedDict::new();
        let m = merge_dicts_filtered(&main, Some(&[true, false, true]), &delta, None);
        let vals: Vec<Value> = m.dict.iter().collect();
        assert_eq!(vals, ["a", "c"].map(Value::str).to_vec());
        assert_eq!(m.main_map, vec![0, DROPPED, 1]);
    }

    #[test]
    fn general_merge_maps_are_consistent() {
        let main = SortedDict::from_values((0..50).map(|i| Value::Int(i * 3)).collect());
        let delta = {
            let mut d = UnsortedDict::new();
            for i in (0..40).rev() {
                d.get_or_insert(&Value::Int(i * 4));
            }
            d
        };
        let m = merge_dicts(&main, &delta);
        for c in 0..main.len() as Code {
            let nc = m.main_map[c as usize];
            assert_eq!(m.dict.value_of(nc), main.value_of(c));
        }
        for c in 0..delta.len() as Code {
            let nc = m.delta_map[c as usize];
            assert_eq!(&m.dict.value_of(nc), delta.value_of(c));
        }
        // New dictionary is sorted unique.
        let vals: Vec<Value> = m.dict.iter().collect();
        assert!(vals.windows(2).all(|w| w[0] < w[1]));
    }
}
