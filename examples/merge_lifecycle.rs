//! The record life cycle and all three merge flavours, narrated.
//!
//! Demonstrates the classic merge (§4.1) with its dictionary fast paths,
//! the re-sorting merge (§4.2) with its compression gain, and the partial
//! merge (§4.3) with its passive/active main chain — the heart of the paper.
//!
//! Run with `cargo run -p hana-examples --example merge_lifecycle`.

use hana_common::{MergeStrategy, TableConfig, Value};
use hana_core::Database;
use hana_merge::MergeDecision;
use hana_txn::IsolationLevel;
use hana_workload::{DataGen, SalesSchema};
use std::ops::Bound;

fn main() -> hana_common::Result<()> {
    let db = Database::in_memory();
    let cfg = TableConfig {
        l1_max_rows: 512,
        l2_max_rows: 4_096,
        merge_strategy: MergeStrategy::Auto,
        ..TableConfig::default()
    };
    let sales = db.create_table(SalesSchema::fact(), cfg)?;
    let mut gen = DataGen::new(42);

    // Phase 1: OLTP-style inserts fill the L1-delta, the policy merges.
    println!("== filling through the OLTP path ==");
    let mut order_id = 0i64;
    for round in 0..6 {
        let mut txn = db.begin(IsolationLevel::Transaction);
        for _ in 0..2_000 {
            sales.insert(&txn, SalesSchema::fact_row(&mut gen, order_id, 500, 100))?;
            order_id += 1;
        }
        db.commit(&mut txn)?;
        while sales.maybe_merge_once()? {}
        let s = sales.stage_stats();
        println!(
            "round {round}: L1={:>5}  L2={:>5}  main={:>6} rows in {} part(s), active={}",
            s.l1_rows, s.l2_rows, s.main_rows, s.main_parts, s.active_main_rows
        );
    }

    // Phase 2: force the three merge flavours explicitly and compare.
    println!("\n== explicit merge flavours ==");
    sales.drain_l1()?;
    sales.merge_delta_as(MergeDecision::Consolidate)?;
    let classic_bytes = sales.stage_stats().main_data_bytes;
    println!(
        "classic/consolidated main: {} rows, {} data bytes",
        sales.stage_stats().main_rows,
        classic_bytes
    );

    // Re-sorting merge: rebuilds the single main sorted for compression.
    sales.merge_delta_as(MergeDecision::ReSorting)?;
    let resort_bytes = sales.stage_stats().main_data_bytes;
    println!(
        "re-sorted main           : {} rows, {} data bytes ({:+.1}% vs classic)",
        sales.stage_stats().main_rows,
        resort_bytes,
        100.0 * (resort_bytes as f64 - classic_bytes as f64) / classic_bytes as f64
    );

    // Partial merge: new rows go to an active main, passive untouched.
    let mut txn = db.begin(IsolationLevel::Transaction);
    for _ in 0..1_000 {
        sales.insert(&txn, SalesSchema::fact_row(&mut gen, order_id, 500, 100))?;
        order_id += 1;
    }
    db.commit(&mut txn)?;
    sales.drain_l1()?;
    sales.merge_delta_as(MergeDecision::Partial)?;
    let s = sales.stage_stats();
    println!(
        "after partial merge      : {} parts (passive+active), active holds {} rows",
        s.main_parts, s.active_main_rows
    );

    // Phase 3: queries spanning passive + active mains (Fig 10).
    let reader = db.begin(IsolationLevel::Transaction);
    let read = sales.read(&reader);
    let hits = read.range(
        3, // city column
        Bound::Included(&Value::str("C")),
        Bound::Excluded(&Value::str("M")),
    )?;
    println!(
        "\nrange query city in [C, M): {} rows across the chain",
        hits.len()
    );
    let (count, sum) = read.aggregate_numeric(4)?;
    println!("sum(amount) over {count} rows = {sum}");
    assert_eq!(count as i64, order_id);
    Ok(())
}
