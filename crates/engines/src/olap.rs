//! OLAP star-join operator.
//!
//! "OLAP operators are optimized for star-join scenarios with fact and
//! dimension tables" (§2.2). [`StarJoin`] evaluates a star query in the
//! column-store style: dimension predicates are resolved first into key
//! sets, the fact table is scanned once with those semi-join filters, and
//! measures are aggregated per requested dimension attribute.

use hana_calc::Predicate;
use hana_common::{HanaError, Result, Value};
use hana_core::UnifiedTable;
use hana_txn::Snapshot;
use rustc_hash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// One dimension of the star.
pub struct Dimension {
    /// The dimension table.
    pub table: Arc<UnifiedTable>,
    /// Key column in the dimension table.
    pub dim_key_col: usize,
    /// Foreign-key column in the fact table.
    pub fact_key_col: usize,
    /// Predicate on dimension rows.
    pub predicate: Predicate,
    /// Dimension attribute column surfaced in the group-by (optional).
    pub group_attr: Option<usize>,
}

/// A star-join query: fact table, dimensions, one measure.
pub struct StarJoin {
    /// The fact table.
    pub fact: Arc<UnifiedTable>,
    /// The dimensions with their semi-join predicates.
    pub dimensions: Vec<Dimension>,
    /// Measure column in the fact table.
    pub measure_col: usize,
}

/// Aggregated star-join output.
#[derive(Debug, Clone, PartialEq)]
pub struct StarJoinResult {
    /// One row per group: group attribute values, then `(count, sum)`.
    pub groups: Vec<(Vec<Value>, u64, f64)>,
    /// Fact rows that survived all semi-joins.
    pub matching_facts: u64,
}

impl StarJoin {
    /// Execute under `snap`.
    pub fn execute(&self, snap: Snapshot) -> Result<StarJoinResult> {
        // Phase 1: resolve each dimension predicate to (key → group attr).
        let mut dim_maps: Vec<(usize, FxHashSet<Value>, FxHashMap<Value, Value>)> =
            Vec::with_capacity(self.dimensions.len());
        for d in &self.dimensions {
            let read = d.table.read_at(snap);
            let mut keys = FxHashSet::default();
            let mut attrs = FxHashMap::default();
            read.for_each_visible(|r| {
                if d.predicate.eval(&r.values) {
                    let key = r.values[d.dim_key_col].clone();
                    if let Some(a) = d.group_attr {
                        attrs.insert(key.clone(), r.values[a].clone());
                    }
                    keys.insert(key);
                }
            });
            if keys.is_empty() {
                // Empty semi-join: the whole star is empty.
                return Ok(StarJoinResult {
                    groups: vec![],
                    matching_facts: 0,
                });
            }
            dim_maps.push((d.fact_key_col, keys, attrs));
        }

        // Phase 2: one pass over the fact table with all semi-join filters.
        let fact_read = self.fact.read_at(snap);
        let measure = self.measure_col;
        if measure >= self.fact.schema().arity() {
            return Err(HanaError::Query(format!(
                "measure column {measure} out of range"
            )));
        }
        let mut groups: FxHashMap<Vec<Value>, (u64, f64)> = FxHashMap::default();
        let mut matching = 0u64;
        fact_read.for_each_visible(|r| {
            for (fk, keys, _) in &dim_maps {
                if !keys.contains(&r.values[*fk]) {
                    return;
                }
            }
            matching += 1;
            let mut key = Vec::new();
            for (d, (fk, _, attrs)) in self.dimensions.iter().zip(&dim_maps) {
                if d.group_attr.is_some() {
                    key.push(attrs.get(&r.values[*fk]).cloned().unwrap_or(Value::Null));
                }
            }
            let entry = groups.entry(key).or_insert((0, 0.0));
            entry.0 += 1;
            if let Some(x) = r.values[measure].as_numeric() {
                entry.1 += x;
            }
        });
        let mut out: Vec<(Vec<Value>, u64, f64)> =
            groups.into_iter().map(|(k, (c, s))| (k, c, s)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(StarJoinResult {
            groups: out,
            matching_facts: matching,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hana_common::{ColumnDef, DataType, Schema, TableConfig};
    use hana_txn::{IsolationLevel, TxnManager};

    /// Fact: sales(product_id, customer_id, amount).
    /// Dimensions: products(id, category), customers(id, country).
    fn star() -> (Arc<TxnManager>, StarJoin) {
        let mgr = TxnManager::new();
        let products = UnifiedTable::standalone(
            Schema::new(
                "products",
                vec![
                    ColumnDef::new("id", DataType::Int).unique(),
                    ColumnDef::new("category", DataType::Str),
                ],
            )
            .unwrap(),
            TableConfig::small(),
            Arc::clone(&mgr),
        );
        let customers = UnifiedTable::standalone(
            Schema::new(
                "customers",
                vec![
                    ColumnDef::new("id", DataType::Int).unique(),
                    ColumnDef::new("country", DataType::Str),
                ],
            )
            .unwrap(),
            TableConfig::small(),
            Arc::clone(&mgr),
        );
        let sales = UnifiedTable::standalone(
            Schema::new(
                "sales",
                vec![
                    ColumnDef::new("product_id", DataType::Int),
                    ColumnDef::new("customer_id", DataType::Int),
                    ColumnDef::new("amount", DataType::Int),
                ],
            )
            .unwrap(),
            TableConfig::small(),
            Arc::clone(&mgr),
        );
        let mut txn = mgr.begin(IsolationLevel::Transaction);
        for i in 0..6i64 {
            let cat = if i < 3 { "electronics" } else { "food" };
            products
                .insert(&txn, vec![Value::Int(i), Value::str(cat)])
                .unwrap();
        }
        for i in 0..4i64 {
            let country = if i % 2 == 0 { "DE" } else { "US" };
            customers
                .insert(&txn, vec![Value::Int(i), Value::str(country)])
                .unwrap();
        }
        for i in 0..120i64 {
            sales
                .insert(
                    &txn,
                    vec![Value::Int(i % 6), Value::Int(i % 4), Value::Int(1)],
                )
                .unwrap();
        }
        txn.commit().unwrap();
        // Exercise the lifecycle on the fact table.
        sales.drain_l1().unwrap();
        let star = StarJoin {
            fact: sales,
            dimensions: vec![
                Dimension {
                    table: products,
                    dim_key_col: 0,
                    fact_key_col: 0,
                    predicate: Predicate::Eq(1, Value::str("electronics")),
                    group_attr: Some(1),
                },
                Dimension {
                    table: customers,
                    dim_key_col: 0,
                    fact_key_col: 1,
                    predicate: Predicate::True,
                    group_attr: Some(1),
                },
            ],
            measure_col: 2,
        };
        (mgr, star)
    }

    #[test]
    fn star_join_filters_and_groups() {
        let (mgr, star) = star();
        let res = star.execute(Snapshot::at(mgr.now())).unwrap();
        // Half the products are electronics → 60 matching facts.
        assert_eq!(res.matching_facts, 60);
        // Groups: (electronics, DE) and (electronics, US).
        assert_eq!(res.groups.len(), 2);
        let total: u64 = res.groups.iter().map(|g| g.1).sum();
        assert_eq!(total, 60);
        let sum: f64 = res.groups.iter().map(|g| g.2).sum();
        assert_eq!(sum, 60.0);
        assert!(res
            .groups
            .iter()
            .all(|g| g.0[0] == Value::str("electronics")));
    }

    #[test]
    fn empty_dimension_predicate_short_circuits() {
        let (mgr, mut star) = star();
        star.dimensions[0].predicate = Predicate::Eq(1, Value::str("no-such-category"));
        let res = star.execute(Snapshot::at(mgr.now())).unwrap();
        assert_eq!(res.matching_facts, 0);
        assert!(res.groups.is_empty());
    }

    #[test]
    fn bad_measure_column_errors() {
        let (mgr, mut star) = star();
        star.measure_col = 99;
        assert!(star.execute(Snapshot::at(mgr.now())).is_err());
    }
}
