//! Read snapshots.

use hana_common::{Timestamp, TxnId};

/// The two snapshot-isolation flavours named in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// One snapshot for the whole transaction (repeatable reads).
    Transaction,
    /// A fresh snapshot per statement (each statement sees all commits that
    /// happened before it started).
    Statement,
}

/// A point-in-time read view.
///
/// A snapshot sees every version committed at or before `ts`, plus the
/// uncommitted writes of its own transaction (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    ts: Timestamp,
    txn: Option<TxnId>,
}

impl Snapshot {
    /// A snapshot bound to a transaction (sees that transaction's writes).
    pub fn for_txn(ts: Timestamp, txn: TxnId) -> Self {
        Snapshot { ts, txn: Some(txn) }
    }

    /// A detached read-only snapshot (time travel, background readers).
    pub fn at(ts: Timestamp) -> Self {
        Snapshot { ts, txn: None }
    }

    /// The snapshot timestamp.
    #[inline]
    pub fn ts(&self) -> Timestamp {
        self.ts
    }

    /// The owning transaction, if any.
    #[inline]
    pub fn txn(&self) -> Option<TxnId> {
        self.txn
    }

    /// True if `txn` is the snapshot's own transaction.
    #[inline]
    pub fn is_own(&self, txn: TxnId) -> bool {
        self.txn == Some(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership() {
        let s = Snapshot::for_txn(10, TxnId(3));
        assert!(s.is_own(TxnId(3)));
        assert!(!s.is_own(TxnId(4)));
        let d = Snapshot::at(10);
        assert!(!d.is_own(TxnId(3)));
        assert_eq!(d.txn(), None);
        assert_eq!(d.ts(), 10);
    }
}
